#include "diads/symptom_expr.h"

#include <algorithm>
#include <cctype>
#include <optional>
#include <unordered_map>

#include "common/strings.h"
#include "diads/symptom_index.h"

namespace diads::diag {
namespace {

// --- Tokenizer -------------------------------------------------------------

struct Token {
  enum class Kind { kIdent, kLParen, kRParen, kComma, kEquals, kEnd };
  Kind kind = Kind::kEnd;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t i = 0;
    while (i < text_.size()) {
      const char c = text_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(') {
        out.push_back({Token::Kind::kLParen, "(", i++});
      } else if (c == ')') {
        out.push_back({Token::Kind::kRParen, ")", i++});
      } else if (c == ',') {
        out.push_back({Token::Kind::kComma, ",", i++});
      } else if (c == '=') {
        out.push_back({Token::Kind::kEquals, "=", i++});
      } else if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                 c == '$' || c == '.' || c == '-') {
        size_t j = i;
        while (j < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[j])) ||
                text_[j] == '_' || text_[j] == '$' || text_[j] == '.' ||
                text_[j] == '-' || text_[j] == ':' || text_[j] == '/')) {
          ++j;
        }
        out.push_back({Token::Kind::kIdent, text_.substr(i, j - i), i});
        i = j;
      } else {
        return Status::InvalidArgument(
            StrFormat("unexpected character '%c' at position %zu in symptom "
                      "expression",
                      c, i));
      }
    }
    out.push_back({Token::Kind::kEnd, "", text_.size()});
    return out;
  }

 private:
  const std::string& text_;
};

// --- Parser ----------------------------------------------------------------

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<SymptomExpr> Parse() {
    Result<SymptomExpr> expr = ParseOr();
    DIADS_RETURN_IF_ERROR(expr.status());
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::InvalidArgument(
          StrFormat("trailing tokens at position %zu", Peek().pos));
    }
    return expr;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  bool TakeKeyword(const char* kw) {
    if (Peek().kind == Token::Kind::kIdent && Peek().text == kw) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<SymptomExpr> ParseOr() {
    Result<SymptomExpr> left = ParseAnd();
    DIADS_RETURN_IF_ERROR(left.status());
    SymptomExpr expr = std::move(*left);
    while (TakeKeyword("or")) {
      Result<SymptomExpr> right = ParseAnd();
      DIADS_RETURN_IF_ERROR(right.status());
      SymptomExpr parent;
      parent.kind = SymptomExpr::Kind::kOr;
      parent.children.push_back(std::move(expr));
      parent.children.push_back(std::move(*right));
      expr = std::move(parent);
    }
    return expr;
  }

  Result<SymptomExpr> ParseAnd() {
    Result<SymptomExpr> left = ParseUnary();
    DIADS_RETURN_IF_ERROR(left.status());
    SymptomExpr expr = std::move(*left);
    while (TakeKeyword("and")) {
      Result<SymptomExpr> right = ParseUnary();
      DIADS_RETURN_IF_ERROR(right.status());
      SymptomExpr parent;
      parent.kind = SymptomExpr::Kind::kAnd;
      parent.children.push_back(std::move(expr));
      parent.children.push_back(std::move(*right));
      expr = std::move(parent);
    }
    return expr;
  }

  Result<SymptomExpr> ParseUnary() {
    if (TakeKeyword("not")) {
      Result<SymptomExpr> inner = ParseUnary();
      DIADS_RETURN_IF_ERROR(inner.status());
      SymptomExpr expr;
      expr.kind = SymptomExpr::Kind::kNot;
      expr.children.push_back(std::move(*inner));
      return expr;
    }
    return ParsePrimary();
  }

  Result<SymptomExpr> ParsePrimary() {
    if (Peek().kind == Token::Kind::kLParen) {
      Take();
      Result<SymptomExpr> inner = ParseOr();
      DIADS_RETURN_IF_ERROR(inner.status());
      if (Peek().kind != Token::Kind::kRParen) {
        return Status::InvalidArgument(
            StrFormat("expected ')' at position %zu", Peek().pos));
      }
      Take();
      return inner;
    }
    return ParseCall();
  }

  Result<SymptomExpr> ParseCall() {
    if (Peek().kind != Token::Kind::kIdent) {
      return Status::InvalidArgument(
          StrFormat("expected predicate name at position %zu", Peek().pos));
    }
    SymptomExpr expr;
    expr.kind = SymptomExpr::Kind::kCall;
    expr.callee = Take().text;
    if (Peek().kind != Token::Kind::kLParen) {
      return Status::InvalidArgument(StrFormat(
          "expected '(' after '%s' at position %zu", expr.callee.c_str(),
          Peek().pos));
    }
    Take();
    if (Peek().kind == Token::Kind::kRParen) {
      Take();
      return expr;
    }
    while (true) {
      // Either `name=value` or a nested call (argument of before()).
      if (Peek().kind != Token::Kind::kIdent) {
        return Status::InvalidArgument(
            StrFormat("expected argument at position %zu", Peek().pos));
      }
      const Token name = Take();
      if (Peek().kind == Token::Kind::kEquals) {
        Take();
        if (Peek().kind != Token::Kind::kIdent) {
          return Status::InvalidArgument(StrFormat(
              "expected value for argument '%s' at position %zu",
              name.text.c_str(), Peek().pos));
        }
        expr.args[name.text] = Take().text;
      } else if (Peek().kind == Token::Kind::kLParen) {
        // Nested call: back up and parse it as a child expression.
        --pos_;
        Result<SymptomExpr> nested = ParseCall();
        DIADS_RETURN_IF_ERROR(nested.status());
        expr.children.push_back(std::move(*nested));
      } else {
        return Status::InvalidArgument(StrFormat(
            "expected '=' or '(' after '%s' at position %zu",
            name.text.c_str(), Peek().pos));
      }
      if (Peek().kind == Token::Kind::kComma) {
        Take();
        continue;
      }
      if (Peek().kind == Token::Kind::kRParen) {
        Take();
        return expr;
      }
      return Status::InvalidArgument(
          StrFormat("expected ',' or ')' at position %zu", Peek().pos));
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

// --- Evaluation helpers ------------------------------------------------------

Result<ComponentId> ResolveComponent(const std::string& value,
                                     const SymptomEvalContext& eval) {
  if (value == "$V") {
    if (!eval.bound_volume.valid()) {
      return Status::FailedPrecondition(
          "$V used in an entry evaluated without a volume binding");
    }
    return eval.bound_volume;
  }
  return eval.ctx->topology->registry().FindByName(value);
}

Result<std::string> RequireArg(const SymptomExpr& expr, const char* name) {
  auto it = expr.args.find(name);
  if (it == expr.args.end()) {
    return Status::InvalidArgument(StrFormat(
        "predicate '%s' requires argument '%s'", expr.callee.c_str(), name));
  }
  return it->second;
}

/// Membership of one operator in the COS, via the index when present.
bool InCos(int op_index, const SymptomEvalContext& eval) {
  return eval.index != nullptr ? eval.index->InCos(op_index)
                               : eval.co->InCos(op_index);
}

/// Fraction of the volume's leaf operators that are in the COS.
Result<double> CosLeafFraction(ComponentId volume,
                               const SymptomEvalContext& eval) {
  const std::vector<int> leaves = eval.ctx->apg->LeafOpsOnComponent(volume);
  if (leaves.empty()) return 0.0;
  int in_cos = 0;
  for (int leaf : leaves) {
    if (InCos(leaf, eval)) ++in_cos;
  }
  return static_cast<double>(in_cos) / static_cast<double>(leaves.size());
}

/// Indexed or linear DaResult::Find.
const MetricAnomaly* FindMetric(ComponentId component,
                                monitor::MetricId metric,
                                const SymptomEvalContext& eval) {
  return eval.index != nullptr ? eval.index->FindMetric(component, metric)
                               : eval.da->Find(component, metric);
}

/// Any storage metric of the volume anomalous per Module DA.
bool VolumeMetricAnomalous(ComponentId volume,
                           const SymptomEvalContext& eval) {
  if (eval.index != nullptr) return eval.index->AnyMetricAnomalous(volume);
  const double threshold = eval.config->metric_anomaly.threshold;
  for (const MetricAnomaly& m : eval.da->metrics) {
    if (m.component == volume && m.anomaly_score >= threshold) return true;
  }
  return false;
}

bool DbMetricAnomalous(monitor::MetricId metric,
                       const SymptomEvalContext& eval) {
  const MetricAnomaly* m = FindMetric(eval.ctx->database, metric, eval);
  return m != nullptr &&
         m->anomaly_score >= eval.config->metric_anomaly.threshold;
}

/// Earliest event of a call's type (used by before()); supports the same
/// `volume=` proximity filter as event_near.
Result<std::optional<SimTimeMs>> FirstEventTime(
    const SymptomExpr& call, const SymptomEvalContext& eval) {
  Result<std::string> type_name = RequireArg(call, "type");
  DIADS_RETURN_IF_ERROR(type_name.status());
  Result<EventType> type = ParseEventTypeName(*type_name);
  DIADS_RETURN_IF_ERROR(type.status());
  if (eval.index != nullptr) return eval.index->FirstEventTime(*type);
  std::optional<SimTimeMs> first;
  for (const SystemEvent& e : eval.ctx->events->EventsOfTypeIn(
           *type, eval.ctx->AnalysisWindow())) {
    if (!first.has_value() || e.time < *first) first = e.time;
  }
  return first;
}

/// True when `subject` is the volume itself, shares disks with it, or is
/// its pool.
bool NearVolume(ComponentId subject, ComponentId volume,
                const SymptomEvalContext& eval) {
  if (!subject.valid()) return false;
  if (subject == volume) return true;
  const san::SanTopology& topo = *eval.ctx->topology;
  const ComponentRegistry& registry = topo.registry();
  if (!registry.Contains(subject)) return false;
  const ComponentKind kind = registry.KindOf(subject);
  if (kind == ComponentKind::kVolume) {
    for (ComponentId sharer : topo.VolumesSharingDisks(volume)) {
      if (sharer == subject) return true;
    }
    return false;
  }
  if (kind == ComponentKind::kStoragePool) {
    return topo.volume(volume).pool == subject;
  }
  if (kind == ComponentKind::kDisk) {
    // Membership by pool, not by DisksOfVolume: a *failed* disk is exactly
    // the one DisksOfVolume no longer lists, yet its failure event is the
    // symptom.
    return topo.disk(subject).pool == topo.volume(volume).pool;
  }
  return false;
}

Result<bool> EvaluateCall(const SymptomExpr& expr,
                          const SymptomEvalContext& eval) {
  const std::string& f = expr.callee;

  if (f == "op_anomaly_any" || f == "op_anomaly_majority") {
    Result<std::string> vol_name = RequireArg(expr, "volume");
    DIADS_RETURN_IF_ERROR(vol_name.status());
    Result<ComponentId> volume = ResolveComponent(*vol_name, eval);
    DIADS_RETURN_IF_ERROR(volume.status());
    Result<double> fraction = CosLeafFraction(*volume, eval);
    DIADS_RETURN_IF_ERROR(fraction.status());
    return f == "op_anomaly_any" ? *fraction > 0 : *fraction > 0.5;
  }
  if (f == "op_anomaly_exists") {
    return !eval.co->correlated_operator_set.empty();
  }
  if (f == "volume_metric_anomaly") {
    Result<std::string> vol_name = RequireArg(expr, "volume");
    DIADS_RETURN_IF_ERROR(vol_name.status());
    Result<ComponentId> volume = ResolveComponent(*vol_name, eval);
    DIADS_RETURN_IF_ERROR(volume.status());
    return VolumeMetricAnomalous(*volume, eval);
  }
  if (f == "metric_anomaly") {
    Result<std::string> comp_name = RequireArg(expr, "component");
    DIADS_RETURN_IF_ERROR(comp_name.status());
    Result<ComponentId> component = ResolveComponent(*comp_name, eval);
    DIADS_RETURN_IF_ERROR(component.status());
    Result<std::string> metric_name = RequireArg(expr, "metric");
    DIADS_RETURN_IF_ERROR(metric_name.status());
    Result<monitor::MetricId> metric = ParseMetricShortName(*metric_name);
    DIADS_RETURN_IF_ERROR(metric.status());
    const MetricAnomaly* m = FindMetric(*component, *metric, eval);
    return m != nullptr &&
           m->anomaly_score >= eval.config->metric_anomaly.threshold;
  }
  if (f == "component_correlated") {
    Result<std::string> comp_name = RequireArg(expr, "component");
    DIADS_RETURN_IF_ERROR(comp_name.status());
    Result<ComponentId> component = ResolveComponent(*comp_name, eval);
    DIADS_RETURN_IF_ERROR(component.status());
    return eval.index != nullptr ? eval.index->InCcs(*component)
                                 : eval.da->InCcs(*component);
  }
  if (f == "record_count_change") {
    auto it = expr.args.find("volume");
    if (it == expr.args.end()) return eval.cr->data_properties_changed;
    Result<ComponentId> volume = ResolveComponent(it->second, eval);
    DIADS_RETURN_IF_ERROR(volume.status());
    for (int op_index : eval.cr->correlated_record_set) {
      if (!eval.ctx->apg->plan().op(op_index).is_scan()) continue;
      Result<ComponentId> op_volume = eval.ctx->apg->VolumeOfOp(op_index);
      if (op_volume.ok() && *op_volume == *volume) return true;
    }
    return false;
  }
  if (f == "no_record_count_change") {
    return !eval.cr->data_properties_changed;
  }
  if (f == "event") {
    Result<std::string> type_name = RequireArg(expr, "type");
    DIADS_RETURN_IF_ERROR(type_name.status());
    Result<EventType> type = ParseEventTypeName(*type_name);
    DIADS_RETURN_IF_ERROR(type.status());
    if (eval.index != nullptr) {
      return !eval.index->EventsOfType(*type).empty();
    }
    return !eval.ctx->events
                ->EventsOfTypeIn(*type, eval.ctx->AnalysisWindow())
                .empty();
  }
  if (f == "event_near") {
    Result<std::string> type_name = RequireArg(expr, "type");
    DIADS_RETURN_IF_ERROR(type_name.status());
    Result<EventType> type = ParseEventTypeName(*type_name);
    DIADS_RETURN_IF_ERROR(type.status());
    Result<std::string> vol_name = RequireArg(expr, "volume");
    DIADS_RETURN_IF_ERROR(vol_name.status());
    Result<ComponentId> volume = ResolveComponent(*vol_name, eval);
    DIADS_RETURN_IF_ERROR(volume.status());
    auto near_any = [&](const std::vector<SystemEvent>& events) {
      for (const SystemEvent& e : events) {
        if (NearVolume(e.subject, *volume, eval)) return true;
      }
      return false;
    };
    // Bind the index's vector by reference; only the fallback materializes.
    if (eval.index != nullptr) return near_any(eval.index->EventsOfType(*type));
    return near_any(eval.ctx->events->EventsOfTypeIn(
        *type, eval.ctx->AnalysisWindow()));
  }
  if (f == "before") {
    if (expr.children.size() != 2) {
      return Status::InvalidArgument("before() requires two event arguments");
    }
    Result<std::optional<SimTimeMs>> a = FirstEventTime(expr.children[0], eval);
    DIADS_RETURN_IF_ERROR(a.status());
    Result<std::optional<SimTimeMs>> b = FirstEventTime(expr.children[1], eval);
    DIADS_RETURN_IF_ERROR(b.status());
    return a->has_value() && b->has_value() && **a < **b;
  }
  if (f == "lock_wait_high") {
    return DbMetricAnomalous(monitor::MetricId::kDbLockWaitMs, eval);
  }
  if (f == "locks_held_high") {
    return DbMetricAnomalous(monitor::MetricId::kDbLocksHeld, eval);
  }
  if (f == "db_blocks_read_high") {
    return DbMetricAnomalous(monitor::MetricId::kDbBlocksRead, eval);
  }
  if (f == "cpu_high") {
    const ComponentId server = eval.ctx->apg->db_server();
    const MetricAnomaly* m =
        FindMetric(server, monitor::MetricId::kServerCpuPct, eval);
    return m != nullptr &&
           m->anomaly_score >= eval.config->metric_anomaly.threshold;
  }
  if (f == "fabric_component_anomalous") {
    // Any FC port or switch in the APG with an anomalous metric: the
    // surviving-path congestion signature of HBA failure and multipath
    // imbalance (the fault itself stops reporting; its neighbours heat up).
    const ComponentRegistry& registry = eval.ctx->topology->registry();
    for (ComponentId component : eval.ctx->apg->AllComponents()) {
      if (!registry.Contains(component)) continue;
      const ComponentKind kind = registry.KindOf(component);
      if (kind != ComponentKind::kFcPort && kind != ComponentKind::kFcSwitch) {
        continue;
      }
      if (eval.index != nullptr) {
        if (eval.index->AnyMetricAnomalous(component)) return true;
      } else {
        const double threshold = eval.config->metric_anomaly.threshold;
        for (const MetricAnomaly& m : eval.da->metrics) {
          if (m.component == component && m.anomaly_score >= threshold) {
            return true;
          }
        }
      }
    }
    return false;
  }
  if (f == "plan_changed") return eval.pd->plans_differ;
  if (f == "no_plan_change") return !eval.pd->plans_differ;
  if (f == "plan_change_explained") {
    for (const PlanChangeCandidate& c : eval.pd->candidates) {
      if (c.could_explain.value_or(false)) return true;
    }
    return false;
  }
  return Status::InvalidArgument("unknown symptom predicate: " + f);
}

}  // namespace

std::string SymptomExpr::ToString() const {
  switch (kind) {
    case Kind::kNot:
      return "not " + children[0].ToString();
    case Kind::kAnd:
      return "(" + children[0].ToString() + " and " + children[1].ToString() +
             ")";
    case Kind::kOr:
      return "(" + children[0].ToString() + " or " + children[1].ToString() +
             ")";
    case Kind::kCall: {
      std::vector<std::string> parts;
      for (const SymptomExpr& child : children) parts.push_back(child.ToString());
      for (const auto& [name, value] : args) parts.push_back(name + "=" + value);
      return callee + "(" + Join(parts, ", ") + ")";
    }
  }
  return "?";
}

Result<SymptomExpr> ParseSymptomExpr(const std::string& text) {
  Lexer lexer(text);
  Result<std::vector<Token>> tokens = lexer.Tokenize();
  DIADS_RETURN_IF_ERROR(tokens.status());
  Parser parser(std::move(*tokens));
  return parser.Parse();
}

Result<bool> EvaluateSymptom(const SymptomExpr& expr,
                             const SymptomEvalContext& eval) {
  switch (expr.kind) {
    case SymptomExpr::Kind::kNot: {
      Result<bool> inner = EvaluateSymptom(expr.children[0], eval);
      DIADS_RETURN_IF_ERROR(inner.status());
      return !*inner;
    }
    case SymptomExpr::Kind::kAnd: {
      for (const SymptomExpr& child : expr.children) {
        Result<bool> value = EvaluateSymptom(child, eval);
        DIADS_RETURN_IF_ERROR(value.status());
        if (!*value) return false;
      }
      return true;
    }
    case SymptomExpr::Kind::kOr: {
      for (const SymptomExpr& child : expr.children) {
        Result<bool> value = EvaluateSymptom(child, eval);
        DIADS_RETURN_IF_ERROR(value.status());
        if (*value) return true;
      }
      return false;
    }
    case SymptomExpr::Kind::kCall:
      return EvaluateCall(expr, eval);
  }
  return Status::Internal("corrupt symptom expression");
}

Result<monitor::MetricId> ParseMetricShortName(const std::string& name) {
  // Built once (thread-safe magic static), read-only afterwards: these
  // parses run inside every metric predicate evaluation.
  static const std::unordered_map<std::string, monitor::MetricId>* kByName =
      [] {
        auto* map = new std::unordered_map<std::string, monitor::MetricId>();
        for (const monitor::MetricMeta& meta : monitor::AllMetrics()) {
          map->emplace(monitor::MetricShortName(meta.id), meta.id);
          map->emplace(meta.name, meta.id);
        }
        return map;
      }();
  auto it = kByName->find(name);
  if (it == kByName->end()) {
    return Status::NotFound("unknown metric name: " + name);
  }
  return it->second;
}

Result<EventType> ParseEventTypeName(const std::string& name) {
  static const EventType kAll[] = {
      EventType::kVolumeCreated,       EventType::kVolumeDeleted,
      EventType::kZoningChanged,       EventType::kLunMappingChanged,
      EventType::kDiskFailed,          EventType::kDiskRecovered,
      EventType::kRaidRebuildStarted,  EventType::kRaidRebuildCompleted,
      EventType::kExternalWorkloadStarted,
      EventType::kExternalWorkloadStopped,
      EventType::kVolumePerfDegraded,  EventType::kSubsystemHighLoad,
      EventType::kIndexCreated,        EventType::kIndexDropped,
      EventType::kDbParamChanged,      EventType::kTableStatsChanged,
      EventType::kDmlBatch,            EventType::kTableLockContention,
      EventType::kHbaFailed,           EventType::kHbaRecovered,
      EventType::kPortFailed,          EventType::kPortRecovered,
      EventType::kSwitchFailed,        EventType::kSwitchRecovered,
      EventType::kLinkFailed,          EventType::kLinkRecovered,
      EventType::kPortDegraded,        EventType::kPathFailover,
      EventType::kRetryStormDetected,  EventType::kCompressionRatioDrifted,
      EventType::kZoneMapStale,
  };
  static const std::unordered_map<std::string, EventType>* kByName = [] {
    auto* map = new std::unordered_map<std::string, EventType>();
    for (EventType type : kAll) map->emplace(EventTypeName(type), type);
    return map;
  }();
  auto it = kByName->find(name);
  if (it == kByName->end()) {
    return Status::NotFound("unknown event type: " + name);
  }
  return it->second;
}

}  // namespace diads::diag
