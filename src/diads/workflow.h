// The DIADS diagnosis workflow (Figure 2) — batch and interactive modes.
//
// Batch mode (Section 6's default) runs PD -> CO -> DA -> CR -> SD -> IA and
// returns only the final report. Interactive mode (Figure 7) exposes the
// same modules one step at a time: results render after each module, the
// administrator can re-execute or bypass modules, edit the correlated
// operator set before it feeds Module DA, and stop early once the answer is
// clear — exactly the affordances the paper's workflow-execution screen
// describes ("Only the first execution of the modules should be in order,
// after that each module can be re-executed as many times as needed").
#ifndef DIADS_DIADS_WORKFLOW_H_
#define DIADS_DIADS_WORKFLOW_H_

#include <optional>
#include <string>
#include <vector>

#include "diads/correlated_operators.h"
#include "diads/correlated_records.h"
#include "diads/dependency_analysis.h"
#include "diads/diagnosis.h"
#include "diads/impact_analysis.h"
#include "diads/plan_diff.h"
#include "diads/symptoms_db.h"
#include "monitor/gather.h"

namespace diads::diag {

/// Wall-clock milliseconds spent in each module during one Diagnose() call.
/// Filled by Workflow::Diagnose when a non-null pointer is passed; the
/// serving layer feeds these into its per-module latency percentiles.
struct ModuleTimings {
  double pd_ms = 0, co_ms = 0, da_ms = 0, cr_ms = 0, sd_ms = 0, ia_ms = 0;
};

/// What one diagnosis's metric collection did (DiagnoseWithCollection).
/// Owns the collected snapshot the diagnosis ran over, so it must outlive
/// nothing — the report copies everything it keeps.
struct CollectionOutcome {
  monitor::GatherResult gather;
  size_t planned_components = 0;  ///< Fetch requests in the plan.
  size_t planned_series = 0;      ///< (component, metric) keys after dedup.

  bool degraded() const { return gather.degraded(); }
};

/// Batch workflow entry point.
///
/// Thread-safety: Diagnose() is const and touches only the read-only state
/// behind the DiagnosisContext, so one Workflow (or many Workflows sharing
/// a context and SymptomsDb) may diagnose concurrently from any number of
/// threads — with one exception: `ctx.plan_whatif_probe` is deployment
/// code that may temporarily mutate the deployment's catalog, racing any
/// concurrent diagnosis that reads the same catalog. Callers running
/// concurrent diagnoses over one deployment must either supply a
/// thread-safe probe or serialize probe-carrying diagnoses against the
/// rest (the DiagnosisEngine holds a per-catalog reader/writer lock for
/// this reason).
class Workflow {
 public:
  /// `symptoms_db` may be null: DIADS still narrows the search space via
  /// CO/DA/CR (Section 5 notes it "produces good results even when the
  /// symptoms database is incomplete"); causes then come from a fallback
  /// that reports the correlated components directly.
  Workflow(DiagnosisContext ctx, WorkflowConfig config,
           const SymptomsDb* symptoms_db);

  /// Runs the full drill-down and roll-up. When `timings` is non-null it
  /// receives the per-module wall-clock breakdown.
  Result<DiagnosisReport> Diagnose(
      ImpactMethod impact_method = ImpactMethod::kInverseDependency,
      ModuleTimings* timings = nullptr) const;

  /// The collection half of DiagnoseWithCollection: extracts the
  /// diagnosis window's metric needs (SymptomIndex::CollectMetricKeys),
  /// batches them into one fetch plan, and issues a single overlapped
  /// scatter/gather through `gatherer`. Touches only the context's store
  /// (never the catalog), so callers that serialize diagnoses behind a
  /// catalog lock can collect before taking it.
  CollectionOutcome Collect(const monitor::MetricGatherer& gatherer) const;

  /// The diagnosis half: the module chain over a Collect() snapshot.
  Result<DiagnosisReport> DiagnoseOverCollection(
      const CollectionOutcome& outcome,
      ImpactMethod impact_method = ImpactMethod::kInverseDependency,
      ModuleTimings* timings = nullptr) const;

  /// Collection-aware Diagnose: Collect() then DiagnoseOverCollection().
  /// Components that time out are served from locally cached series and
  /// reported via `outcome` (may be null) — the diagnosis itself never
  /// fails for collection reasons, and its report is
  /// ReportDigest-identical to a plain Diagnose over the source store.
  Result<DiagnosisReport> DiagnoseWithCollection(
      const monitor::MetricGatherer& gatherer,
      ImpactMethod impact_method = ImpactMethod::kInverseDependency,
      ModuleTimings* timings = nullptr,
      CollectionOutcome* outcome = nullptr) const;

  const DiagnosisContext& context() const { return ctx_; }
  const WorkflowConfig& config() const { return config_; }

 private:
  DiagnosisContext ctx_;
  WorkflowConfig config_;
  const SymptomsDb* symptoms_db_;
};

/// Builds causes straight from CO/DA/CR results when no symptoms database
/// is available: every CCS volume becomes an unexplained-contention
/// candidate, record-count changes a data-property candidate. Confidence is
/// capped at medium (the point of the symptoms DB is semantic certainty).
std::vector<RootCause> FallbackCauses(const DiagnosisContext& ctx,
                                      const WorkflowConfig& config,
                                      const CoResult& co, const DaResult& da,
                                      const CrResult& cr);

/// One-paragraph human summary of a report.
std::string SummarizeReport(const DiagnosisContext& ctx,
                            const DiagnosisReport& report);

/// Interactive workflow session (Figure 7).
class InteractiveSession {
 public:
  enum class Module { kPd, kCo, kDa, kCr, kSd, kIa };

  InteractiveSession(DiagnosisContext ctx, WorkflowConfig config,
                     const SymptomsDb* symptoms_db);

  /// True when the module's prerequisites have run at least once.
  bool CanRun(Module module) const;

  /// Executes (or re-executes) a module; returns its rendered result panel.
  Result<std::string> Run(Module module);

  /// The next module in first-pass order, or nullopt when all have run.
  std::optional<Module> NextModule() const;

  /// Administrator edit: remove an operator (by O-number) from the COS
  /// before running later modules. Interactive mode's result-editing knob.
  Status RemoveFromCos(int op_number);

  /// Administrator edit: force an operator into the COS.
  Status AddToCos(int op_number);

  /// Report assembled from whatever has run so far.
  const DiagnosisReport& report() const { return report_; }

  static const char* ModuleName(Module module);

 private:
  DiagnosisContext ctx_;
  WorkflowConfig config_;
  const SymptomsDb* symptoms_db_;
  DiagnosisReport report_;
  bool ran_pd_ = false, ran_co_ = false, ran_da_ = false, ran_cr_ = false,
       ran_sd_ = false, ran_ia_ = false;
};

}  // namespace diads::diag

#endif  // DIADS_DIADS_WORKFLOW_H_
