#include "diads/symptoms_db.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/symptom_index.h"

namespace diads::diag {

Status SymptomsDb::AddEntry(
    const std::string& name, RootCauseType type, bool bind_volumes,
    std::vector<std::pair<std::string, double>> conditions) {
  for (const RootCauseEntry& e : entries_) {
    if (e.name == name) {
      return Status::AlreadyExists("symptoms entry exists: " + name);
    }
  }
  RootCauseEntry entry;
  entry.name = name;
  entry.type = type;
  entry.bind_volumes = bind_volumes;
  double total = 0;
  for (auto& [text, weight] : conditions) {
    if (weight <= 0) {
      return Status::InvalidArgument(
          StrFormat("condition weight must be positive in entry '%s'",
                    name.c_str()));
    }
    Result<SymptomExpr> parsed = ParseSymptomExpr(text);
    DIADS_RETURN_IF_ERROR(parsed.status());
    Condition condition;
    condition.expr_text = text;
    condition.parsed = std::move(*parsed);
    condition.weight = weight;
    total += weight;
    entry.conditions.push_back(std::move(condition));
  }
  if (std::fabs(total - 100.0) > 0.01) {
    return Status::InvalidArgument(
        StrFormat("weights in entry '%s' sum to %.2f, expected 100",
                  name.c_str(), total));
  }
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Status SymptomsDb::RemoveEntry(const std::string& name) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->name == name) {
      entries_.erase(it);
      return Status::Ok();
    }
  }
  return Status::NotFound("no symptoms entry named: " + name);
}

SymptomsDb SymptomsDb::MakeDefault() {
  SymptomsDb db;
  auto must = [](Status status) { assert(status.ok()); (void)status; };

  // Scenario 1's root cause: a provisioning mistake mapped a new volume
  // onto $V's disks. The config events are the discriminating symptoms.
  must(db.AddEntry(
      "san-misconfiguration-contention",
      RootCauseType::kSanMisconfigurationContention, /*bind_volumes=*/true,
      {
          {"op_anomaly_majority(volume=$V)", 20},
          {"volume_metric_anomaly(volume=$V)", 20},
          {"component_correlated(component=$V)", 10},
          {"event_near(type=VolumeCreated, volume=$V)", 15},
          {"event_near(type=LunMappingChanged, volume=$V)", 10},
          {"event(type=ZoningChanged)", 10},
          {"before(event(type=VolumeCreated), event(type=VolumePerfDegraded))",
           5},
          {"no_plan_change()", 5},
          {"not record_count_change()", 5},
      }));

  // Scenario 2's root cause: a known external workload is hammering $V or
  // a disk-sharing neighbour.
  must(db.AddEntry(
      "external-workload-contention",
      RootCauseType::kExternalWorkloadContention, /*bind_volumes=*/true,
      {
          {"op_anomaly_majority(volume=$V)", 20},
          {"volume_metric_anomaly(volume=$V)", 20},
          {"component_correlated(component=$V)", 15},
          {"event_near(type=ExternalWorkloadStarted, volume=$V)", 25},
          {"no_plan_change()", 10},
          {"not record_count_change()", 10},
      }));

  // Scenario 3's root cause: DML changed data properties; record counts
  // moved while the plan stayed put.
  must(db.AddEntry("data-property-change", RootCauseType::kDataPropertyChange,
                   /*bind_volumes=*/false,
                   {
                       {"record_count_change()", 35},
                       {"event(type=DmlBatch)", 25},
                       {"op_anomaly_exists()", 15},
                       {"no_plan_change()", 10},
                       {"not lock_wait_high()", 5},
                       {"not event(type=ZoningChanged)", 5},
                       {"not event(type=VolumeCreated)", 5},
                   }));

  // Scenario 5's root cause: lock contention in the database layer.
  must(db.AddEntry("table-lock-contention", RootCauseType::kLockContention,
                   /*bind_volumes=*/false,
                   {
                       {"lock_wait_high()", 30},
                       {"locks_held_high()", 15},
                       {"event(type=TableLockContention)", 25},
                       {"op_anomaly_exists()", 10},
                       {"no_plan_change()", 10},
                       {"not record_count_change()", 10},
                   }));

  must(db.AddEntry("plan-change", RootCauseType::kPlanChange,
                   /*bind_volumes=*/false,
                   {
                       {"plan_changed()", 60},
                       {"plan_change_explained()", 40},
                   }));

  must(db.AddEntry("raid-rebuild", RootCauseType::kRaidRebuild,
                   /*bind_volumes=*/true,
                   {
                       {"event_near(type=RaidRebuildStarted, volume=$V)", 30},
                       {"volume_metric_anomaly(volume=$V)", 25},
                       {"op_anomaly_majority(volume=$V)", 20},
                       {"component_correlated(component=$V)", 10},
                       {"no_plan_change()", 10},
                       {"not record_count_change()", 5},
                   }));

  must(db.AddEntry("disk-failure", RootCauseType::kDiskFailure,
                   /*bind_volumes=*/true,
                   {
                       {"event_near(type=DiskFailed, volume=$V)", 40},
                       {"volume_metric_anomaly(volume=$V)", 25},
                       {"op_anomaly_any(volume=$V)", 20},
                       {"no_plan_change()", 10},
                       {"not record_count_change()", 5},
                   }));

  must(db.AddEntry("buffer-pool-pressure",
                   RootCauseType::kBufferPoolPressure,
                   /*bind_volumes=*/false,
                   {
                       {"db_blocks_read_high()", 30},
                       {"event(type=DbParamChanged)", 30},
                       {"op_anomaly_exists()", 15},
                       {"no_plan_change()", 10},
                       {"not lock_wait_high()", 10},
                       {"not event(type=ZoningChanged)", 5},
                   }));

  must(db.AddEntry("cpu-saturation", RootCauseType::kCpuSaturation,
                   /*bind_volumes=*/false,
                   {
                       {"cpu_high()", 45},
                       {"op_anomaly_exists()", 20},
                       {"no_plan_change()", 15},
                       {"not record_count_change()", 10},
                       {"not lock_wait_high()", 10},
                   }));

  // Scenario F1's root cause: an HBA died, the multipath driver failed I/O
  // over to the surviving fabric, and the now-overloaded path congests. The
  // application never saw the failure — only the slowdown.
  must(db.AddEntry("hba-failure", RootCauseType::kHbaFailure,
                   /*bind_volumes=*/false,
                   {
                       {"event(type=HbaFailed)", 40},
                       {"event(type=PathFailover)", 25},
                       {"before(event(type=HbaFailed), "
                        "event(type=VolumePerfDegraded))",
                        15},
                       {"op_anomaly_exists()", 10},
                       {"no_plan_change()", 10},
                   }));

  // Scenario F2's root cause: one path of a multipath set degraded (bad
  // SFP, CRC retries) but kept routing, so half the I/O crawls through a
  // throttled port while the driver keeps round-robining onto it.
  must(db.AddEntry("multipath-imbalance",
                   RootCauseType::kMultipathImbalance,
                   /*bind_volumes=*/false,
                   {
                       {"event(type=PortDegraded)", 62},
                       {"before(event(type=PortDegraded), "
                        "event(type=VolumePerfDegraded))",
                        16},
                       {"fabric_component_anomalous()", 14},
                       {"op_anomaly_exists()", 8},
                   }));

  // Scenario F4's root cause: timeouts spawn retries which deepen the queue
  // which spawns more timeouts — the snowball. The retry-storm trigger
  // always fires *after* the first latency degradation it amplifies.
  must(db.AddEntry(
      "retry-storm", RootCauseType::kRetryStorm, /*bind_volumes=*/true,
      {
          {"event_near(type=RetryStormDetected, volume=$V)", 45},
          {"before(event(type=VolumePerfDegraded), "
           "event(type=RetryStormDetected))",
           35},
          {"volume_metric_anomaly(volume=$V)", 10},
          {"op_anomaly_majority(volume=$V)", 10},
      }));

  // Scenario C1's root cause (columnar engine): churny DML degraded the
  // segment compression ratio, so every scan of the table reads more pages
  // for the same logical rows. The engine's churn monitor logs the drift;
  // the bulk of the weight is gated on that event so the entry stays below
  // the report floor on engines that have no segments at all.
  must(db.AddEntry(
      "compression-ratio-drift", RootCauseType::kCompressionRatioDrift,
      /*bind_volumes=*/false,
      {
          {"event(type=CompressionRatioDrifted)", 40},
          {"event(type=CompressionRatioDrifted) and no_plan_change()", 15},
          {"event(type=CompressionRatioDrifted) and "
           "not record_count_change()",
           15},
          {"event(type=CompressionRatioDrifted) and db_blocks_read_high()",
           10},
          {"op_anomaly_exists()", 12},
          {"db_blocks_read_high()", 8},
      }));

  // Scenario C2's root cause (columnar engine): stale zone maps stop
  // pruning, so zone-pruned scans — and only those — read segments they
  // should skip. Gated the same way as C1; the two are distinguished by
  // which engine event fired, exactly as a DBA would tell them apart.
  must(db.AddEntry(
      "zone-map-staleness", RootCauseType::kZoneMapStaleness,
      /*bind_volumes=*/false,
      {
          {"event(type=ZoneMapStale)", 40},
          {"event(type=ZoneMapStale) and no_plan_change()", 15},
          {"event(type=ZoneMapStale) and not record_count_change()", 15},
          {"event(type=ZoneMapStale) and db_blocks_read_high()", 10},
          {"op_anomaly_exists()", 12},
          {"db_blocks_read_high()", 8},
      }));
  return db;
}

namespace {

/// Subject of a cause instance: the bound volume for templated entries,
/// else a type-specific best subject.
ComponentId CauseSubject(const RootCauseEntry& entry, ComponentId bound_volume,
                         const DiagnosisContext& ctx, const CrResult& cr) {
  if (entry.bind_volumes) return bound_volume;
  switch (entry.type) {
    case RootCauseType::kDataPropertyChange: {
      // The table behind the highest-deviation CRS leaf.
      const RecordCountAnomaly* best = nullptr;
      for (const RecordCountAnomaly& a : cr.scores) {
        if (!cr.InCrs(a.op_index)) continue;
        if (!ctx.apg->plan().op(a.op_index).is_scan()) continue;
        if (best == nullptr || a.deviation_score > best->deviation_score) {
          best = &a;
        }
      }
      if (best != nullptr) {
        Result<const db::TableDef*> table =
            ctx.catalog->FindTable(ctx.apg->plan().op(best->op_index).table);
        if (table.ok()) return (*table)->id;
      }
      return ctx.database;
    }
    case RootCauseType::kLockContention: {
      const std::vector<SystemEvent> events =
          ctx.events->EventsOfTypeIn(EventType::kTableLockContention,
                                     ctx.AnalysisWindow());
      if (!events.empty()) return events.front().subject;
      return ctx.database;
    }
    case RootCauseType::kHbaFailure: {
      const std::vector<SystemEvent> events = ctx.events->EventsOfTypeIn(
          EventType::kHbaFailed, ctx.AnalysisWindow());
      if (!events.empty()) return events.front().subject;
      return ctx.database;
    }
    case RootCauseType::kMultipathImbalance: {
      const std::vector<SystemEvent> events = ctx.events->EventsOfTypeIn(
          EventType::kPortDegraded, ctx.AnalysisWindow());
      if (!events.empty()) return events.front().subject;
      return ctx.database;
    }
    case RootCauseType::kCompressionRatioDrift: {
      const std::vector<SystemEvent> events = ctx.events->EventsOfTypeIn(
          EventType::kCompressionRatioDrifted, ctx.AnalysisWindow());
      if (!events.empty()) return events.front().subject;
      return ctx.database;
    }
    case RootCauseType::kZoneMapStaleness: {
      const std::vector<SystemEvent> events = ctx.events->EventsOfTypeIn(
          EventType::kZoneMapStale, ctx.AnalysisWindow());
      if (!events.empty()) return events.front().subject;
      return ctx.database;
    }
    default:
      return ctx.database;
  }
}

}  // namespace

Result<std::vector<RootCause>> RunSymptomsDatabase(
    const DiagnosisContext& ctx, const WorkflowConfig& config,
    const PdResult& pd, const CoResult& co, const DaResult& da,
    const CrResult& cr, const SymptomsDb& db) {
  // Candidate volume bindings: the plan's volumes plus their disk-sharers
  // (a misconfigured sharer can be the subject even though no operator
  // reads it directly; the *affected* volume is what entries bind).
  std::set<ComponentId> bindings;
  for (ComponentId v : ctx.apg->PlanVolumes()) bindings.insert(v);

  // One set of precomputed lookup tables serves every entry evaluation:
  // entries x volume bindings x conditions otherwise rescans the DA
  // metrics and the event log per condition.
  const SymptomIndex index = SymptomIndex::Build(ctx, config, co, da);

  std::vector<RootCause> causes;
  for (const RootCauseEntry& entry : db.entries()) {
    std::vector<ComponentId> entry_bindings;
    if (entry.bind_volumes) {
      entry_bindings.assign(bindings.begin(), bindings.end());
    } else {
      entry_bindings.push_back(ComponentId{});
    }
    for (ComponentId binding : entry_bindings) {
      SymptomEvalContext eval;
      eval.ctx = &ctx;
      eval.config = &config;
      eval.pd = &pd;
      eval.co = &co;
      eval.da = &da;
      eval.cr = &cr;
      eval.bound_volume = binding;
      eval.index = &index;

      double confidence = 0;
      std::vector<std::string> fired;
      for (const Condition& condition : entry.conditions) {
        Result<bool> value = EvaluateSymptom(condition.parsed, eval);
        DIADS_RETURN_IF_ERROR(value.status());
        if (*value) {
          confidence += condition.weight;
          fired.push_back(StrFormat("%s (+%.0f)",
                                    condition.expr_text.c_str(),
                                    condition.weight));
        }
      }
      if (confidence < config.report_floor) continue;

      RootCause cause;
      cause.type = entry.type;
      cause.subject = CauseSubject(entry, binding, ctx, cr);
      cause.confidence = confidence;
      cause.band = confidence >= config.high_confidence
                       ? ConfidenceBand::kHigh
                       : (confidence >= config.medium_confidence
                              ? ConfidenceBand::kMedium
                              : ConfidenceBand::kLow);
      cause.explanation = Join(fired, "; ");
      causes.push_back(std::move(cause));
    }
  }

  // Dedup (type, subject) keeping the highest confidence, then sort.
  std::sort(causes.begin(), causes.end(),
            [](const RootCause& a, const RootCause& b) {
              if (a.type != b.type) return a.type < b.type;
              if (!(a.subject == b.subject)) return a.subject < b.subject;
              return a.confidence > b.confidence;
            });
  std::vector<RootCause> deduped;
  for (RootCause& cause : causes) {
    if (!deduped.empty() && deduped.back().type == cause.type &&
        deduped.back().subject == cause.subject) {
      continue;
    }
    deduped.push_back(std::move(cause));
  }
  std::sort(deduped.begin(), deduped.end(),
            [](const RootCause& a, const RootCause& b) {
              return a.confidence > b.confidence;
            });
  return deduped;
}

std::string RenderSdResult(const DiagnosisContext& ctx,
                           const std::vector<RootCause>& causes) {
  const ComponentRegistry& registry = ctx.topology->registry();
  TablePrinter table({"Root cause", "Subject", "Confidence", "Band"});
  for (const RootCause& cause : causes) {
    table.AddRow({RootCauseTypeName(cause.type),
                  registry.Contains(cause.subject)
                      ? registry.NameOf(cause.subject)
                      : "-",
                  FormatDouble(cause.confidence, 0) + "%",
                  ConfidenceBandName(cause.band)});
  }
  return StrFormat("=== Module SD: symptoms database (%zu candidates) ===\n",
                   causes.size()) +
         table.Render();
}

}  // namespace diads::diag
