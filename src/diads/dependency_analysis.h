// Module DA — Dependency Analysis (Section 4.1).
//
// Identifies the correlated component set (CCS): components that (i) lie on
// the dependency path (inner or outer) of at least one COS operator, and
// (ii) have at least one performance metric significantly correlated with
// that operator's running time. Property (ii) is the pruning step: being on
// a dependency path is necessary but not sufficient — the component's
// metrics must both look anomalous (KDE score) and co-move with the
// operator's slowdown (rank correlation across runs).
//
// Table 2 of the paper is exactly this module's per-metric anomaly-score
// output for volumes V1 and V2.
#ifndef DIADS_DIADS_DEPENDENCY_ANALYSIS_H_
#define DIADS_DIADS_DEPENDENCY_ANALYSIS_H_

#include "diads/diagnosis.h"

namespace diads::diag {

/// Runs Module DA over the COS from Module CO.
Result<DaResult> RunDependencyAnalysis(const DiagnosisContext& ctx,
                                       const WorkflowConfig& config,
                                       const CoResult& co);

/// Console panel.
std::string RenderDaResult(const DiagnosisContext& ctx, const DaResult& da);

}  // namespace diads::diag

#endif  // DIADS_DIADS_DEPENDENCY_ANALYSIS_H_
