#include "diads/symptom_index.h"

namespace diads::diag {
namespace {

uint64_t PairKey(ComponentId component, monitor::MetricId metric) {
  return (static_cast<uint64_t>(component.value) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(metric));
}

}  // namespace

SymptomIndex SymptomIndex::Build(const DiagnosisContext& ctx,
                                 const WorkflowConfig& config,
                                 const CoResult& co, const DaResult& da) {
  SymptomIndex index;
  const double threshold = config.metric_anomaly.threshold;
  for (const MetricAnomaly& m : da.metrics) {
    // emplace keeps the first entry per pair — DaResult::Find semantics.
    index.metric_by_pair_.emplace(PairKey(m.component, m.metric), &m);
    if (m.anomaly_score >= threshold) {
      index.anomalous_components_.insert(m.component);
    }
  }
  index.ccs_.insert(da.correlated_component_set.begin(),
                    da.correlated_component_set.end());
  index.cos_.insert(co.correlated_operator_set.begin(),
                    co.correlated_operator_set.end());
  for (const SystemEvent& event : ctx.events->EventsIn(ctx.AnalysisWindow())) {
    index.events_by_type_[static_cast<int>(event.type)].push_back(event);
  }
  return index;
}

std::vector<monitor::SeriesKey> SymptomIndex::CollectMetricKeys(
    const DiagnosisContext& ctx) {
  std::vector<monitor::SeriesKey> keys;
  for (ComponentId component : ctx.apg->AllComponents()) {
    // The component's advertised metric inventory — in the simulation, the
    // series its collectors have actually produced.
    for (monitor::MetricId metric : ctx.store->MetricsFor(component)) {
      keys.push_back(monitor::SeriesKey{component, metric});
    }
  }
  return keys;
}

const MetricAnomaly* SymptomIndex::FindMetric(ComponentId component,
                                              monitor::MetricId metric) const {
  auto it = metric_by_pair_.find(PairKey(component, metric));
  return it == metric_by_pair_.end() ? nullptr : it->second;
}

const std::vector<SystemEvent>& SymptomIndex::EventsOfType(
    EventType type) const {
  auto it = events_by_type_.find(static_cast<int>(type));
  return it == events_by_type_.end() ? no_events_ : it->second;
}

std::optional<SimTimeMs> SymptomIndex::FirstEventTime(EventType type) const {
  const std::vector<SystemEvent>& events = EventsOfType(type);
  std::optional<SimTimeMs> first;
  for (const SystemEvent& event : events) {
    if (!first.has_value() || event.time < *first) first = event.time;
  }
  return first;
}

}  // namespace diads::diag
