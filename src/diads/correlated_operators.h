// Module CO — Correlated Operators (Section 4.1).
//
// Finds the correlated operator set (COS): the operators "whose change in
// performance best explains plan P's slowdown". For each operator, a KDE is
// fit to its running times over satisfactory runs; the anomaly score is the
// estimated prob(S <= u) aggregated over the unsatisfactory observations u.
// Operators scoring >= the threshold (0.8 in Section 5) join COS.
#ifndef DIADS_DIADS_CORRELATED_OPERATORS_H_
#define DIADS_DIADS_CORRELATED_OPERATORS_H_

#include "diads/diagnosis.h"

namespace diads::diag {

/// Runs Module CO. Requires at least two satisfactory and one
/// unsatisfactory run of the APG's plan.
Result<CoResult> RunCorrelatedOperators(const DiagnosisContext& ctx,
                                        const WorkflowConfig& config);

/// Renders the module result as a console panel (Figure 7's result pane).
std::string RenderCoResult(const DiagnosisContext& ctx, const CoResult& co);

}  // namespace diads::diag

#endif  // DIADS_DIADS_CORRELATED_OPERATORS_H_
