// Precomputed lookup index for symptom evaluation.
//
// Module SD evaluates every symptoms-database entry once per candidate
// volume binding, and every condition consults the module results through
// linear scans: DaResult::Find walks all scored metrics, volume checks
// rescan them per volume, event predicates re-filter the whole event log,
// and COS/CCS membership is a std::find per probe. For one interactive
// diagnosis that is fine; for a serving engine evaluating the database for
// every request on every worker it is the hot path.
//
// SymptomIndex precomputes, once per diagnosis, exactly the lookups the
// predicate language performs:
//
//   * (component, metric) -> first scored MetricAnomaly (hash map; same
//     first-match semantics as DaResult::Find),
//   * component -> has any metric scoring >= the anomaly threshold,
//   * CCS / COS membership sets,
//   * event type -> analysis-window events (and first occurrence time).
//
// The index borrows from the module results it was built over; keep them
// alive and unchanged while it is in use. It is immutable after Build, so
// it is safe to share read-only across worker threads — and every indexed
// answer is by construction identical to the linear-scan answer, which the
// symptom_expr tests assert.
#ifndef DIADS_DIADS_SYMPTOM_INDEX_H_
#define DIADS_DIADS_SYMPTOM_INDEX_H_

#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "diads/diagnosis.h"

namespace diads::diag {

class SymptomIndex {
 public:
  /// Builds the index over one diagnosis's module results.
  static SymptomIndex Build(const DiagnosisContext& ctx,
                            const WorkflowConfig& config, const CoResult& co,
                            const DaResult& da);

  /// Every (component, metric) series a diagnosis over `ctx` may consult,
  /// across all modules: each component on any APG inner/outer dependency
  /// path, crossed with the metrics that component exports. This is the
  /// metric-key extraction the async CollectionPlanner batches into
  /// per-component fetches — the same keys Module DA will score and the
  /// symptom predicates will probe, deduplicated once up front instead of
  /// re-derived per module.
  static std::vector<monitor::SeriesKey> CollectMetricKeys(
      const DiagnosisContext& ctx);

  /// Indexed DaResult::Find (first scored entry for the pair).
  const MetricAnomaly* FindMetric(ComponentId component,
                                  monitor::MetricId metric) const;

  /// Any metric of `component` scored >= the metric anomaly threshold.
  bool AnyMetricAnomalous(ComponentId component) const {
    return anomalous_components_.count(component) > 0;
  }

  bool InCcs(ComponentId component) const {
    return ccs_.count(component) > 0;
  }
  bool InCos(int op_index) const { return cos_.count(op_index) > 0; }

  /// Analysis-window events of one type, in log (time) order.
  const std::vector<SystemEvent>& EventsOfType(EventType type) const;

  /// Earliest analysis-window occurrence of an event type.
  std::optional<SimTimeMs> FirstEventTime(EventType type) const;

 private:
  std::unordered_map<uint64_t, const MetricAnomaly*> metric_by_pair_;
  std::unordered_set<ComponentId> anomalous_components_;
  std::unordered_set<ComponentId> ccs_;
  std::unordered_set<int> cos_;
  std::unordered_map<int, std::vector<SystemEvent>> events_by_type_;
  std::vector<SystemEvent> no_events_;
};

}  // namespace diads::diag

#endif  // DIADS_DIADS_SYMPTOM_INDEX_H_
