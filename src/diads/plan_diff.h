// Module PD — Plan Diffing (Section 4.1).
//
// "The first module in the workflow looks for significant changes between
// the plans used in satisfactory and unsatisfactory runs." When the plans
// differ, DIADS pinpoints the cause of the change by considering "each
// schema or configuration change that occurred between the runs of P1 and
// P2" and checking "whether this change could have caused the plan change".
//
// The could-it-explain check is a what-if probe: re-optimize the query as
// if the candidate event had not happened, and see whether the
// satisfactory-era plan comes back. The probe callback is supplied by the
// deployment (DiagnosisContext::plan_whatif_probe) because it requires a
// mutable catalog copy; without it, candidates are reported unverified.
#ifndef DIADS_DIADS_PLAN_DIFF_H_
#define DIADS_DIADS_PLAN_DIFF_H_

#include "diads/diagnosis.h"

namespace diads::diag {

/// Runs Module PD.
Result<PdResult> RunPlanDiff(const DiagnosisContext& ctx);

/// Console panel.
std::string RenderPdResult(const DiagnosisContext& ctx, const PdResult& pd);

}  // namespace diads::diag

#endif  // DIADS_DIADS_PLAN_DIFF_H_
