// Module SD — the Symptoms Database (Section 4.1).
//
// "DIADS's symptoms database is a collection of root cause entries each of
// which has the format Cond1 & Cond2 & ... & Condz ... Each Condi is a
// condition of the form ∃symp_j or ¬∃symp_j ... Each Condi is associated
// with a weight wi such that the sum of the weights for each individual
// root cause entry is 100%. From the symptoms observed currently, DIADS
// calculates a confidence score for each root cause R as the sum of the
// weights of R's conditions that evaluate to true", banded high (>= 80%),
// medium (>= 50%), low (< 50%).
//
// Entries may be volume-templated: `$V` in their conditions is instantiated
// for every volume the plan touches (and its disk-sharers), so one
// "contention in volume $V" entry covers V1, V2, ....
#ifndef DIADS_DIADS_SYMPTOMS_DB_H_
#define DIADS_DIADS_SYMPTOMS_DB_H_

#include <string>
#include <vector>

#include "diads/diagnosis.h"
#include "diads/symptom_expr.h"

namespace diads::diag {

/// One weighted condition (negation is expressed inside the expression).
struct Condition {
  std::string expr_text;
  SymptomExpr parsed;
  double weight = 0;
};

/// One root-cause entry.
struct RootCauseEntry {
  std::string name;
  RootCauseType type = RootCauseType::kExternalWorkloadContention;
  /// Instantiate the entry once per candidate volume, binding `$V`.
  bool bind_volumes = false;
  std::vector<Condition> conditions;
};

/// The symptoms database.
class SymptomsDb {
 public:
  /// Parses and validates an entry: expressions must parse and weights must
  /// sum to 100 (+- 0.01).
  Status AddEntry(const std::string& name, RootCauseType type,
                  bool bind_volumes,
                  std::vector<std::pair<std::string, double>> conditions);

  /// Removes an entry by name (used by the incomplete-database ablation).
  Status RemoveEntry(const std::string& name);

  const std::vector<RootCauseEntry>& entries() const { return entries_; }
  size_t size() const { return entries_.size(); }

  /// The in-house database the evaluation uses: entries for every root
  /// cause in Table 1's scenarios plus RAID rebuild, disk failure, buffer
  /// pool, and CPU saturation.
  static SymptomsDb MakeDefault();

 private:
  std::vector<RootCauseEntry> entries_;
};

/// Runs Module SD: evaluates every entry (per volume binding where
/// templated), computes confidence scores, and returns candidates above the
/// report floor sorted by confidence. Root causes do not yet carry impact
/// scores (Module IA fills those).
Result<std::vector<RootCause>> RunSymptomsDatabase(
    const DiagnosisContext& ctx, const WorkflowConfig& config,
    const PdResult& pd, const CoResult& co, const DaResult& da,
    const CrResult& cr, const SymptomsDb& db);

/// Console panel.
std::string RenderSdResult(const DiagnosisContext& ctx,
                           const std::vector<RootCause>& causes);

}  // namespace diads::diag

#endif  // DIADS_DIADS_SYMPTOMS_DB_H_
