// Shared types of the DIADS diagnosis workflow (Figure 2).
//
// The workflow drills down Query -> Plans -> Operators -> Components ->
// Events -> Symptoms and rolls back up through Impact. Each module consumes
// the DiagnosisContext (the run history, monitoring data, events, and the
// APG) plus the results of earlier modules, and contributes one section of
// the DiagnosisReport.
#ifndef DIADS_DIADS_DIAGNOSIS_H_
#define DIADS_DIADS_DIAGNOSIS_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "apg/apg.h"
#include "common/event_log.h"
#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/catalog.h"
#include "db/run_record.h"
#include "monitor/metrics.h"
#include "monitor/timeseries.h"
#include "obs/cost_profile.h"
#include "obs/trace.h"
#include "san/topology.h"
#include "stats/anomaly.h"

namespace diads::diag {

class BaselineModelCache;  // diads/model_cache.h

/// Workflow thresholds. Defaults follow Section 5 (anomaly threshold 0.8)
/// and Section 4.1 (confidence bands high >= 80%, medium >= 50%).
struct WorkflowConfig {
  stats::AnomalyConfig operator_anomaly;   ///< Module CO scoring.
  stats::AnomalyConfig metric_anomaly;     ///< Module DA scoring.
  stats::AnomalyConfig record_deviation;   ///< Module CR scoring (two-sided).
  /// Minimum |Spearman| between a metric and an operator's running time for
  /// Module DA's correlation pruning (property (ii) of Section 4.1).
  double correlation_threshold = 0.5;
  double high_confidence = 80.0;
  double medium_confidence = 50.0;
  /// Causes below this confidence are dropped from the report entirely.
  double report_floor = 25.0;
};

/// Everything the workflow reads. All pointers must outlive the workflow.
struct DiagnosisContext {
  const db::RunCatalog* runs = nullptr;
  std::string query;
  const monitor::TimeSeriesStore* store = nullptr;
  const EventLog* events = nullptr;
  const apg::Apg* apg = nullptr;
  const san::SanTopology* topology = nullptr;
  const db::Catalog* catalog = nullptr;
  ComponentId database;

  /// Optional Module PD probe: given a plan-affecting event, re-optimize
  /// the query as if the event had not happened and return the resulting
  /// plan fingerprint. Supplied by the deployment (it owns a mutable
  /// catalog copy); nullptr disables what-if probing.
  std::function<Result<uint64_t>(const SystemEvent&)> plan_whatif_probe;

  /// Optional anomaly-model fast path: when non-null, Modules CO/DA/CR
  /// memoize their fitted baseline KDEs here across diagnoses. Pure
  /// performance — a hit reproduces the refit's scores bit for bit, so
  /// reports are ReportDigest-identical with the cache on or off.
  BaselineModelCache* model_cache = nullptr;
  /// Identity + generation authority for model-cache keys over metric
  /// series. Defaults to `store` when null; the engine points it at the
  /// tenant's live store so diagnoses over per-request collected
  /// snapshots (whose store pointers are ephemeral) still share models.
  const monitor::TimeSeriesStore* model_authority = nullptr;

  /// Observability plumbing. Both are strictly write-only side channels:
  /// nothing the workflow computes reads them, so enabling tracing or
  /// lookup accounting cannot change a report (ReportDigest-neutral).
  ///
  /// Trace context for this diagnosis; modules open child spans under it.
  /// Disabled (no-op) by default.
  obs::TraceContext trace;
  /// When non-null, GetOrFitBaseline attributes its cache hits/misses to
  /// this diagnosis here (feeds the per-diagnosis CostProfile).
  obs::ModelLookupCounters* model_lookups = nullptr;

  /// The effective authority: `model_authority` when set, else `store`.
  /// The single fallback rule every generation consumer must share —
  /// model-cache keys, the engine's result-cache stamps, and fleet
  /// verdict stamps all validate against this store's append counters,
  /// and they only agree because they all call this.
  const monitor::TimeSeriesStore* Authority() const {
    return model_authority != nullptr ? model_authority : store;
  }

  /// The diagnosis window: first labelled run start to last labelled run
  /// end.
  TimeInterval AnalysisWindow() const;
  /// Window between the last satisfactory and first unsatisfactory run —
  /// where Module PD looks for the change that broke things.
  TimeInterval TransitionWindow() const;

  std::vector<const db::QueryRunRecord*> SatisfactoryRuns() const;
  std::vector<const db::QueryRunRecord*> UnsatisfactoryRuns() const;
};

// --- Module PD ------------------------------------------------------------

struct PlanChangeCandidate {
  SystemEvent event;
  /// True if reverting the event reproduces the satisfactory-era plan
  /// (nullopt when no probe was available).
  std::optional<bool> could_explain;
  std::string reasoning;
};

struct PdResult {
  bool plans_differ = false;
  std::vector<uint64_t> satisfactory_fingerprints;
  std::vector<uint64_t> unsatisfactory_fingerprints;
  std::vector<PlanChangeCandidate> candidates;
};

// --- Module CO ------------------------------------------------------------

struct OperatorAnomaly {
  int op_index = -1;
  int op_number = 0;
  double score = 0;      ///< prob(S <= u) aggregated over unsatisfactory runs.
  bool anomalous = false;
};

struct CoResult {
  std::vector<OperatorAnomaly> scores;          ///< One per plan operator.
  std::vector<int> correlated_operator_set;     ///< COS, op indexes.

  const OperatorAnomaly* FindOp(int op_index) const;
  bool InCos(int op_index) const;
};

// --- Module DA ------------------------------------------------------------

struct MetricAnomaly {
  ComponentId component;
  monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  double anomaly_score = 0;
  /// Max |Spearman| between this metric (per-run means) and the running
  /// time of any COS operator that depends on the component.
  double correlation = 0;
  bool correlated = false;  ///< Passed both thresholds.
};

struct DaResult {
  std::vector<MetricAnomaly> metrics;           ///< All scored metrics.
  std::vector<ComponentId> correlated_component_set;  ///< CCS.

  bool InCcs(ComponentId component) const;
  /// Best (highest-scoring) entry for a component/metric pair, if scored.
  const MetricAnomaly* Find(ComponentId component,
                            monitor::MetricId metric) const;
  /// Highest anomaly score across a component's metrics (0 if none).
  double MaxAnomalyFor(ComponentId component) const;
};

// --- Module CR ------------------------------------------------------------

struct RecordCountAnomaly {
  int op_index = -1;
  int op_number = 0;
  double deviation_score = 0;  ///< Two-sided KDE deviation.
  bool significant = false;
};

struct CrResult {
  std::vector<RecordCountAnomaly> scores;
  std::vector<int> correlated_record_set;  ///< CRS (subset of COS).
  bool data_properties_changed = false;

  bool InCrs(int op_index) const;
};

// --- Modules SD / IA --------------------------------------------------------

/// The root-cause taxonomy DIADS reports over.
enum class RootCauseType {
  kSanMisconfigurationContention,
  kExternalWorkloadContention,
  kDataPropertyChange,
  kLockContention,
  kPlanChange,
  kRaidRebuild,
  kDiskFailure,
  kBufferPoolPressure,
  kCpuSaturation,
  // Fabric/multipath causes (appended; values are stable in digests).
  kHbaFailure,
  kMultipathImbalance,
  kRetryStorm,
  // Column-store storage-layout causes (appended; values are stable in
  // digests).
  kCompressionRatioDrift,
  kZoneMapStaleness,
};

const char* RootCauseTypeName(RootCauseType type);

enum class ConfidenceBand { kHigh, kMedium, kLow };

const char* ConfidenceBandName(ConfidenceBand band);

struct RootCause {
  RootCauseType type = RootCauseType::kExternalWorkloadContention;
  /// Primary subject (the contended volume, the changed table, ...).
  ComponentId subject;
  double confidence = 0;  ///< 0..100, Module SD.
  ConfidenceBand band = ConfidenceBand::kLow;
  std::string explanation;           ///< Which conditions fired.
  std::optional<double> impact_pct;  ///< Module IA, high-confidence only.
};

/// The complete workflow output.
struct DiagnosisReport {
  PdResult pd;
  CoResult co;
  DaResult da;
  CrResult cr;
  std::vector<RootCause> causes;  ///< Sorted by confidence, then impact.
  std::string summary;            ///< One-paragraph human text.

  /// Top cause or nullptr.
  const RootCause* TopCause() const {
    return causes.empty() ? nullptr : &causes.front();
  }
};

/// Per-run series extraction helpers shared by the modules.
///
/// Running time t(O) per run for one operator (paper: stop - start).
std::vector<double> OperatorSpans(
    const std::vector<const db::QueryRunRecord*>& runs, int op_index);
/// Actual record counts per run for one operator.
std::vector<double> OperatorRecordCounts(
    const std::vector<const db::QueryRunRecord*>& runs, int op_index);
/// Per-run mean of a component metric over each run's interval; entries
/// with no samples are skipped in `out` and counted in `missing`.
std::vector<double> MetricPerRun(
    const monitor::TimeSeriesStore& store, ComponentId component,
    monitor::MetricId metric,
    const std::vector<const db::QueryRunRecord*>& runs, int* missing);

}  // namespace diads::diag

#endif  // DIADS_DIADS_DIAGNOSIS_H_
