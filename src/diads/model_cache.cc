#include "diads/model_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace diads::diag {
namespace {

uint64_t DoubleBits(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

uint64_t MixBits64(uint64_t h, uint64_t v) {
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  return h;
}

uint64_t HashDoubles(const std::vector<double>& xs) {
  uint64_t h = 0xba5e11e5ee0d1234ull ^ xs.size();
  for (double x : xs) h = MixBits64(h, DoubleBits(x));
  return h;
}

uint64_t RunSetFingerprint(
    const std::vector<const db::QueryRunRecord*>& runs) {
  uint64_t h = 0x5e7f1d6e57a9b3c1ull ^ runs.size();
  for (const db::QueryRunRecord* run : runs) {
    h = MixBits64(h, static_cast<uint64_t>(run->run_id));
    h = MixBits64(h, static_cast<uint64_t>(run->interval.begin));
    h = MixBits64(h, static_cast<uint64_t>(run->interval.end));
  }
  return h;
}

uint64_t AnomalyConfigFingerprint(const stats::AnomalyConfig& config) {
  uint64_t h = 0xa40ca11c0f1d6e55ull;
  h = MixBits64(h, static_cast<uint64_t>(config.bandwidth_rule));
  h = MixBits64(h, static_cast<uint64_t>(config.aggregation));
  h = MixBits64(h, DoubleBits(config.threshold));
  return h;
}

uint64_t SeriesIdOfMetric(ComponentId component, monitor::MetricId metric) {
  return (1ull << 62) | (static_cast<uint64_t>(component.value) << 16) |
         (static_cast<uint64_t>(metric) & 0xFFFFu);
}

uint64_t SeriesIdOfOperator(uint64_t kind, uint64_t plan_fingerprint,
                            int op_index) {
  uint64_t h = MixBits64(kind, plan_fingerprint);
  return MixBits64(h, static_cast<uint64_t>(op_index));
}

size_t BaselineModelKeyHash::operator()(
    const BaselineModelKey& key) const noexcept {
  uint64_t h = MixBits64(0xcafef00dd15ea5e5ull,
                         reinterpret_cast<uintptr_t>(key.source));
  h = MixBits64(h, key.series);
  h = MixBits64(h, static_cast<uint64_t>(key.window_begin));
  h = MixBits64(h, static_cast<uint64_t>(key.window_end));
  h = MixBits64(h, key.config_fingerprint);
  h = MixBits64(h, key.provenance_fingerprint);
  return static_cast<size_t>(h);
}

BaselineModelCache::BaselineModelCache() : BaselineModelCache(Options{}) {}

BaselineModelCache::BaselineModelCache(Options options) {
  const int shards = std::max(1, options.shards);
  shard_capacity_ =
      std::max<size_t>(1, options.capacity / static_cast<size_t>(shards));
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

BaselineModelCache::Shard& BaselineModelCache::ShardFor(
    const BaselineModelKey& key) {
  const size_t h = BaselineModelKeyHash{}(key);
  return *shards_[h % shards_.size()];
}

std::optional<CachedBaseline> BaselineModelCache::Get(
    const BaselineModelKey& key, uint64_t generation) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  if (it->second->generation != generation) {
    // The source advanced past the fit: drop the stale entry so the
    // recompute replaces it instead of thrashing against it.
    shard.lru.erase(it->second);
    shard.index.erase(it);
    ++shard.invalidations;
    ++shard.misses;
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  return it->second->baseline;
}

void BaselineModelCache::Put(const BaselineModelKey& key, uint64_t generation,
                             CachedBaseline baseline) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->generation = generation;
    it->second->baseline = std::move(baseline);
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.push_front(Entry{key, generation, std::move(baseline)});
  shard.index.emplace(key, shard.lru.begin());
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

BaselineModelCache::Counters BaselineModelCache::TotalCounters() const {
  Counters out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.evictions += shard->evictions;
    out.invalidations += shard->invalidations;
    out.entries += shard->lru.size();
  }
  return out;
}

void BaselineModelCache::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

Result<CachedBaseline> GetOrFitBaseline(
    BaselineModelCache* cache, const BaselineModelKey& key,
    uint64_t generation, stats::BandwidthRule rule,
    const std::function<ExtractedBaseline()>& extract,
    obs::ModelLookupCounters* lookups) {
  if (cache != nullptr) {
    if (std::optional<CachedBaseline> cached = cache->Get(key, generation)) {
      if (lookups != nullptr) ++lookups->hits;
      return std::move(*cached);
    }
  }
  if (lookups != nullptr) ++lookups->misses;
  ExtractedBaseline extracted = extract();
  CachedBaseline out;
  out.missing = extracted.missing;
  out.values = std::make_shared<const std::vector<double>>(
      std::move(extracted.values));
  if (out.values->size() < 2) {
    // Below the modules' fit threshold: nothing to model, nothing worth
    // caching (re-extraction is what the cache saves, and a sub-2-sample
    // series is a skip, not a score).
    return out;
  }
  Result<stats::SortedKde> fit = stats::SortedKde::Fit(*out.values, rule);
  DIADS_RETURN_IF_ERROR(fit.status());
  out.model =
      std::make_shared<const stats::SortedKde>(std::move(fit).value());
  if (cache != nullptr) cache->Put(key, generation, out);
  return out;
}

}  // namespace diads::diag
