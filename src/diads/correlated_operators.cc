#include "diads/correlated_operators.h"

#include <algorithm>
#include <memory>

#include "common/strings.h"
#include "common/table_printer.h"
#include "diads/model_cache.h"

namespace diads::diag {

Result<CoResult> RunCorrelatedOperators(const DiagnosisContext& ctx,
                                        const WorkflowConfig& config) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.size() < 2) {
    return Status::FailedPrecondition(
        "Module CO needs at least two satisfactory runs");
  }
  if (bad.empty()) {
    return Status::FailedPrecondition(
        "Module CO needs at least one unsatisfactory run");
  }

  // Restrict to runs of the plan under diagnosis (Module PD has already
  // peeled off runs with different plans).
  const uint64_t fp = ctx.apg->plan().Fingerprint();
  auto same_plan = [fp](const db::QueryRunRecord* run) {
    return run->plan_fingerprint == fp;
  };
  std::vector<const db::QueryRunRecord*> good_p;
  std::vector<const db::QueryRunRecord*> bad_p;
  std::copy_if(good.begin(), good.end(), std::back_inserter(good_p),
               same_plan);
  std::copy_if(bad.begin(), bad.end(), std::back_inserter(bad_p), same_plan);
  if (good_p.size() < 2 || bad_p.empty()) {
    return Status::FailedPrecondition(
        "Module CO needs satisfactory and unsatisfactory runs of the same "
        "plan");
  }

  // Baseline-model identity shared by every operator of this plan: the
  // baselines are per-run series, so the run catalog is the source, its
  // size the append generation, and the satisfactory same-plan run set
  // the provenance.
  const TimeInterval window = ctx.AnalysisWindow();
  const uint64_t config_fp =
      AnomalyConfigFingerprint(config.operator_anomaly);
  const uint64_t runs_generation = ctx.runs->size();
  const uint64_t provenance = RunSetFingerprint(good_p);

  CoResult out;
  for (const db::PlanOp& op : ctx.apg->plan().ops()) {
    BaselineModelKey key;
    key.source = ctx.runs;
    key.series = SeriesIdOfOperator(/*kind=*/1, fp, op.index);
    key.window_begin = window.begin;
    key.window_end = window.end;
    key.config_fingerprint = config_fp;
    key.provenance_fingerprint = provenance;
    Result<CachedBaseline> base = GetOrFitBaseline(
        ctx.model_cache, key, runs_generation,
        config.operator_anomaly.bandwidth_rule, [&good_p, &op] {
          ExtractedBaseline e;
          e.values = OperatorSpans(good_p, op.index);
          return e;
        },
        ctx.model_lookups);
    DIADS_RETURN_IF_ERROR(base.status());
    const std::vector<double> observed = OperatorSpans(bad_p, op.index);
    if (base->model == nullptr || observed.empty()) continue;
    Result<stats::AnomalyScore> score = stats::ScoreWithModel(
        *base->model, observed, config.operator_anomaly);
    DIADS_RETURN_IF_ERROR(score.status());
    OperatorAnomaly a;
    a.op_index = op.index;
    a.op_number = op.op_number;
    a.score = score->score;
    a.anomalous = score->anomalous;
    if (a.anomalous) out.correlated_operator_set.push_back(op.index);
    out.scores.push_back(a);
  }
  return out;
}

std::string RenderCoResult(const DiagnosisContext& ctx, const CoResult& co) {
  TablePrinter table({"Operator", "Type", "Anomaly score", "In COS"});
  std::vector<OperatorAnomaly> sorted = co.scores;
  std::sort(sorted.begin(), sorted.end(),
            [](const OperatorAnomaly& a, const OperatorAnomaly& b) {
              return a.score > b.score;
            });
  for (const OperatorAnomaly& a : sorted) {
    const db::PlanOp& op = ctx.apg->plan().op(a.op_index);
    std::string type = db::OpTypeName(op.type);
    if (op.is_scan()) type += " on " + op.table;
    table.AddRow({StrFormat("O%d", a.op_number), type,
                  FormatDouble(a.score, 3), a.anomalous ? "yes" : ""});
  }
  return StrFormat(
             "=== Module CO: correlated operators (|COS| = %zu) ===\n",
             co.correlated_operator_set.size()) +
         table.Render();
}

}  // namespace diads::diag
