// Module CR — Correlated Record-counts (Section 4.1).
//
// Checks whether COS operators' record counts moved between satisfactory
// and unsatisfactory runs. "Significant correlations mean that data
// properties have changed" — the fingerprint of scenario 3's bulk DML.
// Scoring is two-sided (ScoreDeviation): the row counts may have grown or
// shrunk.
#ifndef DIADS_DIADS_CORRELATED_RECORDS_H_
#define DIADS_DIADS_CORRELATED_RECORDS_H_

#include "diads/diagnosis.h"

namespace diads::diag {

/// Runs Module CR over the COS from Module CO.
Result<CrResult> RunCorrelatedRecords(const DiagnosisContext& ctx,
                                      const WorkflowConfig& config,
                                      const CoResult& co);

/// Console panel.
std::string RenderCrResult(const DiagnosisContext& ctx, const CrResult& cr);

}  // namespace diads::diag

#endif  // DIADS_DIADS_CORRELATED_RECORDS_H_
