#include "diads/workflow.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <utility>

#include "common/strings.h"
#include "diads/symptom_index.h"
#include "monitor/collection_planner.h"

namespace diads::diag {
namespace {

/// Scoped wall-clock timer writing milliseconds into `*slot` (null-safe).
class ModuleTimer {
 public:
  explicit ModuleTimer(double* slot)
      : slot_(slot), start_(std::chrono::steady_clock::now()) {}
  ~ModuleTimer() {
    if (slot_ == nullptr) return;
    *slot_ = std::chrono::duration<double, std::milli>(
                 std::chrono::steady_clock::now() - start_)
                 .count();
  }

 private:
  double* slot_;
  std::chrono::steady_clock::time_point start_;
};

double* Slot(ModuleTimings* timings, double ModuleTimings::*member) {
  return timings == nullptr ? nullptr : &(timings->*member);
}

}  // namespace

Workflow::Workflow(DiagnosisContext ctx, WorkflowConfig config,
                   const SymptomsDb* symptoms_db)
    : ctx_(std::move(ctx)), config_(config), symptoms_db_(symptoms_db) {
  assert(ctx_.runs && ctx_.store && ctx_.events && ctx_.apg &&
         ctx_.topology && ctx_.catalog);
}

Result<DiagnosisReport> Workflow::Diagnose(ImpactMethod impact_method,
                                           ModuleTimings* timings) const {
  DiagnosisReport report;

  // Query -> Plans.
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:PD", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::pd_ms));
    Result<PdResult> pd = RunPlanDiff(ctx_);
    DIADS_RETURN_IF_ERROR(pd.status());
    report.pd = std::move(*pd);
  }

  // Plans -> Operators. (When plans differ the remaining drill-down still
  // runs on the shared plan's runs if any exist; if none exist the plan
  // change itself is the diagnosis.)
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:CO", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::co_ms));
    Result<CoResult> co = RunCorrelatedOperators(ctx_, config_);
    if (co.ok()) {
      report.co = std::move(*co);
    } else if (!report.pd.plans_differ) {
      return co.status();
    }
  }

  // Operators -> Components.
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:DA", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::da_ms));
    Result<DaResult> da = RunDependencyAnalysis(ctx_, config_, report.co);
    if (da.ok()) report.da = std::move(*da);
  }

  // Operators -> record counts.
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:CR", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::cr_ms));
    Result<CrResult> cr = RunCorrelatedRecords(ctx_, config_, report.co);
    if (cr.ok()) report.cr = std::move(*cr);
  }

  // Symptoms -> causes.
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:SD", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::sd_ms));
    if (symptoms_db_ != nullptr) {
      Result<std::vector<RootCause>> causes =
          RunSymptomsDatabase(ctx_, config_, report.pd, report.co, report.da,
                              report.cr, *symptoms_db_);
      DIADS_RETURN_IF_ERROR(causes.status());
      report.causes = std::move(*causes);
    } else {
      report.causes =
          FallbackCauses(ctx_, config_, report.co, report.da, report.cr);
    }
  }

  // Impact roll-up.
  {
    obs::SpanHandle span = ctx_.trace.StartSpan("module:IA", "workflow");
    ModuleTimer timer(Slot(timings, &ModuleTimings::ia_ms));
    DIADS_RETURN_IF_ERROR(RunImpactAnalysis(
        ctx_, config_, report.co, report.cr, &report.causes, impact_method));
  }
  report.summary = SummarizeReport(ctx_, report);
  return report;
}

CollectionOutcome Workflow::Collect(
    const monitor::MetricGatherer& gatherer) const {
  CollectionOutcome out;
  obs::SpanHandle span = ctx_.trace.StartSpan("gather", "collect");
  const std::vector<monitor::SeriesKey> keys =
      SymptomIndex::CollectMetricKeys(ctx_);
  const std::vector<monitor::FetchRequest> plan =
      monitor::CollectionPlanner::Plan(keys, ctx_.AnalysisWindow(),
                                       ctx_.store);
  out.planned_components = plan.size();
  out.planned_series = monitor::CollectionPlanner::SeriesCount(plan);
  out.gather = gatherer.Gather(plan, ctx_.trace.Under(span));
  if (span.active()) {
    span.Note("components", static_cast<uint64_t>(out.planned_components));
    span.Note("series", static_cast<uint64_t>(out.planned_series));
    span.Note("samples", out.gather.counters.samples_collected);
    span.Note("stale", out.gather.counters.stale_components);
  }
  return out;
}

Result<DiagnosisReport> Workflow::DiagnoseOverCollection(
    const CollectionOutcome& outcome, ImpactMethod impact_method,
    ModuleTimings* timings) const {
  // Diagnose over the collected snapshot: every module reads the fetched
  // covering slices instead of round-tripping to the store per series.
  // The model cache keeps keying on the tenant's live store — the
  // snapshot's pointer is ephemeral, its data digest-identical.
  DiagnosisContext collected_ctx = ctx_;
  collected_ctx.model_authority = ctx_.Authority();
  collected_ctx.store = &outcome.gather.collected;
  Workflow collected_workflow(std::move(collected_ctx), config_,
                              symptoms_db_);
  return collected_workflow.Diagnose(impact_method, timings);
}

Result<DiagnosisReport> Workflow::DiagnoseWithCollection(
    const monitor::MetricGatherer& gatherer, ImpactMethod impact_method,
    ModuleTimings* timings, CollectionOutcome* outcome) const {
  CollectionOutcome local_outcome;
  CollectionOutcome& out = outcome != nullptr ? *outcome : local_outcome;
  out = Collect(gatherer);
  return DiagnoseOverCollection(out, impact_method, timings);
}

std::vector<RootCause> FallbackCauses(const DiagnosisContext& ctx,
                                      const WorkflowConfig& config,
                                      const CoResult& co, const DaResult& da,
                                      const CrResult& cr) {
  std::vector<RootCause> causes;
  const ComponentRegistry& registry = ctx.topology->registry();
  for (ComponentId component : da.correlated_component_set) {
    if (!registry.Contains(component) ||
        registry.KindOf(component) != ComponentKind::kVolume) {
      continue;
    }
    RootCause cause;
    cause.type = RootCauseType::kExternalWorkloadContention;
    cause.subject = component;
    // Without a symptoms database the semantics stay tentative: confidence
    // scales with the strongest metric anomaly, capped below high.
    cause.confidence =
        std::min(config.high_confidence - 1.0,
                 da.MaxAnomalyFor(component) * 100.0 * 0.75);
    cause.band = cause.confidence >= config.medium_confidence
                     ? ConfidenceBand::kMedium
                     : ConfidenceBand::kLow;
    cause.explanation = StrFormat(
        "no symptoms database: volume '%s' has metrics correlated with the "
        "slowdown",
        registry.NameOf(component).c_str());
    causes.push_back(std::move(cause));
  }
  if (cr.data_properties_changed) {
    RootCause cause;
    cause.type = RootCauseType::kDataPropertyChange;
    cause.subject = ctx.database;
    cause.confidence = config.high_confidence - 1.0;
    cause.band = ConfidenceBand::kMedium;
    cause.explanation =
        "no symptoms database: correlated record-count changes detected";
    causes.push_back(std::move(cause));
  }
  std::sort(causes.begin(), causes.end(),
            [](const RootCause& a, const RootCause& b) {
              return a.confidence > b.confidence;
            });
  return causes;
}

std::string SummarizeReport(const DiagnosisContext& ctx,
                            const DiagnosisReport& report) {
  const ComponentRegistry& registry = ctx.topology->registry();
  std::string out;
  if (report.pd.plans_differ) {
    out += "The plan used for unsatisfactory runs differs from the "
           "satisfactory-era plan. ";
    for (const PlanChangeCandidate& c : report.pd.candidates) {
      if (c.could_explain.value_or(false)) {
        out += StrFormat("The change is explained by: %s (%s). ",
                         EventTypeName(c.event.type),
                         c.event.description.c_str());
      }
    }
  }
  out += StrFormat(
      "%zu operators are correlated with the slowdown; %zu components "
      "passed dependency pruning; data properties %s. ",
      report.co.correlated_operator_set.size(),
      report.da.correlated_component_set.size(),
      report.cr.data_properties_changed ? "changed" : "did not change");
  const RootCause* top = report.TopCause();
  if (top != nullptr) {
    out += StrFormat(
        "Top root cause: %s%s%s (confidence %.0f%%, %s%s).",
        RootCauseTypeName(top->type),
        registry.Contains(top->subject) ? " on " : "",
        registry.Contains(top->subject)
            ? registry.NameOf(top->subject).c_str()
            : "",
        top->confidence, ConfidenceBandName(top->band),
        top->impact_pct.has_value()
            ? StrFormat(", impact %.1f%%", *top->impact_pct).c_str()
            : "");
  } else {
    out += "No root cause reached the reporting floor.";
  }
  return out;
}

// --- InteractiveSession -----------------------------------------------------

InteractiveSession::InteractiveSession(DiagnosisContext ctx,
                                       WorkflowConfig config,
                                       const SymptomsDb* symptoms_db)
    : ctx_(std::move(ctx)), config_(config), symptoms_db_(symptoms_db) {}

const char* InteractiveSession::ModuleName(Module module) {
  switch (module) {
    case Module::kPd:
      return "PD (plan diffing)";
    case Module::kCo:
      return "CO (correlated operators)";
    case Module::kDa:
      return "DA (dependency analysis)";
    case Module::kCr:
      return "CR (correlated record-counts)";
    case Module::kSd:
      return "SD (symptoms database)";
    case Module::kIa:
      return "IA (impact analysis)";
  }
  return "?";
}

bool InteractiveSession::CanRun(Module module) const {
  switch (module) {
    case Module::kPd:
      return true;
    case Module::kCo:
      return ran_pd_;
    case Module::kDa:
    case Module::kCr:
      return ran_co_;
    case Module::kSd:
      return ran_da_ && ran_cr_;
    case Module::kIa:
      return ran_sd_;
  }
  return false;
}

std::optional<InteractiveSession::Module> InteractiveSession::NextModule()
    const {
  if (!ran_pd_) return Module::kPd;
  if (!ran_co_) return Module::kCo;
  if (!ran_da_) return Module::kDa;
  if (!ran_cr_) return Module::kCr;
  if (!ran_sd_) return Module::kSd;
  if (!ran_ia_) return Module::kIa;
  return std::nullopt;
}

Result<std::string> InteractiveSession::Run(Module module) {
  if (!CanRun(module)) {
    return Status::FailedPrecondition(StrFormat(
        "module %s cannot run yet: execute the earlier modules first",
        ModuleName(module)));
  }
  switch (module) {
    case Module::kPd: {
      Result<PdResult> pd = RunPlanDiff(ctx_);
      DIADS_RETURN_IF_ERROR(pd.status());
      report_.pd = std::move(*pd);
      ran_pd_ = true;
      return RenderPdResult(ctx_, report_.pd);
    }
    case Module::kCo: {
      Result<CoResult> co = RunCorrelatedOperators(ctx_, config_);
      DIADS_RETURN_IF_ERROR(co.status());
      report_.co = std::move(*co);
      ran_co_ = true;
      return RenderCoResult(ctx_, report_.co);
    }
    case Module::kDa: {
      Result<DaResult> da = RunDependencyAnalysis(ctx_, config_, report_.co);
      DIADS_RETURN_IF_ERROR(da.status());
      report_.da = std::move(*da);
      ran_da_ = true;
      return RenderDaResult(ctx_, report_.da);
    }
    case Module::kCr: {
      Result<CrResult> cr = RunCorrelatedRecords(ctx_, config_, report_.co);
      DIADS_RETURN_IF_ERROR(cr.status());
      report_.cr = std::move(*cr);
      ran_cr_ = true;
      return RenderCrResult(ctx_, report_.cr);
    }
    case Module::kSd: {
      if (symptoms_db_ != nullptr) {
        Result<std::vector<RootCause>> causes =
            RunSymptomsDatabase(ctx_, config_, report_.pd, report_.co,
                                report_.da, report_.cr, *symptoms_db_);
        DIADS_RETURN_IF_ERROR(causes.status());
        report_.causes = std::move(*causes);
      } else {
        report_.causes =
            FallbackCauses(ctx_, config_, report_.co, report_.da, report_.cr);
      }
      ran_sd_ = true;
      return RenderSdResult(ctx_, report_.causes);
    }
    case Module::kIa: {
      DIADS_RETURN_IF_ERROR(RunImpactAnalysis(
          ctx_, config_, report_.co, report_.cr, &report_.causes));
      ran_ia_ = true;
      report_.summary = SummarizeReport(ctx_, report_);
      return RenderIaResult(ctx_, report_.causes) + "\n" + report_.summary +
             "\n";
    }
  }
  return Status::Internal("unknown module");
}

Status InteractiveSession::RemoveFromCos(int op_number) {
  if (!ran_co_) {
    return Status::FailedPrecondition("Module CO has not run yet");
  }
  Result<int> op_index = ctx_.apg->plan().IndexOfOpNumber(op_number);
  DIADS_RETURN_IF_ERROR(op_index.status());
  auto& cos = report_.co.correlated_operator_set;
  auto it = std::find(cos.begin(), cos.end(), *op_index);
  if (it == cos.end()) {
    return Status::NotFound(StrFormat("O%d is not in the COS", op_number));
  }
  cos.erase(it);
  return Status::Ok();
}

Status InteractiveSession::AddToCos(int op_number) {
  if (!ran_co_) {
    return Status::FailedPrecondition("Module CO has not run yet");
  }
  Result<int> op_index = ctx_.apg->plan().IndexOfOpNumber(op_number);
  DIADS_RETURN_IF_ERROR(op_index.status());
  auto& cos = report_.co.correlated_operator_set;
  if (std::find(cos.begin(), cos.end(), *op_index) == cos.end()) {
    cos.push_back(*op_index);
  }
  return Status::Ok();
}

}  // namespace diads::diag
