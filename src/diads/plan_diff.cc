#include "diads/plan_diff.h"

#include <algorithm>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"

namespace diads::diag {

Result<PdResult> RunPlanDiff(const DiagnosisContext& ctx) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.empty() || bad.empty()) {
    return Status::FailedPrecondition(
        "Module PD needs labelled runs on both sides");
  }

  PdResult out;
  std::set<uint64_t> good_fps;
  std::set<uint64_t> bad_fps;
  for (const db::QueryRunRecord* run : good) {
    good_fps.insert(run->plan_fingerprint);
  }
  for (const db::QueryRunRecord* run : bad) {
    bad_fps.insert(run->plan_fingerprint);
  }
  out.satisfactory_fingerprints.assign(good_fps.begin(), good_fps.end());
  out.unsatisfactory_fingerprints.assign(bad_fps.begin(), bad_fps.end());

  // Plans differ when some unsatisfactory run used a plan never seen in a
  // satisfactory run.
  out.plans_differ = false;
  for (uint64_t fp : bad_fps) {
    if (!good_fps.count(fp)) out.plans_differ = true;
  }
  if (!out.plans_differ) return out;

  // Plan-change analysis: scan schema/configuration events in the
  // transition window and what-if probe each.
  const TimeInterval window = ctx.TransitionWindow();
  const uint64_t good_fp = *good_fps.rbegin();
  for (const SystemEvent& event : ctx.events->EventsIn(window)) {
    if (!IsPlanAffectingEvent(event.type)) continue;
    PlanChangeCandidate candidate;
    candidate.event = event;
    if (ctx.plan_whatif_probe) {
      Result<uint64_t> reverted_fp = ctx.plan_whatif_probe(event);
      if (reverted_fp.ok()) {
        candidate.could_explain = (*reverted_fp == good_fp);
        candidate.reasoning = *candidate.could_explain
                                  ? "reverting this event reproduces the "
                                    "satisfactory-era plan"
                                  : "reverting this event does not restore "
                                    "the satisfactory-era plan";
      } else {
        candidate.reasoning =
            "what-if probe failed: " + reverted_fp.status().ToString();
      }
    } else {
      candidate.reasoning = "no what-if probe available; candidate unverified";
    }
    out.candidates.push_back(std::move(candidate));
  }
  return out;
}

std::string RenderPdResult(const DiagnosisContext& ctx, const PdResult& pd) {
  std::string out = StrFormat(
      "=== Module PD: plan diffing ===\nplans differ: %s\n",
      pd.plans_differ ? "YES" : "no (same plan in good and bad runs)");
  for (uint64_t fp : pd.satisfactory_fingerprints) {
    out += StrFormat("  satisfactory plan:   P%016llx\n",
                     static_cast<unsigned long long>(fp));
  }
  for (uint64_t fp : pd.unsatisfactory_fingerprints) {
    out += StrFormat("  unsatisfactory plan: P%016llx\n",
                     static_cast<unsigned long long>(fp));
  }
  if (pd.plans_differ) {
    TablePrinter table({"Event", "Time", "Could explain", "Reasoning"});
    for (const PlanChangeCandidate& c : pd.candidates) {
      table.AddRow({EventTypeName(c.event.type),
                    FormatSimTime(c.event.time),
                    c.could_explain.has_value()
                        ? (*c.could_explain ? "YES" : "no")
                        : "unverified",
                    c.reasoning});
    }
    out += table.Render();
  }
  return out;
}

}  // namespace diads::diag
