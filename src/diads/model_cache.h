// Sharded cache of extracted baselines and their fitted models, shared
// across diagnoses.
//
// Every Workflow::Diagnose re-derives, per scored series, (a) the baseline
// sample vector (Module DA: one TimeSeriesStore::MeanIn per satisfactory
// run; Modules CO/CR: per-run operator stats) and (b) a KDE fitted to it
// (sort + bandwidth selection). At fleet scale the same tenant is
// diagnosed over and over — dashboard refreshes, new incidents over
// overlapping windows, retries — and each diagnosis repeats both steps
// for baselines that have not changed. This cache memoizes the pair
// across diagnoses.
//
// Keying and invalidation. An entry is identified by
//   (source identity, series id, diagnosis window, anomaly-config
//    fingerprint, provenance fingerprint)
// and validated against the source's append generation:
//
//   * source identity is the tenant's authoritative store (Module DA) or
//     run catalog (CO/CR) — a pointer used purely as identity, so
//     diagnoses over per-request collected snapshots still share models;
//   * the provenance fingerprint hashes the labelled-run set the baseline
//     was extracted over (run ids + intervals), so relabelling or
//     re-filtering runs can never reuse a stale baseline;
//   * the generation check (TimeSeriesStore::Generation per series, the
//     run-catalog size for CO/CR) drops the entry as soon as new samples
//     are appended — Append-driven invalidation.
//
// Correctness (the ReportDigest contract): extraction and
// SortedKde::Fit are deterministic functions of the source data pinned by
// (identity, generation) and of the run set pinned by the provenance
// fingerprint, so a hit returns byte-for-byte the values and model a
// recompute would produce. Golden tests assert digest equality with the
// cache on vs off, including across Append-driven invalidation.
//
// Thread-safety: sharded like the engine's ResultCache — each shard owns
// a mutex, an LRU list, and an index. Cached values and models are
// immutable once published and safe to read concurrently.
#ifndef DIADS_DIADS_MODEL_CACHE_H_
#define DIADS_DIADS_MODEL_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/run_record.h"
#include "monitor/metrics.h"
#include "obs/cost_profile.h"
#include "stats/anomaly.h"
#include "stats/sorted_kde.h"

namespace diads::diag {

/// One mixing step of the 64-bit fingerprint hash (splitmix-style).
uint64_t MixBits64(uint64_t h, uint64_t v);

/// Order-sensitive 64-bit fingerprint of a double vector's bit patterns.
uint64_t HashDoubles(const std::vector<double>& xs);

/// Fingerprint of a labelled-run set: run ids and intervals, in order.
/// The provenance half of a baseline's identity (the other half is the
/// source's generation).
uint64_t RunSetFingerprint(const std::vector<const db::QueryRunRecord*>& runs);

/// Fingerprint of every field of an AnomalyConfig (bandwidth rule,
/// aggregation, threshold). Part of the model key: different thresholds
/// do not change the fitted model, but keeping the whole config in the
/// key keeps the invariant trivial ("one config, one entry").
uint64_t AnomalyConfigFingerprint(const stats::AnomalyConfig& config);

/// Identity of one cached baseline.
struct BaselineModelKey {
  /// The owning data source (a TimeSeriesStore or RunCatalog). Never
  /// dereferenced — pure identity. Lifetime requirement: a source must
  /// outlive every cache it is keyed into (or the cache must be
  /// Clear()ed when a source is torn down) — if a destroyed store's
  /// address were reused by a new tenant whose generations and run ids
  /// happened to coincide, its stale entries could match. The engine
  /// satisfies this the same way its result cache does: tenant state
  /// (FleetWorkload, scenario testbeds) outlives the engine run.
  const void* source = nullptr;
  /// Packed series identity: Module DA packs (component, metric); Modules
  /// CO/CR pack (kind, plan fingerprint, operator index).
  uint64_t series = 0;
  /// The diagnosis window the baseline was extracted over.
  SimTimeMs window_begin = 0;
  SimTimeMs window_end = 0;
  uint64_t config_fingerprint = 0;
  /// RunSetFingerprint of the runs the baseline was extracted over.
  uint64_t provenance_fingerprint = 0;

  friend bool operator==(const BaselineModelKey& a,
                         const BaselineModelKey& b) {
    return a.source == b.source && a.series == b.series &&
           a.window_begin == b.window_begin && a.window_end == b.window_end &&
           a.config_fingerprint == b.config_fingerprint &&
           a.provenance_fingerprint == b.provenance_fingerprint;
  }
};

struct BaselineModelKeyHash {
  size_t operator()(const BaselineModelKey& key) const noexcept;
};

/// Packs Module DA's (component, metric) series identity.
uint64_t SeriesIdOfMetric(ComponentId component, monitor::MetricId metric);
/// Packs Module CO/CR's per-run operator series identity. `kind`
/// distinguishes operator-span baselines from record-count baselines.
uint64_t SeriesIdOfOperator(uint64_t kind, uint64_t plan_fingerprint,
                            int op_index);

/// What the modules extract per series on a miss (and get back on a hit).
struct ExtractedBaseline {
  std::vector<double> values;  ///< Per-run baseline, extraction order.
  int missing = 0;             ///< Runs that contributed no sample.
};

/// A cached (or freshly computed) baseline with its fitted model.
struct CachedBaseline {
  std::shared_ptr<const std::vector<double>> values;  ///< Extraction order.
  /// Null iff values.size() < 2 (too small to fit — the modules' skip
  /// threshold; such baselines are recomputed per diagnosis, not cached).
  std::shared_ptr<const stats::SortedKde> model;
  int missing = 0;
};

class BaselineModelCache {
 public:
  struct Options {
    size_t capacity = 4096;  ///< Total entries across shards.
    int shards = 16;
  };

  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Entries dropped because the source's generation advanced (a strict
    /// subset of misses).
    uint64_t invalidations = 0;
    size_t entries = 0;
  };

  BaselineModelCache();  ///< Default Options.
  explicit BaselineModelCache(Options options);

  /// Returns the cached baseline when the key matches and its fit-time
  /// generation equals `generation`; nullopt otherwise. A generation
  /// mismatch erases the stale entry (Append-driven invalidation).
  std::optional<CachedBaseline> Get(const BaselineModelKey& key,
                                    uint64_t generation);

  /// Inserts or replaces; evicts the shard's LRU entry at capacity.
  void Put(const BaselineModelKey& key, uint64_t generation,
           CachedBaseline baseline);

  Counters TotalCounters() const;

  void Clear();

  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    BaselineModelKey key;
    uint64_t generation = 0;
    CachedBaseline baseline;
  };
  struct Shard {
    std::mutex mu;
    std::list<Entry> lru;  ///< Front = most recently used.
    std::unordered_map<BaselineModelKey, std::list<Entry>::iterator,
                       BaselineModelKeyHash>
        index;
    uint64_t hits = 0, misses = 0, evictions = 0, invalidations = 0;
  };

  Shard& ShardFor(const BaselineModelKey& key);

  size_t shard_capacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

/// The modules' one-stop entry point: returns the cached baseline for
/// `key` (validated against `generation`) or runs `extract`, fits, caches
/// (when >= 2 samples), and returns the fresh result. `cache` may be null
/// — then this is exactly extract + SortedKde::Fit. The result is
/// byte-identical either way.
///
/// When `lookups` is non-null the hit/miss outcome is also attributed
/// there (per-diagnosis accounting for the cost profile; the cache's own
/// global stats are updated regardless). A null-cache call counts as a
/// miss: the caller paid for a fit.
Result<CachedBaseline> GetOrFitBaseline(
    BaselineModelCache* cache, const BaselineModelKey& key,
    uint64_t generation, stats::BandwidthRule rule,
    const std::function<ExtractedBaseline()>& extract,
    obs::ModelLookupCounters* lookups = nullptr);

}  // namespace diads::diag

#endif  // DIADS_DIADS_MODEL_CACHE_H_
