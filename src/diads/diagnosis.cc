#include "diads/diagnosis.h"

#include <algorithm>

namespace diads::diag {

TimeInterval DiagnosisContext::AnalysisWindow() const {
  TimeInterval out{0, 0};
  bool first = true;
  for (const db::QueryRunRecord& run : runs->runs()) {
    if (run.query_name != query) continue;
    if (runs->LabelOf(run.run_id) == db::RunLabel::kUnlabeled) continue;
    if (first) {
      out = run.interval;
      first = false;
    } else {
      out.begin = std::min(out.begin, run.interval.begin);
      out.end = std::max(out.end, run.interval.end);
    }
  }
  return out;
}

TimeInterval DiagnosisContext::TransitionWindow() const {
  SimTimeMs last_good = 0;
  SimTimeMs first_bad = 0;
  bool has_good = false;
  bool has_bad = false;
  for (const db::QueryRunRecord& run : runs->runs()) {
    if (run.query_name != query) continue;
    const db::RunLabel label = runs->LabelOf(run.run_id);
    if (label == db::RunLabel::kSatisfactory) {
      last_good = std::max(last_good, run.interval.end);
      has_good = true;
    } else if (label == db::RunLabel::kUnsatisfactory) {
      first_bad = has_bad ? std::min(first_bad, run.interval.begin)
                          : run.interval.begin;
      has_bad = true;
    }
  }
  if (!has_good || !has_bad || first_bad <= last_good) {
    // Interleaved or missing labels: fall back to the whole window.
    return AnalysisWindow();
  }
  return TimeInterval{last_good, first_bad};
}

std::vector<const db::QueryRunRecord*> DiagnosisContext::SatisfactoryRuns()
    const {
  return runs->RunsWithLabel(query, db::RunLabel::kSatisfactory);
}

std::vector<const db::QueryRunRecord*> DiagnosisContext::UnsatisfactoryRuns()
    const {
  return runs->RunsWithLabel(query, db::RunLabel::kUnsatisfactory);
}

const OperatorAnomaly* CoResult::FindOp(int op_index) const {
  for (const OperatorAnomaly& a : scores) {
    if (a.op_index == op_index) return &a;
  }
  return nullptr;
}

bool CoResult::InCos(int op_index) const {
  return std::find(correlated_operator_set.begin(),
                   correlated_operator_set.end(),
                   op_index) != correlated_operator_set.end();
}

bool DaResult::InCcs(ComponentId component) const {
  return std::find(correlated_component_set.begin(),
                   correlated_component_set.end(),
                   component) != correlated_component_set.end();
}

const MetricAnomaly* DaResult::Find(ComponentId component,
                                    monitor::MetricId metric) const {
  for (const MetricAnomaly& m : metrics) {
    if (m.component == component && m.metric == metric) return &m;
  }
  return nullptr;
}

double DaResult::MaxAnomalyFor(ComponentId component) const {
  double best = 0;
  for (const MetricAnomaly& m : metrics) {
    if (m.component == component) best = std::max(best, m.anomaly_score);
  }
  return best;
}

bool CrResult::InCrs(int op_index) const {
  return std::find(correlated_record_set.begin(), correlated_record_set.end(),
                   op_index) != correlated_record_set.end();
}

const char* RootCauseTypeName(RootCauseType type) {
  switch (type) {
    case RootCauseType::kSanMisconfigurationContention:
      return "SAN misconfiguration causing volume contention";
    case RootCauseType::kExternalWorkloadContention:
      return "External workload causing volume contention";
    case RootCauseType::kDataPropertyChange:
      return "Change in data properties";
    case RootCauseType::kLockContention:
      return "Table lock contention";
    case RootCauseType::kPlanChange:
      return "Query plan change";
    case RootCauseType::kRaidRebuild:
      return "RAID rebuild interference";
    case RootCauseType::kDiskFailure:
      return "Disk failure degradation";
    case RootCauseType::kBufferPoolPressure:
      return "Buffer pool pressure";
    case RootCauseType::kCpuSaturation:
      return "Database server CPU saturation";
    case RootCauseType::kHbaFailure:
      return "HBA failure masked by path failover";
    case RootCauseType::kMultipathImbalance:
      return "Asymmetric multipath load imbalance";
    case RootCauseType::kRetryStorm:
      return "I/O retry storm cascade";
    case RootCauseType::kCompressionRatioDrift:
      return "Compression ratio drift inflating scan I/O";
    case RootCauseType::kZoneMapStaleness:
      return "Stale zone maps defeating segment pruning";
  }
  return "?";
}

const char* ConfidenceBandName(ConfidenceBand band) {
  switch (band) {
    case ConfidenceBand::kHigh:
      return "high";
    case ConfidenceBand::kMedium:
      return "medium";
    case ConfidenceBand::kLow:
      return "low";
  }
  return "?";
}

std::vector<double> OperatorSpans(
    const std::vector<const db::QueryRunRecord*>& runs, int op_index) {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const db::QueryRunRecord* run : runs) {
    const db::OperatorRunStats* stats = run->FindOp(op_index);
    if (stats != nullptr) {
      out.push_back(static_cast<double>(stats->span_ms()));
    }
  }
  return out;
}

std::vector<double> OperatorRecordCounts(
    const std::vector<const db::QueryRunRecord*>& runs, int op_index) {
  std::vector<double> out;
  out.reserve(runs.size());
  for (const db::QueryRunRecord* run : runs) {
    const db::OperatorRunStats* stats = run->FindOp(op_index);
    if (stats != nullptr) out.push_back(stats->actual_rows);
  }
  return out;
}

std::vector<double> MetricPerRun(
    const monitor::TimeSeriesStore& store, ComponentId component,
    monitor::MetricId metric,
    const std::vector<const db::QueryRunRecord*>& runs, int* missing) {
  std::vector<double> out;
  int missed = 0;
  for (const db::QueryRunRecord* run : runs) {
    Result<double> mean = store.MeanIn(component, metric, run->interval);
    if (mean.ok()) {
      out.push_back(*mean);
    } else {
      ++missed;
    }
  }
  if (missing != nullptr) *missing = missed;
  return out;
}

}  // namespace diads::diag
