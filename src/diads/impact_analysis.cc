#include "diads/impact_analysis.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/strings.h"
#include "common/table_printer.h"
#include "stats/descriptive.h"

namespace diads::diag {
namespace {

/// Mean self-time of one operator over a run set.
double MeanSelfMs(const std::vector<const db::QueryRunRecord*>& runs,
                  int op_index) {
  std::vector<double> values;
  for (const db::QueryRunRecord* run : runs) {
    const db::OperatorRunStats* stats = run->FindOp(op_index);
    if (stats != nullptr) values.push_back(stats->self_ms());
  }
  return stats::Mean(values);
}

double MeanDurationMs(const std::vector<const db::QueryRunRecord*>& runs) {
  std::vector<double> values;
  for (const db::QueryRunRecord* run : runs) {
    values.push_back(static_cast<double>(run->duration_ms()));
  }
  return stats::Mean(values);
}

}  // namespace

std::vector<int> OperatorsAffectedBy(const DiagnosisContext& ctx,
                                     const RootCause& cause,
                                     const CoResult& co, const CrResult& cr) {
  const ComponentRegistry& registry = ctx.topology->registry();
  std::set<int> ops;
  switch (cause.type) {
    case RootCauseType::kSanMisconfigurationContention:
    case RootCauseType::kExternalWorkloadContention:
    case RootCauseType::kRaidRebuild:
    case RootCauseType::kDiskFailure: {
      // comp(R) = the subject volume and its disks; op(R) = leaves reading it.
      if (registry.Contains(cause.subject)) {
        for (int leaf : ctx.apg->LeafOpsOnComponent(cause.subject)) {
          ops.insert(leaf);
        }
      }
      break;
    }
    case RootCauseType::kDataPropertyChange: {
      // op(R) = the CRS leaves (operators whose record counts moved).
      for (int op_index : cr.correlated_record_set) {
        if (ctx.apg->plan().op(op_index).is_scan()) ops.insert(op_index);
      }
      break;
    }
    case RootCauseType::kLockContention:
    // Storage-layout degradation is table-scoped exactly like lock
    // contention: the drifted/stale table's leaves pay the extra reads.
    case RootCauseType::kCompressionRatioDrift:
    case RootCauseType::kZoneMapStaleness: {
      // op(R) = leaves scanning the affected table (subject), falling back
      // to all COS leaves when the table is unknown.
      bool found = false;
      if (registry.Contains(cause.subject) &&
          registry.KindOf(cause.subject) == ComponentKind::kTable) {
        for (int leaf : ctx.apg->plan().LeafIndexes()) {
          Result<const db::TableDef*> table =
              ctx.catalog->FindTable(ctx.apg->plan().op(leaf).table);
          if (table.ok() && (*table)->id == cause.subject) {
            ops.insert(leaf);
            found = true;
          }
        }
      }
      if (!found) {
        for (int op_index : co.correlated_operator_set) {
          if (ctx.apg->plan().op(op_index).is_scan()) ops.insert(op_index);
        }
      }
      break;
    }
    case RootCauseType::kRetryStorm: {
      // op(R) = leaves reading the retrying volume.
      if (registry.Contains(cause.subject)) {
        for (int leaf : ctx.apg->LeafOpsOnComponent(cause.subject)) {
          ops.insert(leaf);
        }
      }
      break;
    }
    case RootCauseType::kBufferPoolPressure:
    case RootCauseType::kCpuSaturation:
    case RootCauseType::kPlanChange:
    // Fabric faults: the failed HBA / degraded port may be gone from the
    // post-fault APG (I/O rerouted around it), so LeafOpsOnComponent would
    // attribute zero impact; fall back to the COS like CPU saturation.
    case RootCauseType::kHbaFailure:
    case RootCauseType::kMultipathImbalance: {
      for (int op_index : co.correlated_operator_set) ops.insert(op_index);
      break;
    }
  }
  return std::vector<int>(ops.begin(), ops.end());
}

Status RunImpactAnalysis(const DiagnosisContext& ctx,
                         const WorkflowConfig& config, const CoResult& co,
                         const CrResult& cr, std::vector<RootCause>* causes,
                         ImpactMethod method) {
  const std::vector<const db::QueryRunRecord*> good = ctx.SatisfactoryRuns();
  const std::vector<const db::QueryRunRecord*> bad = ctx.UnsatisfactoryRuns();
  if (good.empty() || bad.empty()) {
    return Status::FailedPrecondition(
        "Module IA needs labelled runs on both sides");
  }
  const double extra_plan_ms =
      std::max(1.0, MeanDurationMs(bad) - MeanDurationMs(good));

  for (RootCause& cause : *causes) {
    if (cause.band == ConfidenceBand::kLow) continue;
    if (cause.type == RootCauseType::kPlanChange) {
      // A plan change explains the whole slowdown by construction (the
      // whole plan is different); IA's per-operator attribution does not
      // apply.
      cause.impact_pct = 100.0;
      continue;
    }
    const std::vector<int> ops = OperatorsAffectedBy(ctx, cause, co, cr);
    double impact = 0;
    switch (method) {
      case ImpactMethod::kInverseDependency: {
        double extra_self = 0;
        for (int op_index : ops) {
          extra_self +=
              std::max(0.0, MeanSelfMs(bad, op_index) -
                                MeanSelfMs(good, op_index));
        }
        impact = extra_self / extra_plan_ms * 100.0;
        break;
      }
      case ImpactMethod::kCostModel: {
        // Static apportioning: the share of total estimated cost carried by
        // op(R)'s self cost (cumulative minus children), scaled to 100%.
        const db::Plan& plan = ctx.apg->plan();
        double total_self_cost = 0;
        auto self_cost = [&plan](int op_index) {
          double cost = plan.op(op_index).est_cost;
          for (int child : plan.op(op_index).children) {
            cost -= plan.op(child).est_cost;
          }
          return std::max(0.0, cost);
        };
        for (const db::PlanOp& op : plan.ops()) {
          total_self_cost += self_cost(op.index);
        }
        double ops_cost = 0;
        for (int op_index : ops) ops_cost += self_cost(op_index);
        impact = total_self_cost > 0 ? ops_cost / total_self_cost * 100.0 : 0;
        break;
      }
    }
    cause.impact_pct = std::clamp(impact, 0.0, 100.0);
  }

  // Final ranking: confidence band first, then impact, then confidence.
  std::sort(causes->begin(), causes->end(),
            [](const RootCause& a, const RootCause& b) {
              if (a.band != b.band) {
                return static_cast<int>(a.band) < static_cast<int>(b.band);
              }
              const double ia = a.impact_pct.value_or(-1);
              const double ib = b.impact_pct.value_or(-1);
              if (ia != ib) return ia > ib;
              return a.confidence > b.confidence;
            });
  return Status::Ok();
}

std::string RenderIaResult(const DiagnosisContext& ctx,
                           const std::vector<RootCause>& causes) {
  const ComponentRegistry& registry = ctx.topology->registry();
  TablePrinter table(
      {"Root cause", "Subject", "Confidence", "Band", "Impact"});
  for (const RootCause& cause : causes) {
    table.AddRow({RootCauseTypeName(cause.type),
                  registry.Contains(cause.subject)
                      ? registry.NameOf(cause.subject)
                      : "-",
                  FormatDouble(cause.confidence, 0) + "%",
                  ConfidenceBandName(cause.band),
                  cause.impact_pct.has_value()
                      ? FormatDouble(*cause.impact_pct, 1) + "%"
                      : "-"});
  }
  return "=== Module IA: impact analysis ===\n" + table.Render();
}

}  // namespace diads::diag
