// SAN monitoring collector.
//
// Samples the SAN performance model at the configured monitoring interval
// and appends per-component metrics (the storage/network/server columns of
// Figure 4) to the TimeSeriesStore, with measurement noise applied. Also
// evaluates user-defined performance triggers (Section 3, item vi): when a
// volume's read latency exceeds its trigger threshold, a
// kVolumePerfDegraded event is logged — the "degradation in volume
// performance" trigger the paper gives as an example.
#ifndef DIADS_MONITOR_SAN_COLLECTOR_H_
#define DIADS_MONITOR_SAN_COLLECTOR_H_

#include "common/event_log.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "monitor/noise.h"
#include "monitor/timeseries.h"
#include "san/perf_model.h"
#include "san/topology.h"

namespace diads::monitor {

/// Collector configuration.
struct SanCollectorConfig {
  /// Monitoring interval. Production default per Section 1.1.
  SimTimeMs sampling_interval = Minutes(5);
  /// Read-latency threshold (ms) for the volume-degradation trigger; <= 0
  /// disables the trigger.
  double volume_latency_trigger_ms = 25.0;
  /// Disk-utilisation threshold for the subsystem-high-load trigger.
  double subsystem_load_trigger = 0.85;
};

/// Pull-based collector over a SanPerfModel.
class SanCollector {
 public:
  /// All pointers must outlive the collector.
  SanCollector(const san::SanTopology* topology,
               const san::SanPerfModel* perf_model, TimeSeriesStore* store,
               NoiseModel* noise, EventLog* event_log,
               SanCollectorConfig config = {});

  /// Collects every interval [t, t+dt) with t in [from, to), appending one
  /// sample per component metric per interval. Idempotence is the caller's
  /// responsibility (collect each range once).
  Status CollectRange(SimTimeMs from, SimTimeMs to);

  SimTimeMs sampling_interval() const { return config_.sampling_interval; }

 private:
  Status CollectInterval(const TimeInterval& interval);
  Status EmitSample(ComponentId component, MetricId metric, SimTimeMs t,
                    double clean_value);

  const san::SanTopology* topology_;
  const san::SanPerfModel* perf_model_;
  TimeSeriesStore* store_;
  NoiseModel* noise_;
  EventLog* event_log_;
  SanCollectorConfig config_;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_SAN_COLLECTOR_H_
