// Per-diagnosis fetch planning.
//
// A diagnosis window names a set of (component, metric) series the
// workflow's modules will consult — several modules over the same few
// components (DA scores them, SD's predicates re-read them through the
// SymptomIndex). Collecting naively would fetch the union once per module
// per worker; the planner instead batches the deduplicated needs into one
// fetch plan with exactly one round-trip per component, which is what the
// gather layer overlaps.
//
// The planner is deliberately layer-agnostic: callers hand it the series
// keys (the diads layer extracts them from a DiagnosisContext via
// SymptomIndex::CollectMetricKeys) and it produces deterministic
// FetchRequests — components and metrics sorted, duplicates dropped.
#ifndef DIADS_MONITOR_COLLECTION_PLANNER_H_
#define DIADS_MONITOR_COLLECTION_PLANNER_H_

#include <vector>

#include "monitor/async_collector.h"
#include "monitor/timeseries.h"

namespace diads::monitor {

class CollectionPlanner {
 public:
  /// Batches `keys` into one FetchRequest per distinct component, covering
  /// `window`, served from `source`. Duplicate keys collapse; components
  /// and their metric lists come out sorted, so the plan (and therefore
  /// the collected store) is deterministic regardless of key order.
  static std::vector<FetchRequest> Plan(const std::vector<SeriesKey>& keys,
                                        const TimeInterval& window,
                                        const TimeSeriesStore* source);

  /// Total metrics across a plan's requests (after dedup).
  static size_t SeriesCount(const std::vector<FetchRequest>& plan);
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_COLLECTION_PLANNER_H_
