#include "monitor/collection_planner.h"

#include <algorithm>
#include <map>
#include <set>

namespace diads::monitor {

std::vector<FetchRequest> CollectionPlanner::Plan(
    const std::vector<SeriesKey>& keys, const TimeInterval& window,
    const TimeSeriesStore* source) {
  std::map<ComponentId, std::set<MetricId>> by_component;
  for (const SeriesKey& key : keys) {
    by_component[key.component].insert(key.metric);
  }
  std::vector<FetchRequest> plan;
  plan.reserve(by_component.size());
  for (const auto& [component, metrics] : by_component) {
    FetchRequest request;
    request.component = component;
    request.interval = window;
    request.metrics.assign(metrics.begin(), metrics.end());
    request.source = source;
    plan.push_back(std::move(request));
  }
  return plan;
}

size_t CollectionPlanner::SeriesCount(const std::vector<FetchRequest>& plan) {
  size_t count = 0;
  for (const FetchRequest& request : plan) count += request.metrics.size();
  return count;
}

}  // namespace diads::monitor
