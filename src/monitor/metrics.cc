#include "monitor/metrics.h"

#include <cassert>

namespace diads::monitor {
namespace {

using K = ComponentKind;
using L = MetricLayer;

const std::vector<MetricMeta>& Catalog() {
  static const std::vector<MetricMeta> kCatalog = {
      // Database layer.
      {MetricId::kDbLocksHeld, "Locks Held", "count", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbLockWaitMs, "Lock Wait Time", "ms", L::kDatabase,
       K::kDatabase, false},
      {MetricId::kDbSpaceUsageMb, "Space Usage", "MB", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbBlocksRead, "Blocks Read", "blocks/s", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbBufferHits, "Buffer Hits", "hits/s", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbIndexScans, "Index Scans", "scans/s", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbIndexReads, "Index Reads", "reads/s", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbIndexFetches, "Index Fetches", "fetches/s", L::kDatabase,
       K::kDatabase, true},
      {MetricId::kDbSequentialScans, "Sequential Scans", "scans/s",
       L::kDatabase, K::kDatabase, true},
      // Server layer.
      {MetricId::kServerCpuPct, "CPU Usage (%ge)", "%", L::kServer, K::kServer,
       true},
      {MetricId::kServerCpuMhz, "CPU Usage (Mhz)", "MHz", L::kServer,
       K::kServer, true},
      {MetricId::kServerHandles, "Handles", "count", L::kServer, K::kServer,
       true},
      {MetricId::kServerThreads, "Threads", "count", L::kServer, K::kServer,
       true},
      {MetricId::kServerProcesses, "Processes", "count", L::kServer,
       K::kServer, true},
      {MetricId::kServerHeapKb, "Heap Memory Usage(KB)", "KB", L::kServer,
       K::kServer, true},
      {MetricId::kServerPhysMemPct, "Physical Memory Usage (%)", "%",
       L::kServer, K::kServer, true},
      {MetricId::kServerKernelMemKb, "Kernel Memory(KB)", "KB", L::kServer,
       K::kServer, true},
      {MetricId::kServerSwapKb, "Memory Being Swapped(KB)", "KB", L::kServer,
       K::kServer, true},
      {MetricId::kServerReservedMemKb, "Reserved Memory Capacity(KB)", "KB",
       L::kServer, K::kServer, true},
      // Network layer.
      {MetricId::kPortBytesTx, "Bytes Transmitted", "MB/s", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortBytesRx, "Bytes Received", "MB/s", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortPacketsTx, "Packets Transmitted", "frames/s",
       L::kNetwork, K::kFcPort, true},
      {MetricId::kPortPacketsRx, "Packets Received", "frames/s", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortLipCount, "LIP Count", "count", L::kNetwork, K::kFcPort,
       true},
      {MetricId::kPortNosCount, "NOS Count", "count", L::kNetwork, K::kFcPort,
       true},
      {MetricId::kPortErrorFrames, "Error Frames", "frames", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortDumpedFrames, "Dumped Frames", "frames", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortLinkFailures, "Link Failures", "count", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortCrcErrors, "CRC Errors", "count", L::kNetwork,
       K::kFcPort, true},
      {MetricId::kPortAddressErrors, "Address Errors", "count", L::kNetwork,
       K::kFcPort, true},
      // Storage layer.
      {MetricId::kVolBytesRead, "Bytes Read", "B/s", L::kStorage, K::kVolume,
       true},
      {MetricId::kVolBytesWritten, "Bytes Written", "B/s", L::kStorage,
       K::kVolume, true},
      {MetricId::kVolContaminatingWrites, "Contaminating Writes", "ops/s",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolPhysReadOps, "PhysicalStorageRead Operations", "ops/s",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolPhysReadTimeMs, "Physical Storage Read Time", "ms",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolPhysWriteOps, "PhysicalStorageWriteOperations", "ops/s",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolPhysWriteTimeMs, "Physical Storage Write Time", "ms",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolSeqReadRequests, "Sequential Read Requests", "ops/s",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolSeqWriteRequests, "Sequential Write Requests", "ops/s",
       L::kStorage, K::kVolume, true},
      {MetricId::kVolTotalIos, "Total IOs", "ops/s", L::kStorage, K::kVolume,
       true},
      // Derived extras (not in Figure 4).
      {MetricId::kVolReadLatencyMs, "Volume Read Latency", "ms", L::kStorage,
       K::kVolume, false},
      {MetricId::kVolWriteLatencyMs, "Volume Write Latency", "ms", L::kStorage,
       K::kVolume, false},
      {MetricId::kDiskUtilization, "Disk Utilization", "fraction", L::kStorage,
       K::kDisk, false},
      {MetricId::kDiskIops, "Disk IOPS", "ops/s", L::kStorage, K::kDisk,
       false},
  };
  return kCatalog;
}

}  // namespace

const char* MetricLayerName(MetricLayer layer) {
  switch (layer) {
    case MetricLayer::kDatabase:
      return "Database";
    case MetricLayer::kServer:
      return "Server";
    case MetricLayer::kNetwork:
      return "Network";
    case MetricLayer::kStorage:
      return "Storage";
  }
  return "?";
}

const MetricMeta& GetMetricMeta(MetricId id) {
  for (const MetricMeta& m : Catalog()) {
    if (m.id == id) return m;
  }
  assert(false && "unknown metric id");
  return Catalog().front();
}

const std::vector<MetricMeta>& AllMetrics() { return Catalog(); }

std::vector<MetricId> MetricsForKind(ComponentKind kind) {
  std::vector<MetricId> out;
  for (const MetricMeta& m : Catalog()) {
    if (m.component_kind == kind) out.push_back(m.id);
  }
  return out;
}

const char* MetricShortName(MetricId id) {
  switch (id) {
    case MetricId::kVolPhysReadOps:
      return "readIO";
    case MetricId::kVolPhysWriteOps:
      return "writeIO";
    case MetricId::kVolPhysReadTimeMs:
      return "readTime";
    case MetricId::kVolPhysWriteTimeMs:
      return "writeTime";
    case MetricId::kVolReadLatencyMs:
      return "readLatency";
    case MetricId::kVolWriteLatencyMs:
      return "writeLatency";
    case MetricId::kVolTotalIos:
      return "totalIOs";
    case MetricId::kDiskUtilization:
      return "busy";
    case MetricId::kServerCpuPct:
      return "cpu";
    case MetricId::kDbLockWaitMs:
      return "lockWait";
    case MetricId::kDbLocksHeld:
      return "locksHeld";
    default:
      return GetMetricMeta(id).name;
  }
}

}  // namespace diads::monitor
