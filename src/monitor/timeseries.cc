#include "monitor/timeseries.h"

#include <algorithm>

namespace diads::monitor {
namespace {

const std::vector<Sample>& EmptySeries() {
  static const std::vector<Sample> kEmpty;
  return kEmpty;
}

std::vector<Sample>::const_iterator LowerBoundTime(
    const std::vector<Sample>& s, SimTimeMs t) {
  return std::lower_bound(
      s.begin(), s.end(), t,
      [](const Sample& a, SimTimeMs tt) { return a.time < tt; });
}

}  // namespace

Status TimeSeriesStore::Append(ComponentId component, MetricId metric,
                               SimTimeMs time, double value) {
  SeriesData& s = series_[SeriesKey{component, metric}];
  if (!s.samples.empty() && time < s.samples.back().time) {
    return Status::InvalidArgument(
        "samples must be appended in non-decreasing time order");
  }
  if (s.ordinal == kUnassignedOrdinal) s.ordinal = next_ordinal_++;
  s.samples.push_back(Sample{time, value});
  ++s.generation;
  ++component_generation_[component];
  ++store_generation_;
  ++total_samples_;
  if (listener_ != nullptr) {
    listener_->OnAppend(component, metric, s.samples.back(), s.generation,
                        s.ordinal);
  }
  return Status::Ok();
}

uint64_t TimeSeriesStore::ComponentGeneration(ComponentId component) const {
  auto it = component_generation_.find(component);
  return it == component_generation_.end() ? 0 : it->second;
}

SampleSpan TimeSeriesStore::SliceView(ComponentId component, MetricId metric,
                                      const TimeInterval& interval) const {
  const std::vector<Sample>& s = Series(component, metric);
  auto lo = LowerBoundTime(s, interval.begin);
  auto hi = std::lower_bound(
      lo, s.end(), interval.end,
      [](const Sample& a, SimTimeMs t) { return a.time < t; });
  if (lo == hi) return SampleSpan();
  return SampleSpan(&*lo, static_cast<size_t>(hi - lo));
}

std::vector<Sample> TimeSeriesStore::Slice(ComponentId component,
                                           MetricId metric,
                                           const TimeInterval& interval) const {
  const SampleSpan view = SliceView(component, metric, interval);
  return std::vector<Sample>(view.begin(), view.end());
}

std::vector<Sample> TimeSeriesStore::CoveringSlice(
    ComponentId component, MetricId metric,
    const TimeInterval& interval) const {
  const std::vector<Sample>& s = Series(component, metric);
  if (s.empty()) return {};
  // [lo, hi) is the in-window range; widen by one sample on each side when
  // one exists (the stale-fallback reading and the tail reading).
  auto lo = LowerBoundTime(s, interval.begin);
  auto hi = LowerBoundTime(s, interval.end);
  if (lo != s.begin()) --lo;
  if (hi != s.end()) ++hi;
  return std::vector<Sample>(lo, hi);
}

std::vector<double> TimeSeriesStore::ValuesIn(
    ComponentId component, MetricId metric,
    const TimeInterval& interval) const {
  const SampleSpan view = SliceView(component, metric, interval);
  std::vector<double> out;
  out.reserve(view.size());
  for (const Sample& s : view) out.push_back(s.value);
  return out;
}

Result<double> TimeSeriesStore::MeanIn(ComponentId component, MetricId metric,
                                       const TimeInterval& interval) const {
  const SampleSpan view = SliceView(component, metric, interval);
  // Samples are stamped at the *end* of the collection interval they
  // aggregate, so the sample covering this window's tail lands at the first
  // grid point at or after interval.end. Include it: for a run shorter than
  // the monitoring interval it is often the only reading that reflects the
  // run at all (Section 1.1's coarse-interval reality).
  const std::vector<Sample>& series = Series(component, metric);
  auto tail = LowerBoundTime(series, interval.end);
  size_t count = view.size();
  double sum = 0;
  for (const Sample& s : view) sum += s.value;
  if (tail != series.end()) {
    sum += tail->value;
    ++count;
  }
  if (count > 0) return sum / static_cast<double>(count);
  // No samples at all in or after the window: report the newest stale one.
  Result<Sample> latest = LatestAtOrBefore(component, metric, interval.begin);
  DIADS_RETURN_IF_ERROR(latest.status());
  return latest->value;
}

Result<Sample> TimeSeriesStore::LatestAtOrBefore(ComponentId component,
                                                 MetricId metric,
                                                 SimTimeMs t) const {
  const std::vector<Sample>& s = Series(component, metric);
  auto it = std::upper_bound(
      s.begin(), s.end(), t,
      [](SimTimeMs tt, const Sample& a) { return tt < a.time; });
  if (it == s.begin()) {
    return Status::NotFound("no sample at or before requested time");
  }
  return *(it - 1);
}

const std::vector<Sample>& TimeSeriesStore::Series(ComponentId component,
                                                   MetricId metric) const {
  auto it = series_.find(SeriesKey{component, metric});
  if (it == series_.end()) return EmptySeries();
  return it->second.samples;
}

uint64_t TimeSeriesStore::Generation(ComponentId component,
                                     MetricId metric) const {
  auto it = series_.find(SeriesKey{component, metric});
  if (it == series_.end()) return 0;
  return it->second.generation;
}

std::vector<MetricId> TimeSeriesStore::MetricsFor(ComponentId component) const {
  std::vector<MetricId> out;
  for (const auto& [key, series] : series_) {
    if (key.component == component && !series.samples.empty()) {
      out.push_back(key.metric);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void TimeSeriesStore::ForEachSeries(
    const std::function<void(ComponentId, MetricId,
                             const std::vector<Sample>&)>& fn) const {
  for (const auto& [key, series] : series_) {
    if (series.samples.empty()) continue;
    fn(key.component, key.metric, series.samples);
  }
}

}  // namespace diads::monitor
