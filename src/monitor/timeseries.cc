#include "monitor/timeseries.h"

#include <algorithm>

namespace diads::monitor {
namespace {

const std::vector<Sample>& EmptySeries() {
  static const std::vector<Sample> kEmpty;
  return kEmpty;
}

}  // namespace

Status TimeSeriesStore::Append(ComponentId component, MetricId metric,
                               SimTimeMs time, double value) {
  std::vector<Sample>& s = series_[SeriesKey{component, metric}];
  if (!s.empty() && time < s.back().time) {
    return Status::InvalidArgument(
        "samples must be appended in non-decreasing time order");
  }
  s.push_back(Sample{time, value});
  ++total_samples_;
  return Status::Ok();
}

std::vector<Sample> TimeSeriesStore::Slice(ComponentId component,
                                           MetricId metric,
                                           const TimeInterval& interval) const {
  std::vector<Sample> out;
  const std::vector<Sample>& s = Series(component, metric);
  auto lo = std::lower_bound(
      s.begin(), s.end(), interval.begin,
      [](const Sample& a, SimTimeMs t) { return a.time < t; });
  for (auto it = lo; it != s.end() && it->time < interval.end; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<Sample> TimeSeriesStore::CoveringSlice(
    ComponentId component, MetricId metric,
    const TimeInterval& interval) const {
  const std::vector<Sample>& s = Series(component, metric);
  if (s.empty()) return {};
  // [lo, hi) is the in-window range; widen by one sample on each side when
  // one exists (the stale-fallback reading and the tail reading).
  auto lo = std::lower_bound(
      s.begin(), s.end(), interval.begin,
      [](const Sample& a, SimTimeMs t) { return a.time < t; });
  auto hi = std::lower_bound(
      s.begin(), s.end(), interval.end,
      [](const Sample& a, SimTimeMs t) { return a.time < t; });
  if (lo != s.begin()) --lo;
  if (hi != s.end()) ++hi;
  return std::vector<Sample>(lo, hi);
}

std::vector<double> TimeSeriesStore::ValuesIn(
    ComponentId component, MetricId metric,
    const TimeInterval& interval) const {
  std::vector<double> out;
  for (const Sample& s : Slice(component, metric, interval)) {
    out.push_back(s.value);
  }
  return out;
}

Result<double> TimeSeriesStore::MeanIn(ComponentId component, MetricId metric,
                                       const TimeInterval& interval) const {
  std::vector<Sample> slice = Slice(component, metric, interval);
  // Samples are stamped at the *end* of the collection interval they
  // aggregate, so the sample covering this window's tail lands at the first
  // grid point at or after interval.end. Include it: for a run shorter than
  // the monitoring interval it is often the only reading that reflects the
  // run at all (Section 1.1's coarse-interval reality).
  const std::vector<Sample>& series = Series(component, metric);
  auto tail = std::lower_bound(
      series.begin(), series.end(), interval.end,
      [](const Sample& s, SimTimeMs t) { return s.time < t; });
  if (tail != series.end()) slice.push_back(*tail);
  if (!slice.empty()) {
    double sum = 0;
    for (const Sample& s : slice) sum += s.value;
    return sum / static_cast<double>(slice.size());
  }
  // No samples at all in or after the window: report the newest stale one.
  Result<Sample> latest = LatestAtOrBefore(component, metric, interval.begin);
  DIADS_RETURN_IF_ERROR(latest.status());
  return latest->value;
}

Result<Sample> TimeSeriesStore::LatestAtOrBefore(ComponentId component,
                                                 MetricId metric,
                                                 SimTimeMs t) const {
  const std::vector<Sample>& s = Series(component, metric);
  auto it = std::upper_bound(
      s.begin(), s.end(), t,
      [](SimTimeMs tt, const Sample& a) { return tt < a.time; });
  if (it == s.begin()) {
    return Status::NotFound("no sample at or before requested time");
  }
  return *(it - 1);
}

const std::vector<Sample>& TimeSeriesStore::Series(ComponentId component,
                                                   MetricId metric) const {
  auto it = series_.find(SeriesKey{component, metric});
  if (it == series_.end()) return EmptySeries();
  return it->second;
}

std::vector<MetricId> TimeSeriesStore::MetricsFor(ComponentId component) const {
  std::vector<MetricId> out;
  for (const auto& [key, samples] : series_) {
    if (key.component == component && !samples.empty()) {
      out.push_back(key.metric);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace diads::monitor
