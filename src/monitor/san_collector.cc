#include "monitor/san_collector.h"

#include <cassert>

#include "common/strings.h"

namespace diads::monitor {

SanCollector::SanCollector(const san::SanTopology* topology,
                           const san::SanPerfModel* perf_model,
                           TimeSeriesStore* store, NoiseModel* noise,
                           EventLog* event_log, SanCollectorConfig config)
    : topology_(topology),
      perf_model_(perf_model),
      store_(store),
      noise_(noise),
      event_log_(event_log),
      config_(config) {
  assert(topology_ && perf_model_ && store_ && noise_ && event_log_);
}

Status SanCollector::EmitSample(ComponentId component, MetricId metric,
                                SimTimeMs t, double clean_value) {
  std::optional<double> noisy = noise_->Apply(component, metric, t, clean_value);
  if (!noisy.has_value()) return Status::Ok();  // Dropped sample.
  return store_->Append(component, metric, t, *noisy);
}

Status SanCollector::CollectInterval(const TimeInterval& interval) {
  // Samples are timestamped at the interval end — the moment the monitoring
  // tool reports the aggregate, as real SMI-S collectors do.
  const SimTimeMs t = interval.end;

  for (ComponentId vol : topology_->AllVolumes()) {
    const san::VolumeIntervalStats s = perf_model_->VolumeStats(vol, interval);
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolBytesRead, t, s.bytes_read_per_sec));
    DIADS_RETURN_IF_ERROR(EmitSample(vol, MetricId::kVolBytesWritten, t,
                                     s.bytes_written_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolContaminatingWrites, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolPhysReadOps, t, s.physical_read_ops));
    DIADS_RETURN_IF_ERROR(EmitSample(vol, MetricId::kVolPhysReadTimeMs, t,
                                     s.physical_read_time_ms));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolPhysWriteOps, t, s.physical_write_ops));
    DIADS_RETURN_IF_ERROR(EmitSample(vol, MetricId::kVolPhysWriteTimeMs, t,
                                     s.physical_write_time_ms));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolSeqReadRequests, t, s.seq_read_iops));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolSeqWriteRequests, t, s.seq_write_iops));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolTotalIos, t, s.total_ios));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolReadLatencyMs, t, s.read_latency_ms));
    DIADS_RETURN_IF_ERROR(
        EmitSample(vol, MetricId::kVolWriteLatencyMs, t, s.write_latency_ms));

    if (config_.volume_latency_trigger_ms > 0 &&
        s.read_latency_ms > config_.volume_latency_trigger_ms) {
      SystemEvent event;
      event.time = t;
      event.type = EventType::kVolumePerfDegraded;
      event.subject = vol;
      event.description = StrFormat(
          "volume '%s' read latency %.1fms exceeded trigger %.1fms",
          topology_->registry().NameOf(vol).c_str(), s.read_latency_ms,
          config_.volume_latency_trigger_ms);
      DIADS_RETURN_IF_ERROR(event_log_->Append(std::move(event)));
    }
  }

  for (ComponentId disk : topology_->AllDisks()) {
    const san::DiskIntervalStats s = perf_model_->DiskStats(disk, interval);
    DIADS_RETURN_IF_ERROR(
        EmitSample(disk, MetricId::kDiskUtilization, t, s.utilization));
    DIADS_RETURN_IF_ERROR(EmitSample(disk, MetricId::kDiskIops, t, s.iops));
  }

  // Subsystem-high-load trigger: any pool whose mean disk utilisation
  // crosses the threshold.
  for (ComponentId pool : topology_->AllPools()) {
    double mean_util = 0;
    int n = 0;
    for (ComponentId disk : topology_->pool(pool).disks) {
      if (topology_->disk(disk).failed) continue;
      mean_util += perf_model_->DiskStats(disk, interval).utilization;
      ++n;
    }
    if (n > 0) mean_util /= n;
    if (config_.subsystem_load_trigger > 0 &&
        mean_util > config_.subsystem_load_trigger) {
      SystemEvent event;
      event.time = t;
      event.type = EventType::kSubsystemHighLoad;
      event.subject = pool;
      event.description =
          StrFormat("pool '%s' mean disk utilization %.2f exceeded %.2f",
                    topology_->registry().NameOf(pool).c_str(), mean_util,
                    config_.subsystem_load_trigger);
      DIADS_RETURN_IF_ERROR(event_log_->Append(std::move(event)));
    }
  }

  for (ComponentId server : topology_->AllServers()) {
    const san::ServerIntervalStats s =
        perf_model_->ServerStats(server, interval);
    const san::ServerInfo& info = topology_->server(server);
    DIADS_RETURN_IF_ERROR(EmitSample(server, MetricId::kServerCpuPct, t,
                                     s.cpu_utilization * 100.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerCpuMhz, t,
                   s.cpu_utilization * info.cpu_ghz * 1000.0 *
                       static_cast<double>(info.cpu_cores)));
    // Slow-moving host metrics: emitted as near-constant housekeeping series
    // so the store carries the full Figure-4 server column.
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerHandles, t, 4200.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerThreads, t,
                   180.0 + 90.0 * s.cpu_utilization));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerProcesses, t, 120.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerHeapKb, t, 512000.0));
    DIADS_RETURN_IF_ERROR(EmitSample(server, MetricId::kServerPhysMemPct, t,
                                     55.0 + 20.0 * s.cpu_utilization));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerKernelMemKb, t, 98000.0));
    DIADS_RETURN_IF_ERROR(EmitSample(server, MetricId::kServerSwapKb, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(server, MetricId::kServerReservedMemKb, t, 2048000.0));
  }

  for (ComponentId port :
       topology_->registry().AllOfKind(ComponentKind::kFcPort)) {
    const san::PortIntervalStats s = perf_model_->PortStats(port, interval);
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortBytesTx, t, s.mb_tx_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortBytesRx, t, s.mb_rx_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortPacketsTx, t, s.frames_tx_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortPacketsRx, t, s.frames_rx_per_sec));
    // Error counters: healthy fabric reports zeros; noise can perturb them.
    DIADS_RETURN_IF_ERROR(EmitSample(port, MetricId::kPortLipCount, t, 0.0));
    DIADS_RETURN_IF_ERROR(EmitSample(port, MetricId::kPortNosCount, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortErrorFrames, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortDumpedFrames, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortLinkFailures, t, 0.0));
    DIADS_RETURN_IF_ERROR(EmitSample(port, MetricId::kPortCrcErrors, t, 0.0));
    DIADS_RETURN_IF_ERROR(
        EmitSample(port, MetricId::kPortAddressErrors, t, 0.0));
  }

  return Status::Ok();
}

Status SanCollector::CollectRange(SimTimeMs from, SimTimeMs to) {
  if (to <= from) {
    return Status::InvalidArgument("collection range must be non-empty");
  }
  for (SimTimeMs t = from; t < to; t += config_.sampling_interval) {
    TimeInterval interval{t, std::min(t + config_.sampling_interval, to)};
    DIADS_RETURN_IF_ERROR(CollectInterval(interval));
  }
  return Status::Ok();
}

}  // namespace diads::monitor
