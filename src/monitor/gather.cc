#include "monitor/gather.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"

namespace diads::monitor {
namespace {

using Clock = std::chrono::steady_clock;

/// Appends a batch's series into the collected store, accumulating the
/// integrated volume into `counters`. Samples within a series are
/// time-ordered (covering slices preserve store order), so the appends
/// cannot fail.
void Integrate(const MetricBatch& batch, TimeSeriesStore* collected,
               GatherCounters* counters) {
  for (const MetricSeries& series : batch.series) {
    for (const Sample& sample : series.samples) {
      collected->Append(batch.component, series.metric, sample.time,
                        sample.value);
    }
    counters->samples_collected += series.samples.size();
    // Approximate wire size: one (time, value) pair per sample plus a
    // small per-series header. Good enough for "which diagnosis moved
    // how much data" attribution; nothing bills by it.
    counters->bytes_collected +=
        series.samples.size() * sizeof(Sample) + sizeof(MetricSeries);
  }
}

/// Synthesizes a stale batch from the request's locally cached series —
/// the same BatchFromSource read a fresh fetch performs, so degraded and
/// fetched data are byte-identical.
MetricBatch StaleFromLocal(const FetchRequest& request) {
  MetricBatch batch = BatchFromSource(request);
  batch.stale = true;
  return batch;
}

/// The structured degradation warning the serving stats could never
/// answer: *which* component went stale, and why.
void WarnStale(const FetchRequest& request, const char* reason,
               int attempts) {
  LogWarning("monitor.gather",
             StrFormat("component C%u degraded to stale local data "
                       "(%s after %d attempt%s, window [%s, %s])",
                       request.component.value, reason, attempts,
                       attempts == 1 ? "" : "s",
                       FormatSimTime(request.interval.begin).c_str(),
                       FormatSimTime(request.interval.end).c_str()));
}

}  // namespace

MetricGatherer::MetricGatherer(AsyncCollector* collector,
                               GatherOptions options)
    : collector_(collector), options_(options) {}

GatherResult MetricGatherer::Gather(const std::vector<FetchRequest>& plan,
                                    const obs::TraceContext& trace) const {
  struct InFlight {
    size_t plan_index = 0;
    std::future<MetricBatch> future;
    Clock::time_point deadline;
    int attempt = 1;
    obs::SpanHandle span;
  };

  GatherResult result;
  const Clock::time_point start = Clock::now();
  const bool timeouts_enabled = options_.timeout_ms > 0;
  const auto timeout =
      std::chrono::duration<double, std::milli>(options_.timeout_ms);
  const size_t window = static_cast<size_t>(
      options_.max_in_flight > 0 ? options_.max_in_flight : 1);

  std::vector<InFlight> in_flight;
  in_flight.reserve(window);
  size_t next = 0;

  auto issue = [&](size_t plan_index, int attempt) {
    InFlight entry;
    entry.plan_index = plan_index;
    if (trace.enabled()) {
      entry.span = trace.StartSpan(
          StrFormat("fetch:C%u", plan[plan_index].component.value),
          "collect");
      entry.span.Note("attempt", static_cast<uint64_t>(attempt));
      entry.span.NoteWindow(plan[plan_index].interval);
    }
    entry.future = collector_->Fetch(plan[plan_index]);
    entry.deadline = Clock::now() + std::chrono::duration_cast<
                                        Clock::duration>(timeout);
    entry.attempt = attempt;
    ++result.counters.fetches;
    in_flight.push_back(std::move(entry));
  };

  while (next < plan.size() || !in_flight.empty()) {
    while (next < plan.size() && in_flight.size() < window) {
      issue(next++, /*attempt=*/1);
    }
    // Harvest the oldest in-flight fetch. All others keep progressing in
    // the backend meanwhile, so waiting here costs no parallelism.
    InFlight entry = std::move(in_flight.front());
    in_flight.erase(in_flight.begin());
    const FetchRequest& request = plan[entry.plan_index];

    bool ready = true;
    if (timeouts_enabled) {
      ready = entry.future.wait_until(entry.deadline) ==
              std::future_status::ready;
    } else {
      entry.future.wait();
    }
    if (!ready) {
      ++result.counters.timeouts;
      entry.span.Note("outcome", "timeout");
      entry.span.End();
      // Abandon the attempt (the collector resolves the orphaned promise
      // whenever it finishes; nobody is listening).
      if (entry.attempt < options_.max_attempts) {
        ++result.counters.retries;
        issue(entry.plan_index, entry.attempt + 1);
      } else {
        ++result.counters.stale_components;
        result.stale_components.push_back(request.component);
        Integrate(StaleFromLocal(request), &result.collected,
                  &result.counters);
        WarnStale(request, "timeout", entry.attempt);
      }
      continue;
    }
    MetricBatch batch = entry.future.get();
    if (!batch.ok()) {
      // Cancelled (collector shutdown) or misconfigured: degrade to the
      // local series rather than failing the diagnosis.
      ++result.counters.cancelled;
      ++result.counters.stale_components;
      result.stale_components.push_back(request.component);
      Integrate(StaleFromLocal(request), &result.collected,
                &result.counters);
      entry.span.Note("outcome", "cancelled");
      entry.span.End();
      WarnStale(request, "fetch cancelled", entry.attempt);
      continue;
    }
    result.fetch_ms.push_back(batch.fetch_ms);
    Integrate(batch, &result.collected, &result.counters);
    entry.span.Note("outcome", "ok");
    entry.span.Note("fetch_ms", batch.fetch_ms);
    entry.span.End();
  }

  std::sort(result.stale_components.begin(), result.stale_components.end());
  result.counters.gather_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - start).count();
  return result;
}

}  // namespace diads::monitor
