// Completion-driven scatter/gather over an AsyncCollector.
//
// One diagnosis needs many component pulls; the gatherer issues them
// concurrently (bounded in-flight, so a wide plan cannot monopolize the
// backend's connections), enforces a per-component timeout with bounded
// retries, and degrades partially instead of failing: a component whose
// fetches all time out — or whose collector was shut down mid-flight —
// is served from the locally cached series (the request's source store,
// which in a deployment is the last successful collection) and marked
// stale. The diagnosis proceeds on identical data and the staleness is
// surfaced up through the engine's response and serving stats.
//
// The result owns a TimeSeriesStore holding exactly the fetched covering
// slices, so a Workflow pointed at it answers every in-window query
// identically to the source store (asserted by async_collector_test).
#ifndef DIADS_MONITOR_GATHER_H_
#define DIADS_MONITOR_GATHER_H_

#include <vector>

#include "monitor/async_collector.h"
#include "monitor/timeseries.h"
#include "obs/trace.h"

namespace diads::monitor {

struct GatherOptions {
  /// Fetches in flight at once per gather. Plans wider than this queue
  /// behind the window (completion-driven refill).
  int max_in_flight = 8;
  /// Per-attempt timeout; <= 0 disables timeouts entirely.
  double timeout_ms = 1000;
  /// Attempts per component before degrading to stale local data.
  int max_attempts = 2;
};

struct GatherCounters {
  uint64_t fetches = 0;           ///< Fetch attempts issued.
  uint64_t timeouts = 0;          ///< Attempts that exceeded timeout_ms.
  uint64_t retries = 0;           ///< Re-issues after a timed-out attempt.
  uint64_t cancelled = 0;         ///< Fetches the collector resolved not-ok.
  uint64_t stale_components = 0;  ///< Components degraded to local data.
  uint64_t samples_collected = 0; ///< Metric samples integrated (incl. stale).
  uint64_t bytes_collected = 0;   ///< Approximate integrated payload bytes.
  double gather_ms = 0;           ///< Wall clock of the whole gather.
};

struct GatherResult {
  /// The fetched covering slices, ready to serve a diagnosis.
  TimeSeriesStore collected;
  /// Components served stale (sorted by id). Empty on a clean gather.
  std::vector<ComponentId> stale_components;
  /// Round-trip of each *successful* fetch, ms (feeds latency percentiles).
  std::vector<double> fetch_ms;
  GatherCounters counters;

  bool degraded() const { return !stale_components.empty(); }
};

class MetricGatherer {
 public:
  /// `collector` must outlive the gatherer and every Gather call.
  MetricGatherer(AsyncCollector* collector, GatherOptions options);

  /// Executes a plan. Never fails: timed-out or cancelled components come
  /// back stale from their request's source store (each degradation is
  /// logged as a structured "monitor.gather" warning naming the affected
  /// component). Thread-safe (no state mutated across calls); each engine
  /// worker gathers independently.
  ///
  /// When `trace` is enabled, every fetch attempt becomes a child span
  /// ("fetch:C<id>", with attempt number and outcome); a disabled context
  /// costs nothing.
  GatherResult Gather(const std::vector<FetchRequest>& plan,
                      const obs::TraceContext& trace = {}) const;

  const GatherOptions& options() const { return options_; }

 private:
  AsyncCollector* collector_;
  GatherOptions options_;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_GATHER_H_
