// Monitoring noise models.
//
// Section 1.1: "the monitoring intervals are large (5 minutes or higher),
// which may lead to inaccuracies (referred to as noisy data)". Two noise
// sources are modelled:
//
//   * measurement noise applied by the collector to every sample (relative
//     Gaussian jitter, occasional spikes, dropouts), and
//   * targeted noise overrides that the fault injector registers to create
//     *spurious symptoms* — e.g. scenario 5's "spurious symptoms of volume
//     contention due to noise", where a volume's latency metrics are biased
//     upward although no contention exists.
#ifndef DIADS_MONITOR_NOISE_H_
#define DIADS_MONITOR_NOISE_H_

#include <optional>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "monitor/metrics.h"

namespace diads::monitor {

/// Parameters of the sample-level noise process.
struct NoiseSpec {
  /// Relative sigma of multiplicative Gaussian jitter (0.05 = 5%).
  double gaussian_rel_sigma = 0.05;
  /// Probability a sample is a spike.
  double spike_prob = 0.0;
  /// Multiplier applied to spiked samples.
  double spike_scale = 3.0;
  /// Probability a sample is dropped entirely (collector missed it).
  double dropout_prob = 0.0;
  /// Constant relative bias added to the value (0.5 = +50%). Used by fault
  /// injection to fabricate spurious symptoms.
  double bias_fraction = 0.0;
};

/// A targeted override: `spec` replaces the default noise for samples of
/// `metric` (or all metrics if unset) on `component` (or all components if
/// invalid) within `window`.
struct NoiseOverride {
  ComponentId component;               ///< Invalid id = any component.
  std::optional<MetricId> metric;      ///< nullopt = any metric.
  TimeInterval window;
  NoiseSpec spec;
};

/// Applies measurement noise to collector samples.
class NoiseModel {
 public:
  /// `rng` is forked per model; pass a child stream.
  NoiseModel(NoiseSpec default_spec, SeededRng rng)
      : default_spec_(default_spec), rng_(std::move(rng)) {}

  /// Registers a targeted override (later overrides win on overlap).
  void AddOverride(NoiseOverride override_spec);

  /// Returns the noisy value, or nullopt if the sample is dropped.
  std::optional<double> Apply(ComponentId component, MetricId metric,
                              SimTimeMs t, double clean_value);

  /// The spec in force for a given sample.
  const NoiseSpec& SpecFor(ComponentId component, MetricId metric,
                           SimTimeMs t) const;

  size_t override_count() const { return overrides_.size(); }

 private:
  NoiseSpec default_spec_;
  std::vector<NoiseOverride> overrides_;
  SeededRng rng_;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_NOISE_H_
