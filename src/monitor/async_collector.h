// Asynchronous SAN metric collection (the paper's Section 6 deployment
// pulls monitoring data from IBM TPC; a diagnosis touches many SAN
// components, each behind its own collector round-trip).
//
// The old serving model charged every diagnosis one blocking
// `collector_stall_ms` sleep — a stand-in that serializes all of a
// diagnosis's component pulls behind a single wait and cannot express a
// skewed fleet (one wedged switch slowing every diagnosis that touches
// it). This interface replaces it with real per-component fetches:
//
//   Fetch(component, interval, metrics) -> std::future<MetricBatch>
//
// so a gather layer (monitor/gather.h) can overlap every component pull
// belonging to one diagnosis and degrade per component (timeout -> stale
// local data) instead of per diagnosis.
//
// SimulatedSanCollector is the testbed backend: it serves the tenant's
// own TimeSeriesStore (the request names its source store, so one
// collector serves a whole multi-tenant fleet) after a configurable
// per-component latency, imposed by a small pool of connection threads —
// the shape of a TPC/SMI-S agent fan-out without the wire.
#ifndef DIADS_MONITOR_ASYNC_COLLECTOR_H_
#define DIADS_MONITOR_ASYNC_COLLECTOR_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "monitor/metrics.h"
#include "monitor/timeseries.h"

namespace diads::monitor {

/// One per-component pull: every listed metric's covering slice of
/// `interval` (see TimeSeriesStore::CoveringSlice) from `source`.
struct FetchRequest {
  ComponentId component;
  TimeInterval interval;
  /// Deduplicated, sorted by the planner. Metrics the component does not
  /// export simply come back empty.
  std::vector<MetricId> metrics;
  /// The monitoring backend holding this component's series (per tenant in
  /// the fleet simulation). Must outlive the returned future.
  const TimeSeriesStore* source = nullptr;
};

/// One fetched series.
struct MetricSeries {
  MetricId metric = MetricId::kVolTotalIos;
  std::vector<Sample> samples;
};

/// What a Fetch resolves to.
struct MetricBatch {
  ComponentId component;
  std::vector<MetricSeries> series;  ///< Non-empty series only.
  Status status;        ///< Not-ok when the fetch was cancelled/failed.
  bool stale = false;   ///< Set by the gather layer on timeout fallback.
  double fetch_ms = 0;  ///< Wall-clock round-trip of this fetch.

  bool ok() const { return status.ok(); }
};

/// Builds a MetricBatch by reading the request's covering slices straight
/// from request.source (empty series skipped; not-ok status when source
/// is null). The one definition of "what a fetch returns", shared by
/// backends serving fresh data and by the gather layer's stale-local
/// fallback — so degraded data stays byte-identical to fetched data.
MetricBatch BatchFromSource(const FetchRequest& request);

/// The async collection interface. Implementations must be safe to call
/// from many threads (every engine worker gathers through one collector).
class AsyncCollector {
 public:
  virtual ~AsyncCollector() = default;

  /// Starts one component pull. The future always resolves — with data, or
  /// with a not-ok status after Shutdown.
  virtual std::future<MetricBatch> Fetch(const FetchRequest& request) = 0;

  /// Cancels queued fetches (their futures resolve not-ok), interrupts
  /// in-flight simulated waits, and joins any worker threads. Idempotent.
  virtual void Shutdown() = 0;
};

/// Latency model of the simulated backend.
struct SimulatedLatencyOptions {
  /// Round-trip per component fetch, before overrides.
  double base_latency_ms = 1.0;
  /// Per-component overrides keyed by ComponentId::value — e.g. the one
  /// congested switch with a 10x round-trip.
  std::unordered_map<uint32_t, double> per_component_ms;
  /// Concurrent backend connections (worker threads serving fetches).
  int connections = 8;

  double LatencyFor(ComponentId component) const {
    auto it = per_component_ms.find(component.value);
    return it == per_component_ms.end() ? base_latency_ms : it->second;
  }
};

/// Simulated-latency backend over in-memory stores. Deterministic: a
/// component's latency is fixed by the options, and the returned samples
/// are exactly the source store's covering slices.
class SimulatedSanCollector : public AsyncCollector {
 public:
  explicit SimulatedSanCollector(SimulatedLatencyOptions options);
  ~SimulatedSanCollector() override;  ///< Shutdown().

  SimulatedSanCollector(const SimulatedSanCollector&) = delete;
  SimulatedSanCollector& operator=(const SimulatedSanCollector&) = delete;

  std::future<MetricBatch> Fetch(const FetchRequest& request) override;

  /// Wakes sleeping connections (their fetches resolve not-ok), fails all
  /// queued fetches, joins the connection threads. Idempotent.
  void Shutdown() override;

  const SimulatedLatencyOptions& options() const { return options_; }

  /// Fetches started (accepted into the queue) since construction.
  uint64_t fetches_started() const;
  /// Fetches cancelled by Shutdown before completing.
  uint64_t fetches_cancelled() const;

 private:
  struct Pending {
    FetchRequest request;
    std::promise<MetricBatch> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void ConnectionLoop();
  /// Resolves `pending` with data from its source store.
  static void Serve(Pending* pending);
  /// Resolves `pending` as cancelled.
  static void Cancel(Pending* pending);

  SimulatedLatencyOptions options_;
  mutable std::mutex mu_;
  std::condition_variable wake_;   ///< New work or shutdown (idle waiters).
  std::condition_variable abort_;  ///< Shutdown only (latency sleepers).
  std::deque<Pending> queue_;
  bool shutting_down_ = false;
  uint64_t started_ = 0;
  uint64_t cancelled_ = 0;
  std::mutex join_mu_;
  bool joined_ = false;
  std::vector<std::thread> connections_;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_ASYNC_COLLECTOR_H_
