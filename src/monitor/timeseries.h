// Time-series store for monitoring data.
//
// The paper's deployment stores all monitoring data "as time-series data in
// a DB2 database" (Section 6). This store is the in-memory equivalent: one
// append-only series per (component, metric) pair, sampled at the monitoring
// interval (5 minutes by default — Section 1.1 notes intervals are "5
// minutes or higher" in production, which is what makes the data noisy).
//
// The diagnosis modules consume per-run aggregates: "the annotation of an
// operator O consists of the performance data ... collected in the [tb, te]
// time interval" (Section 3). MeanIn/ValuesIn provide exactly that slicing.
#ifndef DIADS_MONITOR_TIMESERIES_H_
#define DIADS_MONITOR_TIMESERIES_H_

#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "monitor/metrics.h"

namespace diads::monitor {

/// One sample point.
struct Sample {
  SimTimeMs time = 0;
  double value = 0;
};

/// Key of one series.
struct SeriesKey {
  ComponentId component;
  MetricId metric;

  friend bool operator==(const SeriesKey& a, const SeriesKey& b) {
    return a.component == b.component && a.metric == b.metric;
  }
};

struct SeriesKeyHash {
  size_t operator()(const SeriesKey& k) const noexcept {
    return std::hash<uint32_t>()(k.component.value) * 1000003u ^
           static_cast<size_t>(k.metric);
  }
};

/// Append-only store of monitoring samples.
class TimeSeriesStore {
 public:
  /// Appends a sample; time must be non-decreasing within a series.
  Status Append(ComponentId component, MetricId metric, SimTimeMs time,
                double value);

  /// All samples of a series with time in [interval.begin, interval.end).
  std::vector<Sample> Slice(ComponentId component, MetricId metric,
                            const TimeInterval& interval) const;

  /// The samples a collector must ship so that MeanIn / ValuesIn /
  /// LatestAtOrBefore over any subinterval of `interval` answer identically
  /// to this store: the in-window slice, plus the newest sample at or
  /// before interval.begin (MeanIn's stale fallback), plus the first
  /// sample at or after interval.end (MeanIn's tail reading). Empty iff
  /// the series is empty.
  std::vector<Sample> CoveringSlice(ComponentId component, MetricId metric,
                                    const TimeInterval& interval) const;

  /// Values (without timestamps) in the interval.
  std::vector<double> ValuesIn(ComponentId component, MetricId metric,
                               const TimeInterval& interval) const;

  /// Mean of the samples in the interval; NotFound if there are none.
  /// When the interval is shorter than the sampling period, falls back to
  /// the nearest sample at or before interval.begin (the value the
  /// monitoring tool would report for that window).
  Result<double> MeanIn(ComponentId component, MetricId metric,
                        const TimeInterval& interval) const;

  /// Latest sample at or before `t`; NotFound if the series is empty or
  /// starts after `t`.
  Result<Sample> LatestAtOrBefore(ComponentId component, MetricId metric,
                                  SimTimeMs t) const;

  /// Whole series (empty if absent).
  const std::vector<Sample>& Series(ComponentId component,
                                    MetricId metric) const;

  /// Metrics that have at least one sample for `component`.
  std::vector<MetricId> MetricsFor(ComponentId component) const;

  size_t series_count() const { return series_.size(); }
  size_t total_samples() const { return total_samples_; }

 private:
  std::unordered_map<SeriesKey, std::vector<Sample>, SeriesKeyHash> series_;
  size_t total_samples_ = 0;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_TIMESERIES_H_
