// Time-series store for monitoring data.
//
// The paper's deployment stores all monitoring data "as time-series data in
// a DB2 database" (Section 6). This store is the in-memory equivalent: one
// append-only series per (component, metric) pair, sampled at the monitoring
// interval (5 minutes by default — Section 1.1 notes intervals are "5
// minutes or higher" in production, which is what makes the data noisy).
//
// The diagnosis modules consume per-run aggregates: "the annotation of an
// operator O consists of the performance data ... collected in the [tb, te]
// time interval" (Section 3). MeanIn/ValuesIn provide exactly that slicing.
//
// Hot-path note: because every series is appended in non-decreasing time
// order, any interval maps to one contiguous range found with two binary
// searches. SliceView exposes that range as a non-owning SampleSpan —
// O(log n) and zero copies — and MeanIn/ValuesIn are built on it. Slice
// keeps the copying contract for callers that need ownership (snapshots,
// cross-thread handoff).
#ifndef DIADS_MONITOR_TIMESERIES_H_
#define DIADS_MONITOR_TIMESERIES_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "monitor/metrics.h"

namespace diads::monitor {

/// One sample point.
struct Sample {
  SimTimeMs time = 0;
  double value = 0;
};

/// Non-owning view of a contiguous run of samples inside one series.
/// Valid until the next Append to that series (appends may reallocate).
class SampleSpan {
 public:
  SampleSpan() = default;
  SampleSpan(const Sample* data, size_t size) : data_(data), size_(size) {}

  const Sample* begin() const { return data_; }
  const Sample* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const Sample& operator[](size_t i) const { return data_[i]; }
  const Sample& front() const { return data_[0]; }
  const Sample& back() const { return data_[size_ - 1]; }

 private:
  const Sample* data_ = nullptr;
  size_t size_ = 0;
};

/// Key of one series.
struct SeriesKey {
  ComponentId component;
  MetricId metric;

  friend bool operator==(const SeriesKey& a, const SeriesKey& b) {
    return a.component == b.component && a.metric == b.metric;
  }
};

/// 64-bit mix (splitmix64 finalizer) over the packed (component, metric)
/// pair. The previous `component * 1000003 ^ metric` collapsed a whole
/// metric family onto consecutive buckets: XOR-ing the small metric id
/// into the low bits meant all metrics of one component differed only in
/// those bits, clustering every family into one neighbourhood of the
/// table (and colliding outright once the bucket mask ate the high bits).
struct SeriesKeyHash {
  size_t operator()(const SeriesKey& k) const noexcept {
    uint64_t x = (static_cast<uint64_t>(k.component.value) << 32) |
                 (static_cast<uint64_t>(k.metric) & 0xFFFFFFFFu);
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return static_cast<size_t>(x);
  }
};

/// Observes successful appends to one TimeSeriesStore (the online
/// detection hook). The callback runs synchronously on the appending
/// thread, *after* the sample is stored and every generation counter is
/// bumped, so a listener reading Generation() sees the post-append value.
/// Listeners must only observe: mutating the store from OnAppend is
/// undefined (the store is mid-append and not re-entrant).
class AppendListener {
 public:
  virtual ~AppendListener() = default;
  /// `series_ordinal` is the dense 0-based index the store assigned to
  /// this series when it was created, stable for the store's lifetime
  /// (the store is append-only, so ordinals are never reused). It lets a
  /// listener keep per-series state in a flat array indexed directly,
  /// instead of re-hashing (component, metric) on every append.
  virtual void OnAppend(ComponentId component, MetricId metric,
                        const Sample& sample, uint64_t series_generation,
                        uint32_t series_ordinal) = 0;
};

/// Append-only store of monitoring samples.
class TimeSeriesStore {
 public:
  /// Appends a sample; time must be non-decreasing within a series.
  /// Bumps the series' generation counter (model-cache invalidation).
  Status Append(ComponentId component, MetricId metric, SimTimeMs time,
                double value);

  /// Installs (or, with nullptr, clears) the append listener. At most one
  /// per store; not owned, must outlive its installation. The store is
  /// not thread-safe, so the listener inherits the store's threading
  /// contract: it is invoked on whichever single thread appends.
  void SetAppendListener(AppendListener* listener) { listener_ = listener; }
  AppendListener* append_listener() const { return listener_; }

  /// All samples of a series with time in [interval.begin, interval.end)
  /// as a non-owning view: two binary searches, no copy. The view is
  /// invalidated by the next Append to the same series.
  SampleSpan SliceView(ComponentId component, MetricId metric,
                       const TimeInterval& interval) const;

  /// Owning copy of SliceView — for callers that outlive appends.
  std::vector<Sample> Slice(ComponentId component, MetricId metric,
                            const TimeInterval& interval) const;

  /// The samples a collector must ship so that MeanIn / ValuesIn /
  /// LatestAtOrBefore over any subinterval of `interval` answer identically
  /// to this store: the in-window slice, plus the newest sample at or
  /// before interval.begin (MeanIn's stale fallback), plus the first
  /// sample at or after interval.end (MeanIn's tail reading). Empty iff
  /// the series is empty.
  std::vector<Sample> CoveringSlice(ComponentId component, MetricId metric,
                                    const TimeInterval& interval) const;

  /// Values (without timestamps) in the interval.
  std::vector<double> ValuesIn(ComponentId component, MetricId metric,
                               const TimeInterval& interval) const;

  /// Mean of the samples in the interval; NotFound if there are none.
  /// When the interval is shorter than the sampling period, falls back to
  /// the nearest sample at or before interval.begin (the value the
  /// monitoring tool would report for that window).
  Result<double> MeanIn(ComponentId component, MetricId metric,
                        const TimeInterval& interval) const;

  /// Latest sample at or before `t`; NotFound if the series is empty or
  /// starts after `t`.
  Result<Sample> LatestAtOrBefore(ComponentId component, MetricId metric,
                                  SimTimeMs t) const;

  /// Whole series (empty if absent).
  const std::vector<Sample>& Series(ComponentId component,
                                    MetricId metric) const;

  /// Monotone per-series append counter: 0 for an absent series,
  /// incremented by every Append. Cached models fitted from a series are
  /// valid exactly while its generation is unchanged.
  uint64_t Generation(ComponentId component, MetricId metric) const;

  /// Monotone per-component append counter: the sum of Generation() over
  /// the component's series, maintained incrementally. Fleet-store entries
  /// and per-component cache invalidation stamp this — a component's
  /// published verdict is valid exactly while no series of that component
  /// has been appended to.
  uint64_t ComponentGeneration(ComponentId component) const;

  /// Monotone store-wide append counter (total appends ever). Diagnosis
  /// results derived from this store are valid exactly while it is
  /// unchanged — the result-cache's Append-driven invalidation stamp.
  uint64_t StoreGeneration() const { return store_generation_; }

  /// Metrics that have at least one sample for `component`.
  std::vector<MetricId> MetricsFor(ComponentId component) const;

  /// Visits every non-empty series (iteration order is unspecified; sort
  /// on the key if determinism matters). The visited sample vectors are
  /// valid only during the call.
  void ForEachSeries(
      const std::function<void(ComponentId, MetricId,
                               const std::vector<Sample>&)>& fn) const;

  size_t series_count() const { return series_.size(); }
  size_t total_samples() const { return total_samples_; }

 private:
  struct SeriesData {
    std::vector<Sample> samples;
    uint64_t generation = 0;
    /// Dense creation-order index (see AppendListener::OnAppend);
    /// assigned on first Append touching the series.
    uint32_t ordinal = kUnassignedOrdinal;
  };
  static constexpr uint32_t kUnassignedOrdinal = 0xFFFFFFFFu;

  std::unordered_map<SeriesKey, SeriesData, SeriesKeyHash> series_;
  std::unordered_map<ComponentId, uint64_t> component_generation_;
  uint64_t store_generation_ = 0;
  size_t total_samples_ = 0;
  uint32_t next_ordinal_ = 0;
  AppendListener* listener_ = nullptr;
};

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_TIMESERIES_H_
