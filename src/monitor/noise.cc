#include "monitor/noise.h"

#include <algorithm>

namespace diads::monitor {

void NoiseModel::AddOverride(NoiseOverride override_spec) {
  overrides_.push_back(std::move(override_spec));
}

const NoiseSpec& NoiseModel::SpecFor(ComponentId component, MetricId metric,
                                     SimTimeMs t) const {
  // Later overrides win: scan backwards.
  for (auto it = overrides_.rbegin(); it != overrides_.rend(); ++it) {
    const NoiseOverride& o = *it;
    if (!o.window.Contains(t)) continue;
    if (o.component.valid() && !(o.component == component)) continue;
    if (o.metric.has_value() && *o.metric != metric) continue;
    return o.spec;
  }
  return default_spec_;
}

std::optional<double> NoiseModel::Apply(ComponentId component, MetricId metric,
                                        SimTimeMs t, double clean_value) {
  const NoiseSpec& spec = SpecFor(component, metric, t);
  if (spec.dropout_prob > 0 && rng_.Bernoulli(spec.dropout_prob)) {
    return std::nullopt;
  }
  double v = clean_value * (1.0 + spec.bias_fraction);
  if (spec.gaussian_rel_sigma > 0) {
    v *= std::max(0.0, rng_.Normal(1.0, spec.gaussian_rel_sigma));
  }
  if (spec.spike_prob > 0 && rng_.Bernoulli(spec.spike_prob)) {
    v *= spec.spike_scale;
  }
  return v;
}

}  // namespace diads::monitor
