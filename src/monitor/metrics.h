// The metric catalog — Figure 4 of the paper.
//
// "Figure 4: Performance metrics collected by DIADS" lists the database,
// server, network, and storage metrics the prototype collects through IBM
// TPC. This file encodes that inventory as a typed catalog: every metric has
// an id, a display name, a unit, the layer it belongs to, and the component
// kinds it applies to. Collectors emit these into the TimeSeriesStore; the
// diagnosis modules and the APG annotations refer to them by MetricId.
#ifndef DIADS_MONITOR_METRICS_H_
#define DIADS_MONITOR_METRICS_H_

#include <string>
#include <vector>

#include "common/ids.h"

namespace diads::monitor {

/// The four columns of Figure 4.
enum class MetricLayer { kDatabase, kServer, kNetwork, kStorage };

const char* MetricLayerName(MetricLayer layer);

/// Every collected metric. Names follow Figure 4; a few derived metrics the
/// prototype's analysis uses (volume latencies, disk utilisation) extend the
/// inventory and are marked below.
enum class MetricId {
  // --- Database metrics (Figure 4, column 1). Operator/plan start-stop
  // times and record counts live in QueryRunRecord rather than the
  // time-series store; the aggregate counters below are sampled per
  // monitoring interval.
  kDbLocksHeld,
  kDbLockWaitMs,  ///< Derived: lock wait time per interval.
  kDbSpaceUsageMb,
  kDbBlocksRead,
  kDbBufferHits,
  kDbIndexScans,
  kDbIndexReads,
  kDbIndexFetches,
  kDbSequentialScans,
  // --- Server metrics (Figure 4, column 2).
  kServerCpuPct,
  kServerCpuMhz,
  kServerHandles,
  kServerThreads,
  kServerProcesses,
  kServerHeapKb,
  kServerPhysMemPct,
  kServerKernelMemKb,
  kServerSwapKb,
  kServerReservedMemKb,
  // --- Network metrics (Figure 4, column 3); per FC port.
  kPortBytesTx,
  kPortBytesRx,
  kPortPacketsTx,
  kPortPacketsRx,
  kPortLipCount,
  kPortNosCount,
  kPortErrorFrames,
  kPortDumpedFrames,
  kPortLinkFailures,
  kPortCrcErrors,
  kPortAddressErrors,
  // --- Storage metrics (Figure 4, column 4); per volume unless noted.
  kVolBytesRead,
  kVolBytesWritten,
  kVolContaminatingWrites,
  kVolPhysReadOps,     ///< "PhysicalStorageRead Operations" — backend,
                       ///< includes sharer volumes on the same disks.
  kVolPhysReadTimeMs,  ///< "Physical Storage Read Time".
  kVolPhysWriteOps,
  kVolPhysWriteTimeMs,
  kVolSeqReadRequests,
  kVolSeqWriteRequests,
  kVolTotalIos,
  // --- Derived storage metrics (beyond Figure 4, used by the analysis).
  kVolReadLatencyMs,
  kVolWriteLatencyMs,
  kDiskUtilization,
  kDiskIops,
};

/// Static description of one metric.
struct MetricMeta {
  MetricId id;
  const char* name;   ///< Display name, as in Figure 4 where applicable.
  const char* unit;
  MetricLayer layer;
  ComponentKind component_kind;  ///< Kind of component it is sampled on.
  bool in_figure4;    ///< True if listed verbatim in Figure 4.
};

/// Metadata for one metric id.
const MetricMeta& GetMetricMeta(MetricId id);

/// The whole catalog, in Figure-4 order (database, server, network, storage,
/// then derived extras).
const std::vector<MetricMeta>& AllMetrics();

/// All metrics applicable to a component kind.
std::vector<MetricId> MetricsForKind(ComponentKind kind);

/// Short stable name, e.g. "writeIO" for kVolPhysWriteOps — matching the
/// labels used in Table 2 of the paper.
const char* MetricShortName(MetricId id);

}  // namespace diads::monitor

#endif  // DIADS_MONITOR_METRICS_H_
