#include "monitor/async_collector.h"

#include <chrono>
#include <utility>

namespace diads::monitor {

using Clock = std::chrono::steady_clock;

MetricBatch BatchFromSource(const FetchRequest& request) {
  MetricBatch batch;
  batch.component = request.component;
  if (request.source == nullptr) {
    batch.status = Status::InvalidArgument("FetchRequest.source is null");
    return batch;
  }
  for (MetricId metric : request.metrics) {
    MetricSeries series;
    series.metric = metric;
    series.samples = request.source->CoveringSlice(request.component, metric,
                                                   request.interval);
    if (!series.samples.empty()) batch.series.push_back(std::move(series));
  }
  return batch;
}

SimulatedSanCollector::SimulatedSanCollector(SimulatedLatencyOptions options)
    : options_(std::move(options)) {
  const int n = options_.connections > 0 ? options_.connections : 1;
  connections_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    connections_.emplace_back([this] { ConnectionLoop(); });
  }
}

SimulatedSanCollector::~SimulatedSanCollector() { Shutdown(); }

std::future<MetricBatch> SimulatedSanCollector::Fetch(
    const FetchRequest& request) {
  Pending pending;
  pending.request = request;
  pending.enqueued = Clock::now();
  std::future<MetricBatch> future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutting_down_) {
      ++cancelled_;
      Cancel(&pending);
      return future;
    }
    ++started_;
    queue_.push_back(std::move(pending));
  }
  wake_.notify_one();
  return future;
}

void SimulatedSanCollector::Serve(Pending* pending) {
  MetricBatch batch = BatchFromSource(pending->request);
  batch.fetch_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - pending->enqueued)
                       .count();
  pending->promise.set_value(std::move(batch));
}

void SimulatedSanCollector::Cancel(Pending* pending) {
  MetricBatch batch;
  batch.component = pending->request.component;
  batch.status =
      Status::FailedPrecondition("collector shut down before fetch completed");
  batch.fetch_ms = std::chrono::duration<double, std::milli>(
                       Clock::now() - pending->enqueued)
                       .count();
  pending->promise.set_value(std::move(batch));
}

void SimulatedSanCollector::ConnectionLoop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting_down_ and drained.
      pending = std::move(queue_.front());
      queue_.pop_front();
    }
    // The simulated wire: sleep the component's round-trip, but wake early
    // on Shutdown so cancellation is prompt and deterministic.
    const double latency_ms = options_.LatencyFor(pending.request.component);
    if (latency_ms > 0) {
      std::unique_lock<std::mutex> lock(mu_);
      const bool interrupted = abort_.wait_for(
          lock,
          std::chrono::duration<double, std::milli>(latency_ms),
          [this] { return shutting_down_; });
      if (interrupted) {
        ++cancelled_;
        lock.unlock();
        Cancel(&pending);
        continue;
      }
    } else {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutting_down_) {
        ++cancelled_;
        Cancel(&pending);
        continue;
      }
    }
    Serve(&pending);
  }
}

void SimulatedSanCollector::Shutdown() {
  std::deque<Pending> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    orphaned.swap(queue_);
    cancelled_ += orphaned.size();
  }
  wake_.notify_all();
  abort_.notify_all();
  for (Pending& pending : orphaned) Cancel(&pending);
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (joined_) return;
  joined_ = true;
  for (std::thread& connection : connections_) connection.join();
}

uint64_t SimulatedSanCollector::fetches_started() const {
  std::lock_guard<std::mutex> lock(mu_);
  return started_;
}

uint64_t SimulatedSanCollector::fetches_cancelled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cancelled_;
}

}  // namespace diads::monitor
