// Crash-durable append-only segment log for the fleet store.
//
// The FleetStore is an in-memory index: a process crash loses every
// published verdict, and after restart each cross-tenant question costs a
// full re-diagnosis per tenant — the exact fleet regime the store exists
// to avoid. The SegmentLog makes publishes durable the boring way
// databases do:
//
//   * every published TenantVerdict is serialized and appended as one
//     framed record: [u32 payload_len][u32 crc32(payload)][payload].
//     The CRC (IEEE 802.3, see common/crc32.h) is what lets replay tell
//     a valid record from a torn or bit-flipped tail after a crash;
//   * the log is segmented: a fresh segment starts at every Open (the
//     previous process may have died mid-write; its possibly-torn tail
//     is never appended to), when a segment outgrows segment_max_bytes,
//     and when the published verdict's diagnosis window enters a new
//     retention bucket. Segment names encode (sequence, window bucket),
//     so replay order is lexical filename order and retention can
//     reason about windows without opening files;
//   * retention is per-window: keep the newest `retain_windows` window
//     buckets, delete whole segments older than that — compaction by
//     unlink, no rewrite, mirroring how the store itself ages verdicts
//     out by generation rather than TTL.
//
// Recovery (RecoverFromLog) replays every segment in order and
// re-publishes each valid record into a FleetStore. Replay NEVER
// crashes on a corrupt log: a record whose frame is torn, whose length
// is implausible, or whose CRC mismatches ends that segment's replay
// (later segments still replay — their records are newer, and the
// store's monotone-generation Upsert keeps ordering honest) and is
// counted in ReplayStats.records_dropped. Rows restored this way answer
// every FleetQuery byte-identically to the pre-crash store, minus
// records provably lost in the torn tail.
//
// The verdict's observability-only `cost` profile is deliberately not
// serialized (it is null after recovery): no FleetQuery reads it, so
// query answers stay byte-equal — the same metadata-only contract
// TenantVerdict::cost already documents.
//
// Thread-safety: Append/Counters are safe to call concurrently (one
// internal mutex — the log is the serialization point publishes already
// funnel through). Open/Replay/retention race with nothing by contract:
// recover first, then attach.
#ifndef DIADS_FLEET_LOG_H_
#define DIADS_FLEET_LOG_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "fleet/verdict.h"

namespace diads::fleet {

class FleetStore;  // fleet/store.h

struct LogOptions {
  /// Directory holding the segment files (created if missing).
  std::string dir;
  /// Roll to a new segment once the current one exceeds this many bytes.
  size_t segment_max_bytes = 4 * 1024 * 1024;
  /// Width of one retention window bucket, in sim-time ms over the
  /// verdict's window_end. 0 = a single bucket (no window-driven rolls,
  /// retention never expires anything).
  SimTimeMs window_span_ms = 0;
  /// Keep segments of the newest N window buckets; delete older ones.
  /// 0 = keep everything.
  size_t retain_windows = 0;
  /// fsync after every append (crash-durable to the platter, slow).
  /// Off by default: the fleet store tolerates losing the final records
  /// of a crash — that is exactly what ReplayStats reports.
  bool sync_each_append = false;
};

/// Counters for the write side of the log.
struct LogCounters {
  uint64_t appends = 0;           ///< Records appended.
  uint64_t append_failures = 0;   ///< I/O errors (record not written).
  uint64_t bytes_written = 0;     ///< Frame + payload bytes.
  uint64_t segments_created = 0;  ///< Including the Open segment.
  uint64_t segments_deleted = 0;  ///< Removed by retention.

  std::string Render() const;  ///< Human-readable one-liner block.
  std::string ToJson() const;  ///< One-line JSON object.
};

/// What one replay saw. records_dropped counts suffixes abandoned for
/// cause: a torn frame, an implausible length, or a CRC mismatch each
/// count once per segment (everything after the first bad byte of a
/// segment is unreadable — there is no resync marker).
struct ReplayStats {
  uint64_t segments_scanned = 0;
  uint64_t records_replayed = 0;
  uint64_t records_dropped = 0;    ///< Corrupt/torn suffixes abandoned.
  uint64_t bytes_scanned = 0;
  uint64_t decode_failures = 0;    ///< CRC-valid but unparseable payload.

  std::string Render() const;
  std::string ToJson() const;
};

/// Serializes a verdict to the log's record payload (format v1). Exposed
/// for tests; Append frames and writes it.
std::string EncodeVerdict(const TenantVerdict& verdict);

/// Decodes a record payload. Returns InvalidArgument on version mismatch
/// or a truncated/overrun payload (never crashes on garbage).
Result<TenantVerdict> DecodeVerdict(const std::string& payload);

class SegmentLog {
 public:
  /// Creates the directory if needed, scans existing segment names to
  /// continue the sequence numbering, and starts a FRESH segment (an
  /// existing tail, possibly torn by a crash, is never appended to).
  static Result<std::unique_ptr<SegmentLog>> Open(LogOptions options);

  ~SegmentLog();

  SegmentLog(const SegmentLog&) = delete;
  SegmentLog& operator=(const SegmentLog&) = delete;

  /// Appends one verdict as a framed record, rolling the segment on size
  /// or window-bucket change, then enforces retention. Returns Internal
  /// on I/O failure (the store stays usable; the record is not durable).
  Status Append(const TenantVerdict& verdict);

  /// Flushes (and with sync_each_append, fsyncs) the current segment.
  Status Flush();

  LogCounters Counters() const;

  const LogOptions& options() const { return options_; }

  /// Live segment file names (sorted = replay order). Test/ops surface.
  static std::vector<std::string> ListSegments(const std::string& dir);

  /// Replays every segment under `dir` in order, invoking `visit` for
  /// each valid record. Never fails on corruption — corrupt suffixes are
  /// counted and skipped; a missing directory is just an empty log.
  static ReplayStats Replay(
      const std::string& dir,
      const std::function<void(TenantVerdict&&)>& visit);

 private:
  explicit SegmentLog(LogOptions options);

  /// The retention bucket of a verdict (window_end / window_span_ms).
  int64_t BucketOf(SimTimeMs window_end) const;
  Status RollSegment(int64_t bucket);   ///< Opens seg-<seq>-w<bucket>.
  void EnforceRetention();              ///< Deletes expired buckets.

  LogOptions options_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;     ///< Current segment (guarded by mu_).
  std::string file_path_;
  size_t file_bytes_ = 0;
  uint64_t next_sequence_ = 0;
  int64_t current_bucket_ = 0;
  bool have_segment_ = false;
  LogCounters counters_;
};

/// Replays `dir` into `store` (via Publish, so the store's monotone-
/// generation rule arbitrates duplicate or out-of-order records exactly
/// as live publishes would). Call BEFORE FleetStore::AttachLog — an
/// attached log would re-append every replayed record.
ReplayStats RecoverFromLog(const std::string& dir, FleetStore* store);

}  // namespace diads::fleet

#endif  // DIADS_FLEET_LOG_H_
