#include "fleet/log.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <set>
#include <utility>

#include "common/crc32.h"
#include "common/strings.h"
#include "fleet/store.h"

#ifdef __unix__
#include <unistd.h>
#endif

namespace diads::fleet {
namespace {

namespace fs = std::filesystem;

constexpr uint32_t kFormatVersion = 1;
/// Upper bound on one record's payload. A corrupt length word must not
/// make replay allocate gigabytes: anything larger is treated as
/// corruption, not data (real verdicts are a few KB).
constexpr uint32_t kMaxPayloadBytes = 64u * 1024 * 1024;
constexpr size_t kFrameBytes = 8;  // u32 len + u32 crc.

// ---- little-endian payload writer/reader ------------------------------

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double is not 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutStr(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

/// Bounds-checked reader: every Get returns false past the end instead of
/// reading garbage, so a corrupt (but CRC-colliding) payload degrades to
/// a decode failure, never undefined behavior.
class Reader {
 public:
  explicit Reader(const std::string& data) : data_(data) {}

  bool GetU32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 4;
    return true;
  }

  bool GetU64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(
                static_cast<unsigned char>(data_[pos_ + i]))
            << (8 * i);
    }
    pos_ += 8;
    return true;
  }

  bool GetI64(int64_t* v) {
    uint64_t u = 0;
    if (!GetU64(&u)) return false;
    *v = static_cast<int64_t>(u);
    return true;
  }

  bool GetF64(double* v) {
    uint64_t bits = 0;
    if (!GetU64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(bits));
    return true;
  }

  bool GetU8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<unsigned char>(data_[pos_++]);
    return true;
  }

  bool GetStr(std::string* s) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (pos_ + len > data_.size()) return false;
    s->assign(data_, pos_, len);
    pos_ += len;
    return true;
  }

  bool done() const { return pos_ == data_.size(); }

 private:
  const std::string& data_;
  size_t pos_ = 0;
};

Status DecodeError() {
  return Status::InvalidArgument(
      "fleet log record payload is truncated or malformed");
}

// ---- segment naming ---------------------------------------------------
//
// seg-<sequence>-w<bucket>.dlog — zero-padded so lexical order is append
// order, with the retention window bucket readable without opening the
// file. Bucket is offset by 2^62 so negative sim-time buckets still sort
// and parse (%019lld of the offset value is always positive).

constexpr int64_t kBucketOffset = int64_t{1} << 62;

std::string SegmentName(uint64_t sequence, int64_t bucket) {
  return StrFormat("seg-%010llu-w%019lld.dlog",
                   static_cast<unsigned long long>(sequence),
                   static_cast<long long>(bucket + kBucketOffset));
}

bool ParseSegmentName(const std::string& name, uint64_t* sequence,
                      int64_t* bucket) {
  unsigned long long seq = 0;
  long long offset_bucket = 0;
  if (std::sscanf(name.c_str(), "seg-%llu-w%lld.dlog", &seq,
                  &offset_bucket) != 2) {
    return false;
  }
  *sequence = seq;
  *bucket = offset_bucket - kBucketOffset;
  return true;
}

}  // namespace

// ---- verdict payload codec -------------------------------------------

std::string EncodeVerdict(const TenantVerdict& verdict) {
  std::string out;
  PutU32(&out, kFormatVersion);
  PutStr(&out, verdict.tenant);
  PutStr(&out, verdict.query);
  PutI64(&out, verdict.window_begin);
  PutI64(&out, verdict.window_end);
  PutU64(&out, verdict.store_generation);
  PutU8(&out, verdict.plan_diff.plans_differ ? 1 : 0);
  PutU32(&out, static_cast<uint32_t>(verdict.plan_diff.satisfactory_plans));
  PutU32(&out, static_cast<uint32_t>(verdict.plan_diff.unsatisfactory_plans));
  PutU32(&out, static_cast<uint32_t>(verdict.plan_diff.candidates));
  PutU32(&out, static_cast<uint32_t>(verdict.plan_diff.explaining_candidates));
  PutU32(&out, static_cast<uint32_t>(verdict.causes.size()));
  for (const CauseVerdict& cause : verdict.causes) {
    PutU32(&out, static_cast<uint32_t>(cause.type));
    PutStr(&out, cause.subject);
    PutF64(&out, cause.confidence);
    PutU32(&out, static_cast<uint32_t>(cause.band));
    PutF64(&out, cause.impact_pct);
  }
  PutU32(&out, static_cast<uint32_t>(verdict.components.size()));
  for (const ComponentVerdict& component : verdict.components) {
    PutStr(&out, component.component);
    PutU32(&out, static_cast<uint32_t>(component.kind));
    PutU8(&out, component.in_ccs ? 1 : 0);
    PutF64(&out, component.max_anomaly);
    PutU32(&out, static_cast<uint32_t>(component.metrics.size()));
    for (const MetricVerdict& metric : component.metrics) {
      PutU32(&out, static_cast<uint32_t>(metric.metric));
      PutF64(&out, metric.anomaly_score);
      PutF64(&out, metric.correlation);
      PutU8(&out, metric.correlated ? 1 : 0);
    }
    PutU8(&out, component.cause_subject ? 1 : 0);
    PutF64(&out, component.best_cause_confidence);
    PutU32(&out, static_cast<uint32_t>(component.cause_types.size()));
    for (diag::RootCauseType type : component.cause_types) {
      PutU32(&out, static_cast<uint32_t>(type));
    }
    PutU64(&out, component.generation);
  }
  // `cost` is observability-only and not serialized (see header).
  PutU8(&out, verdict.incident != nullptr ? 1 : 0);
  if (verdict.incident != nullptr) {
    PutU64(&out, verdict.incident->sequence);
    PutStr(&out, verdict.incident->subject);
    PutU32(&out, static_cast<uint32_t>(verdict.incident->metric));
    PutI64(&out, verdict.incident->onset_time);
    PutI64(&out, verdict.incident->confirmed_time);
  }
  return out;
}

Result<TenantVerdict> DecodeVerdict(const std::string& payload) {
  Reader reader(payload);
  uint32_t version = 0;
  if (!reader.GetU32(&version)) return DecodeError();
  if (version != kFormatVersion) {
    return Status::InvalidArgument(
        StrFormat("fleet log record has unknown format version %u", version));
  }
  TenantVerdict verdict;
  uint8_t flag = 0;
  uint32_t u32 = 0;
  if (!reader.GetStr(&verdict.tenant)) return DecodeError();
  if (!reader.GetStr(&verdict.query)) return DecodeError();
  if (!reader.GetI64(&verdict.window_begin)) return DecodeError();
  if (!reader.GetI64(&verdict.window_end)) return DecodeError();
  if (!reader.GetU64(&verdict.store_generation)) return DecodeError();
  if (!reader.GetU8(&flag)) return DecodeError();
  verdict.plan_diff.plans_differ = flag != 0;
  if (!reader.GetU32(&u32)) return DecodeError();
  verdict.plan_diff.satisfactory_plans = static_cast<int>(u32);
  if (!reader.GetU32(&u32)) return DecodeError();
  verdict.plan_diff.unsatisfactory_plans = static_cast<int>(u32);
  if (!reader.GetU32(&u32)) return DecodeError();
  verdict.plan_diff.candidates = static_cast<int>(u32);
  if (!reader.GetU32(&u32)) return DecodeError();
  verdict.plan_diff.explaining_candidates = static_cast<int>(u32);
  uint32_t n_causes = 0;
  if (!reader.GetU32(&n_causes)) return DecodeError();
  if (n_causes > payload.size()) return DecodeError();  // Sanity bound.
  verdict.causes.reserve(n_causes);
  for (uint32_t i = 0; i < n_causes; ++i) {
    CauseVerdict cause;
    if (!reader.GetU32(&u32)) return DecodeError();
    cause.type = static_cast<diag::RootCauseType>(u32);
    if (!reader.GetStr(&cause.subject)) return DecodeError();
    if (!reader.GetF64(&cause.confidence)) return DecodeError();
    if (!reader.GetU32(&u32)) return DecodeError();
    cause.band = static_cast<diag::ConfidenceBand>(u32);
    if (!reader.GetF64(&cause.impact_pct)) return DecodeError();
    verdict.causes.push_back(std::move(cause));
  }
  uint32_t n_components = 0;
  if (!reader.GetU32(&n_components)) return DecodeError();
  if (n_components > payload.size()) return DecodeError();
  verdict.components.reserve(n_components);
  for (uint32_t i = 0; i < n_components; ++i) {
    ComponentVerdict component;
    if (!reader.GetStr(&component.component)) return DecodeError();
    if (!reader.GetU32(&u32)) return DecodeError();
    component.kind = static_cast<ComponentKind>(u32);
    if (!reader.GetU8(&flag)) return DecodeError();
    component.in_ccs = flag != 0;
    if (!reader.GetF64(&component.max_anomaly)) return DecodeError();
    uint32_t n_metrics = 0;
    if (!reader.GetU32(&n_metrics)) return DecodeError();
    if (n_metrics > payload.size()) return DecodeError();
    component.metrics.reserve(n_metrics);
    for (uint32_t j = 0; j < n_metrics; ++j) {
      MetricVerdict metric;
      if (!reader.GetU32(&u32)) return DecodeError();
      metric.metric = static_cast<monitor::MetricId>(u32);
      if (!reader.GetF64(&metric.anomaly_score)) return DecodeError();
      if (!reader.GetF64(&metric.correlation)) return DecodeError();
      if (!reader.GetU8(&flag)) return DecodeError();
      metric.correlated = flag != 0;
      component.metrics.push_back(metric);
    }
    if (!reader.GetU8(&flag)) return DecodeError();
    component.cause_subject = flag != 0;
    if (!reader.GetF64(&component.best_cause_confidence)) return DecodeError();
    uint32_t n_types = 0;
    if (!reader.GetU32(&n_types)) return DecodeError();
    if (n_types > payload.size()) return DecodeError();
    component.cause_types.reserve(n_types);
    for (uint32_t j = 0; j < n_types; ++j) {
      if (!reader.GetU32(&u32)) return DecodeError();
      component.cause_types.push_back(static_cast<diag::RootCauseType>(u32));
    }
    if (!reader.GetU64(&component.generation)) return DecodeError();
    verdict.components.push_back(std::move(component));
  }
  if (!reader.GetU8(&flag)) return DecodeError();
  if (flag != 0) {
    auto incident = std::make_shared<IncidentStamp>();
    if (!reader.GetU64(&incident->sequence)) return DecodeError();
    if (!reader.GetStr(&incident->subject)) return DecodeError();
    if (!reader.GetU32(&u32)) return DecodeError();
    incident->metric = static_cast<monitor::MetricId>(u32);
    if (!reader.GetI64(&incident->onset_time)) return DecodeError();
    if (!reader.GetI64(&incident->confirmed_time)) return DecodeError();
    verdict.incident = std::move(incident);
  }
  if (!reader.done()) return DecodeError();  // Trailing garbage.
  return verdict;
}

// ---- SegmentLog -------------------------------------------------------

SegmentLog::SegmentLog(LogOptions options) : options_(std::move(options)) {}

SegmentLog::~SegmentLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Result<std::unique_ptr<SegmentLog>> SegmentLog::Open(LogOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("SegmentLog::Open: empty directory");
  }
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Internal("SegmentLog::Open: cannot create '" +
                            options.dir + "': " + ec.message());
  }
  auto log = std::unique_ptr<SegmentLog>(new SegmentLog(std::move(options)));
  // Continue the sequence after the highest existing segment so replay
  // order (lexical) matches append order across process restarts.
  uint64_t max_sequence = 0;
  bool any = false;
  for (const std::string& name : ListSegments(log->options_.dir)) {
    uint64_t sequence = 0;
    int64_t bucket = 0;
    if (ParseSegmentName(name, &sequence, &bucket)) {
      max_sequence = std::max(max_sequence, sequence);
      any = true;
    }
  }
  log->next_sequence_ = any ? max_sequence + 1 : 0;
  return log;
}

int64_t SegmentLog::BucketOf(SimTimeMs window_end) const {
  if (options_.window_span_ms <= 0) return 0;
  // Floor division so negative sim times bucket consistently.
  int64_t q = window_end / options_.window_span_ms;
  if (window_end % options_.window_span_ms < 0) --q;
  return q;
}

Status SegmentLog::RollSegment(int64_t bucket) {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  const std::string name = SegmentName(next_sequence_, bucket);
  file_path_ = (fs::path(options_.dir) / name).string();
  file_ = std::fopen(file_path_.c_str(), "wb");
  if (file_ == nullptr) {
    have_segment_ = false;
    return Status::Internal("SegmentLog: cannot open segment '" +
                            file_path_ + "'");
  }
  ++next_sequence_;
  file_bytes_ = 0;
  current_bucket_ = bucket;
  have_segment_ = true;
  ++counters_.segments_created;
  return Status::Ok();
}

Status SegmentLog::Append(const TenantVerdict& verdict) {
  const std::string payload = EncodeVerdict(verdict);
  const uint32_t crc = Crc32(payload.data(), payload.size());
  std::string frame;
  frame.reserve(kFrameBytes);
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  PutU32(&frame, crc);

  std::lock_guard<std::mutex> lock(mu_);
  const int64_t bucket = BucketOf(verdict.window_end);
  if (!have_segment_ || bucket != current_bucket_ ||
      file_bytes_ >= options_.segment_max_bytes) {
    const Status rolled = RollSegment(bucket);
    if (!rolled.ok()) {
      ++counters_.append_failures;
      return rolled;
    }
    EnforceRetention();
  }
  if (std::fwrite(frame.data(), 1, frame.size(), file_) != frame.size() ||
      std::fwrite(payload.data(), 1, payload.size(), file_) !=
          payload.size() ||
      std::fflush(file_) != 0) {
    ++counters_.append_failures;
    // The segment now ends in a torn record — exactly what replay's CRC
    // check skips. Roll on the next append rather than keep writing
    // after the tear.
    have_segment_ = false;
    return Status::Internal("SegmentLog: short write to '" + file_path_ +
                            "'");
  }
#ifdef __unix__
  if (options_.sync_each_append) ::fsync(fileno(file_));
#endif
  file_bytes_ += frame.size() + payload.size();
  ++counters_.appends;
  counters_.bytes_written += frame.size() + payload.size();
  return Status::Ok();
}

Status SegmentLog::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return Status::Ok();
  if (std::fflush(file_) != 0) {
    return Status::Internal("SegmentLog: flush failed for '" + file_path_ +
                            "'");
  }
#ifdef __unix__
  if (options_.sync_each_append) ::fsync(fileno(file_));
#endif
  return Status::Ok();
}

void SegmentLog::EnforceRetention() {
  if (options_.retain_windows == 0) return;
  // Collect the distinct window buckets present; keep the newest N.
  std::set<int64_t> buckets;
  std::vector<std::pair<std::string, int64_t>> segments;
  for (const std::string& name : ListSegments(options_.dir)) {
    uint64_t sequence = 0;
    int64_t bucket = 0;
    if (!ParseSegmentName(name, &sequence, &bucket)) continue;
    buckets.insert(bucket);
    segments.emplace_back(name, bucket);
  }
  if (buckets.size() <= options_.retain_windows) return;
  auto cutoff_it = buckets.end();
  for (size_t i = 0; i < options_.retain_windows; ++i) --cutoff_it;
  const int64_t cutoff = *cutoff_it;  // Oldest bucket retained.
  for (const auto& [name, bucket] : segments) {
    if (bucket >= cutoff) continue;
    std::error_code ec;
    const fs::path path = fs::path(options_.dir) / name;
    if (path.string() == file_path_) continue;  // Never the live segment.
    if (fs::remove(path, ec) && !ec) ++counters_.segments_deleted;
  }
}

LogCounters SegmentLog::Counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::vector<std::string> SegmentLog::ListSegments(const std::string& dir) {
  std::vector<std::string> names;
  std::error_code ec;
  fs::directory_iterator it(dir, ec);
  if (ec) return names;
  for (const fs::directory_entry& entry : it) {
    if (!entry.is_regular_file(ec) || ec) continue;
    const std::string name = entry.path().filename().string();
    uint64_t sequence = 0;
    int64_t bucket = 0;
    if (ParseSegmentName(name, &sequence, &bucket)) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

ReplayStats SegmentLog::Replay(
    const std::string& dir,
    const std::function<void(TenantVerdict&&)>& visit) {
  ReplayStats stats;
  for (const std::string& name : ListSegments(dir)) {
    ++stats.segments_scanned;
    const std::string path = (fs::path(dir) / name).string();
    std::FILE* file = std::fopen(path.c_str(), "rb");
    if (file == nullptr) {
      ++stats.records_dropped;
      continue;
    }
    // Records are replayed frame by frame; the first torn frame, absurd
    // length, or CRC mismatch abandons the rest of this segment (there
    // is no resync marker) and counts one drop.
    while (true) {
      unsigned char header[kFrameBytes];
      const size_t got = std::fread(header, 1, kFrameBytes, file);
      if (got == 0) break;  // Clean end of segment.
      if (got < kFrameBytes) {
        ++stats.records_dropped;  // Torn frame header.
        stats.bytes_scanned += got;
        break;
      }
      stats.bytes_scanned += kFrameBytes;
      uint32_t length = 0, crc = 0;
      for (int i = 0; i < 4; ++i) {
        length |= static_cast<uint32_t>(header[i]) << (8 * i);
        crc |= static_cast<uint32_t>(header[4 + i]) << (8 * i);
      }
      if (length > kMaxPayloadBytes) {
        ++stats.records_dropped;  // Corrupt length word.
        break;
      }
      std::string payload(length, '\0');
      const size_t read = length == 0 ? 0
                                      : std::fread(&payload[0], 1, length,
                                                   file);
      stats.bytes_scanned += read;
      if (read < length) {
        ++stats.records_dropped;  // Torn payload.
        break;
      }
      if (Crc32(payload.data(), payload.size()) != crc) {
        ++stats.records_dropped;  // Bit flip (or tear) inside the record.
        break;
      }
      Result<TenantVerdict> decoded = DecodeVerdict(payload);
      if (!decoded.ok()) {
        // CRC-valid but unparseable: a format from the future, or a
        // collision. Either way: skip this record, keep the segment —
        // framing is intact, later records are still addressable.
        ++stats.decode_failures;
        continue;
      }
      ++stats.records_replayed;
      if (visit) visit(std::move(decoded).value());
    }
    std::fclose(file);
  }
  return stats;
}

ReplayStats RecoverFromLog(const std::string& dir, FleetStore* store) {
  return SegmentLog::Replay(dir, [store](TenantVerdict&& verdict) {
    store->Publish(verdict);
  });
}

std::string LogCounters::Render() const {
  return StrFormat(
      "log: %llu appends (%llu failures), %llu bytes, %llu segments "
      "created, %llu deleted by retention\n",
      static_cast<unsigned long long>(appends),
      static_cast<unsigned long long>(append_failures),
      static_cast<unsigned long long>(bytes_written),
      static_cast<unsigned long long>(segments_created),
      static_cast<unsigned long long>(segments_deleted));
}

std::string LogCounters::ToJson() const {
  return StrFormat(
      "{\"appends\":%llu,\"append_failures\":%llu,\"bytes_written\":%llu,"
      "\"segments_created\":%llu,\"segments_deleted\":%llu}",
      static_cast<unsigned long long>(appends),
      static_cast<unsigned long long>(append_failures),
      static_cast<unsigned long long>(bytes_written),
      static_cast<unsigned long long>(segments_created),
      static_cast<unsigned long long>(segments_deleted));
}

std::string ReplayStats::Render() const {
  return StrFormat(
      "replay: %llu segments, %llu records restored, %llu dropped "
      "(torn/corrupt), %llu undecodable, %llu bytes\n",
      static_cast<unsigned long long>(segments_scanned),
      static_cast<unsigned long long>(records_replayed),
      static_cast<unsigned long long>(records_dropped),
      static_cast<unsigned long long>(decode_failures),
      static_cast<unsigned long long>(bytes_scanned));
}

std::string ReplayStats::ToJson() const {
  return StrFormat(
      "{\"segments_scanned\":%llu,\"records_replayed\":%llu,"
      "\"records_dropped\":%llu,\"decode_failures\":%llu,"
      "\"bytes_scanned\":%llu}",
      static_cast<unsigned long long>(segments_scanned),
      static_cast<unsigned long long>(records_replayed),
      static_cast<unsigned long long>(records_dropped),
      static_cast<unsigned long long>(decode_failures),
      static_cast<unsigned long long>(bytes_scanned));
}

}  // namespace diads::fleet
