#include "fleet/query.h"

#include <algorithm>
#include <map>
#include <set>

namespace diads::fleet {
namespace {

std::vector<std::string> SortedUnique(std::set<std::string> names) {
  return std::vector<std::string>(names.begin(), names.end());
}

// ConfidenceBand orders kHigh < kMedium < kLow, so "at or above min_band"
// is a <= on the underlying value.
bool AtLeast(diag::ConfidenceBand band, diag::ConfidenceBand min_band) {
  return static_cast<int>(band) <= static_cast<int>(min_band);
}

}  // namespace

std::vector<std::string> FleetQuery::TenantsSharingComponent(
    const std::string& component, std::optional<monitor::MetricId> metric,
    double min_score) const {
  store_->RecordQuery();
  std::set<std::string> tenants;
  store_->ForEachRow([&](const FleetKey& key, uint64_t,
                         const ComponentVerdict* verdict,
                         const TenantRecord*) {
    if (verdict == nullptr || key.component != component) return;
    // Some *scored* metric must clear the bar: a component row that only
    // exists because a cause named it (no Module DA metrics) never
    // matches, even at min_score <= 0 — same universe the brute-force
    // oracle (raw DA rows) draws from.
    for (const MetricVerdict& m : verdict->metrics) {
      if ((!metric.has_value() || m.metric == *metric) &&
          m.anomaly_score >= min_score) {
        tenants.insert(key.tenant);
        return;
      }
    }
  });
  return SortedUnique(std::move(tenants));
}

std::vector<std::string> FleetQuery::TenantsImplicating(
    const std::string& component, diag::ConfidenceBand min_band) const {
  store_->RecordQuery();
  std::set<std::string> tenants;
  store_->ForEachRow([&](const FleetKey& key, uint64_t,
                         const ComponentVerdict*,
                         const TenantRecord* record) {
    if (record == nullptr) return;
    for (const CauseVerdict& cause : record->causes) {
      if (cause.subject == component && AtLeast(cause.band, min_band)) {
        tenants.insert(key.tenant);
        return;
      }
    }
  });
  return SortedUnique(std::move(tenants));
}

std::vector<FleetQuery::ImplicatedComponent>
FleetQuery::TopImplicatedComponents(size_t k,
                                    diag::ConfidenceBand min_band) const {
  store_->RecordQuery();
  struct Aggregate {
    std::set<std::string> tenants;
    double max_confidence = 0;
  };
  std::map<std::string, Aggregate> by_component;
  store_->ForEachRow([&](const FleetKey& key, uint64_t,
                         const ComponentVerdict*,
                         const TenantRecord* record) {
    if (record == nullptr) return;
    for (const CauseVerdict& cause : record->causes) {
      if (cause.subject.empty() || !AtLeast(cause.band, min_band)) continue;
      Aggregate& agg = by_component[cause.subject];
      agg.tenants.insert(key.tenant);
      agg.max_confidence = std::max(agg.max_confidence, cause.confidence);
    }
  });
  std::vector<ImplicatedComponent> out;
  out.reserve(by_component.size());
  for (auto& [component, agg] : by_component) {
    ImplicatedComponent entry;
    entry.component = component;
    entry.tenants = static_cast<int>(agg.tenants.size());
    entry.max_confidence = agg.max_confidence;
    entry.tenant_names = SortedUnique(std::move(agg.tenants));
    out.push_back(std::move(entry));
  }
  std::sort(out.begin(), out.end(),
            [](const ImplicatedComponent& a, const ImplicatedComponent& b) {
              if (a.tenants != b.tenants) return a.tenants > b.tenants;
              if (a.max_confidence != b.max_confidence) {
                return a.max_confidence > b.max_confidence;
              }
              return a.component < b.component;
            });
  if (out.size() > k) out.resize(k);
  return out;
}

std::vector<FleetQuery::CauseCooccurrence>
FleetQuery::RootCauseCooccurrence() const {
  store_->RecordQuery();
  // Per tenant: the set of cause types reported across its windows.
  std::map<std::string, std::set<int>> types_of_tenant;
  store_->ForEachRow([&](const FleetKey& key, uint64_t,
                         const ComponentVerdict*,
                         const TenantRecord* record) {
    if (record == nullptr) return;
    for (const CauseVerdict& cause : record->causes) {
      types_of_tenant[key.tenant].insert(static_cast<int>(cause.type));
    }
  });
  std::map<std::pair<int, int>, int> pairs;
  for (const auto& [tenant, types] : types_of_tenant) {
    for (auto a = types.begin(); a != types.end(); ++a) {
      for (auto b = a; b != types.end(); ++b) {
        ++pairs[{*a, *b}];
      }
    }
  }
  std::vector<CauseCooccurrence> out;
  out.reserve(pairs.size());
  for (const auto& [pair, count] : pairs) {
    out.push_back(CauseCooccurrence{
        static_cast<diag::RootCauseType>(pair.first),
        static_cast<diag::RootCauseType>(pair.second), count});
  }
  return out;
}

}  // namespace diads::fleet
