#include "fleet/verdict.h"

#include <algorithm>
#include <map>
#include <set>

#include "san/topology.h"

namespace diads::fleet {
namespace {

int DistinctCount(const std::vector<uint64_t>& fingerprints) {
  std::set<uint64_t> distinct(fingerprints.begin(), fingerprints.end());
  return static_cast<int>(distinct.size());
}

}  // namespace

TenantVerdict ExtractVerdict(const diag::DiagnosisContext& ctx,
                             const diag::DiagnosisReport& report,
                             const std::string& tenant) {
  TenantVerdict out;
  out.tenant = tenant;
  out.query = ctx.query;
  const TimeInterval window = ctx.AnalysisWindow();
  out.window_begin = window.begin;
  out.window_end = window.end;

  const ComponentRegistry& registry = ctx.topology->registry();
  const monitor::TimeSeriesStore* authority = ctx.Authority();
  out.store_generation = authority->StoreGeneration();

  out.plan_diff.plans_differ = report.pd.plans_differ;
  out.plan_diff.satisfactory_plans =
      DistinctCount(report.pd.satisfactory_fingerprints);
  out.plan_diff.unsatisfactory_plans =
      DistinctCount(report.pd.unsatisfactory_fingerprints);
  out.plan_diff.candidates = static_cast<int>(report.pd.candidates.size());
  for (const diag::PlanChangeCandidate& candidate : report.pd.candidates) {
    if (candidate.could_explain.value_or(false)) {
      ++out.plan_diff.explaining_candidates;
    }
  }

  // Keyed by name so the merge below is deterministic regardless of the
  // tenant's registration order.
  std::map<std::string, ComponentVerdict> components;
  auto verdict_for = [&](ComponentId id) -> ComponentVerdict* {
    if (!registry.Contains(id)) return nullptr;
    const std::string& name = registry.NameOf(id);
    auto [it, inserted] = components.try_emplace(name);
    if (inserted) {
      it->second.component = name;
      it->second.kind = registry.KindOf(id);
      it->second.in_ccs = report.da.InCcs(id);
      it->second.generation = authority->ComponentGeneration(id);
    }
    return &it->second;
  };

  for (const diag::MetricAnomaly& anomaly : report.da.metrics) {
    ComponentVerdict* verdict = verdict_for(anomaly.component);
    if (verdict == nullptr) continue;
    verdict->max_anomaly = std::max(verdict->max_anomaly,
                                    anomaly.anomaly_score);
    // DaResult may score a (component, metric) pair more than once; keep
    // the strongest reading, as DaResult::Find does.
    auto it = std::find_if(
        verdict->metrics.begin(), verdict->metrics.end(),
        [&](const MetricVerdict& m) { return m.metric == anomaly.metric; });
    if (it == verdict->metrics.end()) {
      verdict->metrics.push_back(MetricVerdict{
          anomaly.metric, anomaly.anomaly_score, anomaly.correlation,
          anomaly.correlated});
    } else if (anomaly.anomaly_score > it->anomaly_score) {
      it->anomaly_score = anomaly.anomaly_score;
      it->correlation = anomaly.correlation;
      it->correlated = it->correlated || anomaly.correlated;
    } else {
      it->correlated = it->correlated || anomaly.correlated;
    }
  }

  out.causes.reserve(report.causes.size());
  for (const diag::RootCause& cause : report.causes) {
    CauseVerdict lowered;
    lowered.type = cause.type;
    lowered.confidence = cause.confidence;
    lowered.band = cause.band;
    lowered.impact_pct = cause.impact_pct.value_or(-1);
    if (ComponentVerdict* verdict = verdict_for(cause.subject)) {
      lowered.subject = verdict->component;
      verdict->cause_subject = true;
      verdict->best_cause_confidence =
          std::max(verdict->best_cause_confidence, cause.confidence);
      verdict->cause_types.push_back(cause.type);
    }
    out.causes.push_back(std::move(lowered));
  }

  out.components.reserve(components.size());
  for (auto& [name, verdict] : components) {
    std::sort(verdict.metrics.begin(), verdict.metrics.end(),
              [](const MetricVerdict& a, const MetricVerdict& b) {
                return a.metric < b.metric;
              });
    std::sort(verdict.cause_types.begin(), verdict.cause_types.end());
    verdict.cause_types.erase(
        std::unique(verdict.cause_types.begin(), verdict.cause_types.end()),
        verdict.cause_types.end());
    out.components.push_back(std::move(verdict));
  }
  return out;
}

}  // namespace diads::fleet
