// Cross-tenant root-cause queries over the fleet store.
//
// Every query here is answered purely from published verdicts — zero
// module re-execution, no tenant state touched — which is the point: a
// fleet operator triaging a shared-infrastructure incident ("is this SAN
// pool hurting anyone else?") gets the answer in microseconds instead of
// one full re-diagnosis per tenant. The property test asserts each answer
// is byte-equal to the brute-force aggregate over per-tenant
// re-diagnoses; bench_fleet_store measures the gap.
//
// Semantics shared by all queries:
//   * a tenant counts once no matter how many windows it has published;
//   * all result orderings are deterministic (documented per query), so
//     answers are directly comparable across runs and against the
//     brute-force oracle;
//   * each evaluation counts into the store's `queries` counter.
#ifndef DIADS_FLEET_QUERY_H_
#define DIADS_FLEET_QUERY_H_

#include <optional>
#include <string>
#include <vector>

#include "fleet/store.h"

namespace diads::fleet {

class FleetQuery {
 public:
  /// `store` must outlive the query object.
  explicit FleetQuery(const FleetStore* store) : store_(store) {}

  /// Tenants whose published verdict for `component` shows a Module-DA-
  /// scored metric `metric` (any metric when nullopt) with an anomaly
  /// score at or above `min_score` — "who else shares this contended
  /// pool?". Components that were only named by a cause (never scored)
  /// do not match at any threshold. Sorted by tenant name, deduped.
  std::vector<std::string> TenantsSharingComponent(
      const std::string& component,
      std::optional<monitor::MetricId> metric = std::nullopt,
      double min_score = 0.8) const;

  /// Tenants whose diagnosis reported a root cause naming `component` at
  /// or above `min_band` (kHigh restricts to high-confidence causes; the
  /// kLow default accepts any reported cause). Sorted by tenant name,
  /// deduped.
  std::vector<std::string> TenantsImplicating(
      const std::string& component,
      diag::ConfidenceBand min_band = diag::ConfidenceBand::kLow) const;

  struct ImplicatedComponent {
    std::string component;
    int tenants = 0;          ///< Distinct tenants implicating it.
    double max_confidence = 0;
    std::vector<std::string> tenant_names;  ///< Sorted.
  };
  /// The top-K components by number of implicated tenants (a tenant
  /// implicates a component when a reported cause at or above `min_band`
  /// names it). Ordered by tenant count desc, then max confidence desc,
  /// then name asc.
  std::vector<ImplicatedComponent> TopImplicatedComponents(
      size_t k,
      diag::ConfidenceBand min_band = diag::ConfidenceBand::kLow) const;

  struct CauseCooccurrence {
    diag::RootCauseType a;  ///< a <= b; a == b rows are per-type counts.
    diag::RootCauseType b;
    int tenants = 0;  ///< Tenants whose diagnosis reported both types.
  };
  /// Root-cause co-occurrence across the fleet: for every unordered pair
  /// of reported cause types (including the diagonal), how many tenants
  /// reported both. Only non-zero rows, ordered by (a, b).
  std::vector<CauseCooccurrence> RootCauseCooccurrence() const;

 private:
  const FleetStore* store_;
};

}  // namespace diads::fleet

#endif  // DIADS_FLEET_QUERY_H_
