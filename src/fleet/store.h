// Fleet-wide sharded store of per-tenant diagnosis verdicts.
//
// The diagnosis engine answers one tenant's question and throws the
// module-level conclusions away; only the report survives, inside a cache
// keyed by the exact question. Fleet operations ask *cross-tenant*
// questions — "which tenants share this contended pool?", "which component
// implicates the most tenants right now?" — and without a shared store
// each answer costs one full re-diagnosis per tenant (the RCRank-style
// fleet regime). The FleetStore keeps every completed diagnosis's verdict
// queryable instead:
//
//   * entries are keyed (tenant, component, window) — one row per
//     component the diagnosis scored or implicated, plus one tenant-level
//     row (component "") holding the ranked causes and plan-diff summary;
//   * the key space is sharded by a splitmix64-finalized hash (the
//     SeriesKeyHash recipe), each shard owning its own mutex and map, so
//     engine workers publishing different tenants rarely contend;
//   * staleness is generation-based, not TTL-based: every entry carries
//     the TimeSeriesStore append generation it was derived from
//     (per-component for component rows, store-wide for the tenant row).
//     A publish carrying an older generation than the stored entry is
//     refused (monotone visibility: readers never see a verdict go
//     backwards in time), an equal-or-newer one supersedes, and explicit
//     invalidation drops a tenant's (or one component's) rows the moment
//     new monitoring data makes them stale;
//   * everything is counted (publishes, upserts, supersedes, stale drops,
//     invalidations, queries, per-shard publish distribution) — the
//     EngineStats-style block a fleet dashboard watches.
//
// Thread-safety: all methods are safe to call concurrently. Stored
// verdicts are immutable once published (shared_ptr<const ...>), so
// snapshots hand them to any number of readers without copying.
#ifndef DIADS_FLEET_STORE_H_
#define DIADS_FLEET_STORE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "fleet/verdict.h"

namespace diads::fleet {

class SegmentLog;  // fleet/log.h

/// Identity of one stored row. component == "" is the tenant-level
/// diagnosis row (ranked causes + plan diff) for that window.
struct FleetKey {
  std::string tenant;
  std::string component;
  SimTimeMs window_begin = 0;
  SimTimeMs window_end = 0;

  friend bool operator==(const FleetKey& a, const FleetKey& b) {
    return a.window_begin == b.window_begin && a.window_end == b.window_end &&
           a.tenant == b.tenant && a.component == b.component;
  }
};

/// FNV-1a over the strings folded with the window words, finished with the
/// splitmix64 avalanche — the SeriesKeyHash recipe, so shard assignment
/// stays uniform even though tenant names share long common prefixes
/// ("t00-S1-...", "t01-S1-...").
struct FleetKeyHash {
  size_t operator()(const FleetKey& key) const noexcept;
};

/// The tenant-level row stored under component "".
struct TenantRecord {
  std::string query;
  PlanDiffSummary plan_diff;
  std::vector<CauseVerdict> causes;  ///< Ranked as reported.
  /// The publishing diagnosis's cost profile (null when the verdict was
  /// extracted outside the serving path) — lets fleet queries answer
  /// "which tenants' diagnoses are slow, and why" from stored rows.
  std::shared_ptr<const obs::CostProfile> cost;
  /// The detected incident the diagnosis answered (null for
  /// administrator-driven publishes) — lets fleet queries tell
  /// auto-triggered verdicts apart and read their detection provenance.
  std::shared_ptr<const IncidentStamp> incident;
};

class FleetStore {
 public:
  struct Options {
    int shards = 16;
  };

  /// The fleet store's counters block. Per-row accounting is exact:
  /// every row touched by a Publish ends up in exactly one of
  /// rows_inserted / rows_superseded / rows_stale_dropped, and the live
  /// row count is rows_inserted - invalidations at all times.
  struct Counters {
    uint64_t publishes = 0;          ///< Publish() calls.
    uint64_t rows_inserted = 0;      ///< New (tenant, component, window) rows.
    uint64_t rows_superseded = 0;    ///< Existing rows replaced (gen >=).
    uint64_t rows_stale_dropped = 0; ///< Publishes refused (older gen).
    uint64_t invalidations = 0;      ///< Rows erased by Invalidate*/DropStale.
    uint64_t queries = 0;            ///< FleetQuery evaluations.
    size_t entries = 0;              ///< Live rows across shards.

    std::string Render() const;  ///< Human-readable one-liner block.
    std::string ToJson() const;  ///< One-line JSON object.
  };

  FleetStore();  ///< Default Options.
  explicit FleetStore(Options options);

  FleetStore(const FleetStore&) = delete;
  FleetStore& operator=(const FleetStore&) = delete;

  /// Publishes one completed diagnosis: one row per component verdict
  /// (stamped with that component's generation) plus the tenant-level row
  /// (stamped with the store-wide generation). Per row, a stored entry
  /// with a newer generation wins — the publish of a stale verdict is
  /// dropped, never served.
  void Publish(const TenantVerdict& verdict);

  /// Durability hook: while attached, every Publish is also appended to
  /// the segment log (after the in-memory upserts; append failures are
  /// counted by the log, the store stays usable). Not owned — detach (or
  /// destroy the store) before dropping the log. Attach AFTER
  /// RecoverFromLog has replayed: an attached log re-appends every
  /// publish, including replayed ones.
  void AttachLog(SegmentLog* log);
  void DetachLog();

  /// One live row. Exactly one of `component` / `record` is set.
  struct Row {
    FleetKey key;
    uint64_t generation = 0;
    std::shared_ptr<const ComponentVerdict> component;
    std::shared_ptr<const TenantRecord> record;
  };

  /// Copies of all live rows (cheap: shared_ptr handles). Shards are
  /// snapshotted one at a time; a concurrent publish may appear in some
  /// shards and not others, but each row is internally consistent.
  std::vector<Row> Snapshot() const;

  /// Zero-copy row traversal: visits every live row under its shard's
  /// lock (same per-shard consistency as Snapshot, no key/handle
  /// copies) — the query layer's scan primitive. The visitor must not
  /// call back into the store and must not retain the references past
  /// the call.
  void ForEachRow(
      const std::function<void(const FleetKey&, uint64_t generation,
                               const ComponentVerdict* component,
                               const TenantRecord* record)>& visit) const;

  /// The live row for `key`, or an empty Row (generation 0, both
  /// pointers null) when absent.
  Row Get(const FleetKey& key) const;

  /// Drops every row of a tenant / of one tenant component (all windows).
  /// Returns the number of rows erased. Component-level invalidation also
  /// drops the tenant-level rows: the diagnosis record that produced the
  /// invalidated verdict is equally suspect, and its absence is what the
  /// engine's cache-hit repopulation check keys on — so the tenant
  /// reappears in fleet queries on the very next response.
  size_t InvalidateTenant(const std::string& tenant);
  size_t InvalidateComponent(const std::string& tenant,
                             const std::string& component);

  /// Drops a tenant component's rows whose generation is older than
  /// `current_generation` (TimeSeriesStore::ComponentGeneration of the
  /// tenant's live store) — generation-driven staleness without a TTL.
  /// When anything is dropped, the tenant-level rows go with it (see
  /// InvalidateComponent).
  size_t DropStale(const std::string& tenant, const std::string& component,
                   uint64_t current_generation);

  /// Counts one cross-tenant query (called by FleetQuery).
  void RecordQuery() const {
    queries_.fetch_add(1, std::memory_order_relaxed);
  }

  Counters TotalCounters() const;

  /// Publishes routed to each shard, in shard order — the shard hit
  /// distribution a rebalance decision looks at.
  std::vector<uint64_t> ShardPublishCounts() const;

  /// Drops every row; the drops count as invalidations (the exact-
  /// accounting invariant on Counters keeps holding).
  void Clear();

  int shard_count() const { return static_cast<int>(shards_.size()); }

 private:
  struct Entry {
    uint64_t generation = 0;
    std::shared_ptr<const ComponentVerdict> component;
    std::shared_ptr<const TenantRecord> record;
  };
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<FleetKey, Entry, FleetKeyHash> rows;
    uint64_t publishes = 0;
    uint64_t inserted = 0, superseded = 0, stale_dropped = 0;
    uint64_t invalidations = 0;
  };

  Shard& ShardFor(const FleetKey& key);
  const Shard& ShardFor(const FleetKey& key) const;
  void Upsert(FleetKey key, uint64_t generation,
              std::shared_ptr<const ComponentVerdict> component,
              std::shared_ptr<const TenantRecord> record);
  template <typename Pred>
  size_t EraseIf(Pred pred);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> publishes_{0};
  mutable std::atomic<uint64_t> queries_{0};
  /// Attached durability log (null = in-memory only). Atomic so Publish
  /// reads it without a lock; the log serializes its own appends.
  std::atomic<SegmentLog*> log_{nullptr};
};

}  // namespace diads::fleet

#endif  // DIADS_FLEET_STORE_H_
