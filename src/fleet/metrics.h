// FleetStore -> unified metrics registry bridge (the fleet-side sibling
// of engine/metrics_export.h). Scrape-time source over
// FleetStore::TotalCounters — nothing new is counted, the store's exact
// per-row accounting just becomes scrapeable.
#ifndef DIADS_FLEET_METRICS_H_
#define DIADS_FLEET_METRICS_H_

#include "fleet/store.h"
#include "obs/metrics.h"

namespace diads::fleet {

/// Registers a scrape-time source for `store`'s counters. The store must
/// outlive the registry's last Collect/Render call.
void RegisterFleetStoreMetrics(obs::MetricsRegistry* registry,
                               const FleetStore* store,
                               obs::Labels labels = {});

/// The lowering itself (shared with tests).
void EmitFleetStoreCounters(const FleetStore::Counters& counters,
                            const obs::Labels& labels,
                            obs::MetricsEmitter& emitter);

}  // namespace diads::fleet

#endif  // DIADS_FLEET_METRICS_H_
