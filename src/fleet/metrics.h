// FleetStore -> unified metrics registry bridge (the fleet-side sibling
// of engine/metrics_export.h). Scrape-time source over
// FleetStore::TotalCounters — nothing new is counted, the store's exact
// per-row accounting just becomes scrapeable.
#ifndef DIADS_FLEET_METRICS_H_
#define DIADS_FLEET_METRICS_H_

#include "fleet/log.h"
#include "fleet/store.h"
#include "obs/metrics.h"

namespace diads::fleet {

/// Registers a scrape-time source for `store`'s counters. The store must
/// outlive the registry's last Collect/Render call.
void RegisterFleetStoreMetrics(obs::MetricsRegistry* registry,
                               const FleetStore* store,
                               obs::Labels labels = {});

/// The lowering itself (shared with tests).
void EmitFleetStoreCounters(const FleetStore::Counters& counters,
                            const obs::Labels& labels,
                            obs::MetricsEmitter& emitter);

/// Same bridge for the durability log's write-side counters (and, when a
/// recovery ran, the replay outcome as one-shot constants).
void RegisterFleetLogMetrics(obs::MetricsRegistry* registry,
                             const SegmentLog* log, obs::Labels labels = {});

void EmitFleetLogCounters(const LogCounters& counters,
                          const obs::Labels& labels,
                          obs::MetricsEmitter& emitter);

void EmitReplayStats(const ReplayStats& stats, const obs::Labels& labels,
                     obs::MetricsEmitter& emitter);

}  // namespace diads::fleet

#endif  // DIADS_FLEET_METRICS_H_
