#include "fleet/store.h"

#include <algorithm>
#include <utility>

#include "common/strings.h"
#include "fleet/log.h"

namespace diads::fleet {

size_t FleetKeyHash::operator()(const FleetKey& key) const noexcept {
  uint64_t h = kFnv1a64OffsetBasis;
  h = Fnv1a64Fold(h, key.tenant);
  h = Fnv1a64Fold(h, key.component);
  h = Fnv1a64FoldWord(h, static_cast<uint64_t>(key.window_begin));
  h = Fnv1a64FoldWord(h, static_cast<uint64_t>(key.window_end));
  return static_cast<size_t>(SplitMix64Finish(h));
}

FleetStore::FleetStore() : FleetStore(Options{}) {}

FleetStore::FleetStore(Options options) {
  const int shards = std::max(1, options.shards);
  shards_.reserve(static_cast<size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

FleetStore::Shard& FleetStore::ShardFor(const FleetKey& key) {
  return *shards_[FleetKeyHash()(key) % shards_.size()];
}

const FleetStore::Shard& FleetStore::ShardFor(const FleetKey& key) const {
  return *shards_[FleetKeyHash()(key) % shards_.size()];
}

void FleetStore::Upsert(FleetKey key, uint64_t generation,
                        std::shared_ptr<const ComponentVerdict> component,
                        std::shared_ptr<const TenantRecord> record) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.publishes;
  auto it = shard.rows.find(key);
  if (it == shard.rows.end()) {
    shard.rows.emplace(
        std::move(key),
        Entry{generation, std::move(component), std::move(record)});
    ++shard.inserted;
    return;
  }
  if (it->second.generation > generation) {
    // The store already holds a verdict derived from newer data; dropping
    // this publish is what keeps reader-visible generations monotone.
    ++shard.stale_dropped;
    return;
  }
  it->second = Entry{generation, std::move(component), std::move(record)};
  ++shard.superseded;
}

void FleetStore::Publish(const TenantVerdict& verdict) {
  publishes_.fetch_add(1, std::memory_order_relaxed);
  Upsert(FleetKey{verdict.tenant, "", verdict.window_begin,
                  verdict.window_end},
         verdict.store_generation, nullptr,
         std::make_shared<const TenantRecord>(TenantRecord{
             verdict.query, verdict.plan_diff, verdict.causes,
             verdict.cost, verdict.incident}));
  for (const ComponentVerdict& component : verdict.components) {
    Upsert(FleetKey{verdict.tenant, component.component,
                    verdict.window_begin, verdict.window_end},
           component.generation,
           std::make_shared<const ComponentVerdict>(component), nullptr);
  }
  // Durability last: the in-memory rows are live either way, and the log
  // counts its own append failures.
  if (SegmentLog* log = log_.load(std::memory_order_acquire)) {
    (void)log->Append(verdict);
  }
}

void FleetStore::AttachLog(SegmentLog* log) {
  log_.store(log, std::memory_order_release);
}

void FleetStore::DetachLog() {
  log_.store(nullptr, std::memory_order_release);
}

std::vector<FleetStore::Row> FleetStore::Snapshot() const {
  std::vector<Row> out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->rows.size());
    for (const auto& [key, entry] : shard->rows) {
      out.push_back(Row{key, entry.generation, entry.component,
                        entry.record});
    }
  }
  return out;
}

void FleetStore::ForEachRow(
    const std::function<void(const FleetKey&, uint64_t,
                             const ComponentVerdict*, const TenantRecord*)>&
        visit) const {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [key, entry] : shard->rows) {
      visit(key, entry.generation, entry.component.get(),
            entry.record.get());
    }
  }
}

FleetStore::Row FleetStore::Get(const FleetKey& key) const {
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.rows.find(key);
  if (it == shard.rows.end()) return Row{};
  return Row{key, it->second.generation, it->second.component,
             it->second.record};
}

template <typename Pred>
size_t FleetStore::EraseIf(Pred pred) {
  size_t erased = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto it = shard->rows.begin(); it != shard->rows.end();) {
      if (pred(it->first, it->second)) {
        it = shard->rows.erase(it);
        ++shard->invalidations;
        ++erased;
      } else {
        ++it;
      }
    }
  }
  return erased;
}

size_t FleetStore::InvalidateTenant(const std::string& tenant) {
  return EraseIf([&](const FleetKey& key, const Entry&) {
    return key.tenant == tenant;
  });
}

size_t FleetStore::InvalidateComponent(const std::string& tenant,
                                       const std::string& component) {
  // Also drop the tenant-level rows: a diagnosis whose component verdict
  // is being invalidated is equally suspect, and the missing tenant row
  // is what tells the engine's cache-hit repopulation check that this
  // tenant needs republishing (a component row alone would go unnoticed
  // while the result cache keeps hitting).
  return EraseIf([&](const FleetKey& key, const Entry&) {
    return key.tenant == tenant &&
           (key.component == component || key.component.empty());
  });
}

size_t FleetStore::DropStale(const std::string& tenant,
                             const std::string& component,
                             uint64_t current_generation) {
  const size_t dropped = EraseIf([&](const FleetKey& key,
                                     const Entry& entry) {
    return key.tenant == tenant && key.component == component &&
           entry.generation < current_generation;
  });
  if (dropped == 0) return 0;
  // Same reasoning as InvalidateComponent: stale component rows mean the
  // tenant's diagnosis records predate the data too — dropping them lets
  // the next engine response (cache hit or compute) republish everything.
  return dropped + EraseIf([&](const FleetKey& key, const Entry&) {
    return key.tenant == tenant && key.component.empty();
  });
}

FleetStore::Counters FleetStore::TotalCounters() const {
  Counters out;
  out.publishes = publishes_.load(std::memory_order_relaxed);
  out.queries = queries_.load(std::memory_order_relaxed);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.rows_inserted += shard->inserted;
    out.rows_superseded += shard->superseded;
    out.rows_stale_dropped += shard->stale_dropped;
    out.invalidations += shard->invalidations;
    out.entries += shard->rows.size();
  }
  return out;
}

std::vector<uint64_t> FleetStore::ShardPublishCounts() const {
  std::vector<uint64_t> out;
  out.reserve(shards_.size());
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.push_back(shard->publishes);
  }
  return out;
}

void FleetStore::Clear() {
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    // Cleared rows count as invalidations so the exact-accounting
    // invariant (entries == rows_inserted - invalidations) survives.
    shard->invalidations += shard->rows.size();
    shard->rows.clear();
  }
}

std::string FleetStore::Counters::Render() const {
  return StrFormat(
      "fleet:  %llu publishes (%llu rows inserted, %llu superseded, "
      "%llu stale-dropped), %llu invalidations, %llu queries, %zu live "
      "rows\n",
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(rows_inserted),
      static_cast<unsigned long long>(rows_superseded),
      static_cast<unsigned long long>(rows_stale_dropped),
      static_cast<unsigned long long>(invalidations),
      static_cast<unsigned long long>(queries), entries);
}

std::string FleetStore::Counters::ToJson() const {
  return StrFormat(
      "{\"publishes\":%llu,\"rows_inserted\":%llu,\"rows_superseded\":%llu,"
      "\"rows_stale_dropped\":%llu,\"invalidations\":%llu,\"queries\":%llu,"
      "\"entries\":%zu}",
      static_cast<unsigned long long>(publishes),
      static_cast<unsigned long long>(rows_inserted),
      static_cast<unsigned long long>(rows_superseded),
      static_cast<unsigned long long>(rows_stale_dropped),
      static_cast<unsigned long long>(invalidations),
      static_cast<unsigned long long>(queries), entries);
}

}  // namespace diads::fleet
