// Compact, storable form of one tenant's diagnosis verdict.
//
// A DiagnosisReport is per-diagnosis and borrows nothing, but it speaks in
// the tenant's local vocabulary: ComponentIds that index the tenant's own
// registry. A fleet store joining verdicts *across* tenants needs a
// vocabulary that survives the tenant boundary, so ExtractVerdict lowers a
// report into registry *names* ("V1", "P1", "postgres@dbserver") — the
// deterministic infrastructure naming every Figure-1 testbed shares — plus
// the decision-relevant numbers a cross-tenant query consumes:
//
//   * per component: the Module DA symptom truth assignments (which
//     metrics scored anomalous, with what score and correlation), CCS
//     membership, and whether a reported root cause named the component;
//   * per diagnosis: the ranked root causes (type, subject, confidence,
//     band, impact) and a Module PD plan-diff summary.
//
// Each extracted component verdict is stamped with the authoritative
// store's per-component append generation (and the whole verdict with the
// store-wide generation), so the fleet store can drop stale entries the
// moment new monitoring data arrives — the same counters the baseline
// model cache invalidates on, no TTLs involved.
#ifndef DIADS_FLEET_VERDICT_H_
#define DIADS_FLEET_VERDICT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "diads/diagnosis.h"

namespace diads::fleet {

/// One Module DA truth assignment: did this metric look anomalous, and did
/// it correlate with a COS operator's running time?
struct MetricVerdict {
  monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  double anomaly_score = 0;
  double correlation = 0;
  bool correlated = false;  ///< Passed both DA thresholds.
};

/// Everything one diagnosis concluded about one component.
struct ComponentVerdict {
  std::string component;  ///< Registry name — the cross-tenant join key.
  ComponentKind kind = ComponentKind::kVolume;
  bool in_ccs = false;     ///< Member of the correlated component set.
  double max_anomaly = 0;  ///< Highest anomaly score across metrics.
  std::vector<MetricVerdict> metrics;  ///< Sorted by metric id.
  bool cause_subject = false;  ///< A reported root cause named it.
  double best_cause_confidence = 0;
  std::vector<diag::RootCauseType> cause_types;  ///< Sorted, deduped.
  /// TimeSeriesStore::ComponentGeneration of the authoritative store at
  /// extraction time — the fleet store's staleness stamp for this entry.
  uint64_t generation = 0;
};

/// One ranked root cause, lowered to names.
struct CauseVerdict {
  diag::RootCauseType type = diag::RootCauseType::kExternalWorkloadContention;
  std::string subject;  ///< Registry name; "" when the cause names none.
  double confidence = 0;
  diag::ConfidenceBand band = diag::ConfidenceBand::kLow;
  double impact_pct = -1;  ///< Negative when Module IA did not assess it.
};

/// Module PD, summarized.
struct PlanDiffSummary {
  bool plans_differ = false;
  int satisfactory_plans = 0;    ///< Distinct fingerprints.
  int unsatisfactory_plans = 0;
  int candidates = 0;            ///< Plan-affecting events considered.
  int explaining_candidates = 0; ///< could_explain == true.
};

/// Provenance of an auto-submitted diagnosis: which detected incident
/// asked the question. Attached by the engine when a DiagnosisRequest
/// carries one (the SlowdownDetector's auto-submit path) and stamped onto
/// the published TenantVerdict. Observability metadata only — verdict
/// content and digests never read it, so an auto-triggered diagnosis is
/// byte-identical to the same question asked by an administrator.
struct IncidentStamp {
  /// Detector-wide monotone incident number — the "fresh generation
  /// stamp" distinguishing a re-crossing from a still-active incident.
  uint64_t sequence = 0;
  /// Registry name of the component whose series confirmed ("" when the
  /// detector could not resolve one).
  std::string subject;
  monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  SimTimeMs onset_time = 0;      ///< First crossing sample of the streak.
  SimTimeMs confirmed_time = 0;  ///< Sample that confirmed the incident.
};

/// One completed diagnosis, ready for the fleet store.
struct TenantVerdict {
  std::string tenant;  ///< The engine request tag.
  std::string query;
  SimTimeMs window_begin = 0;  ///< The diagnosis (analysis) window.
  SimTimeMs window_end = 0;
  /// TimeSeriesStore::StoreGeneration at extraction time.
  uint64_t store_generation = 0;
  PlanDiffSummary plan_diff;
  std::vector<CauseVerdict> causes;           ///< Ranked as reported.
  std::vector<ComponentVerdict> components;   ///< Sorted by name.
  /// What the diagnosis *cost* (set by the engine just before publish;
  /// null for verdicts extracted outside the serving path). Observability
  /// metadata only — verdict content and digests never read it.
  std::shared_ptr<const obs::CostProfile> cost;
  /// The detected incident this diagnosis answered (set by the engine for
  /// auto-submitted requests; null for administrator-driven ones). Same
  /// metadata-only contract as `cost`.
  std::shared_ptr<const IncidentStamp> incident;
};

/// Lowers a finished diagnosis into its storable verdict. Component names
/// come from the context's registry (via the SAN topology); generation
/// stamps come from the context's authoritative store (model_authority
/// when set, else the store itself — the same authority the model cache
/// keys on). Components named by a cause but never scored by Module DA
/// (tables, pools) still get a verdict entry, so implicated-set queries
/// see them.
TenantVerdict ExtractVerdict(const diag::DiagnosisContext& ctx,
                             const diag::DiagnosisReport& report,
                             const std::string& tenant);

}  // namespace diads::fleet

#endif  // DIADS_FLEET_VERDICT_H_
