#include "fleet/metrics.h"

namespace diads::fleet {

void EmitFleetStoreCounters(const FleetStore::Counters& counters,
                            const obs::Labels& labels,
                            obs::MetricsEmitter& emitter) {
  emitter.Counter("diads_fleet_publishes_total", "Publish() calls", labels,
                  counters.publishes);
  emitter.Counter("diads_fleet_rows_inserted_total",
                  "New (tenant, component, window) rows", labels,
                  counters.rows_inserted);
  emitter.Counter("diads_fleet_rows_superseded_total",
                  "Rows replaced by an equal-or-newer generation", labels,
                  counters.rows_superseded);
  emitter.Counter("diads_fleet_rows_stale_dropped_total",
                  "Publishes refused for carrying an older generation",
                  labels, counters.rows_stale_dropped);
  emitter.Counter("diads_fleet_invalidations_total",
                  "Rows erased by Invalidate*/DropStale", labels,
                  counters.invalidations);
  emitter.Counter("diads_fleet_queries_total",
                  "Cross-tenant query evaluations", labels,
                  counters.queries);
  emitter.Gauge("diads_fleet_entries", "Live rows across shards", labels,
                static_cast<double>(counters.entries));
}

void RegisterFleetStoreMetrics(obs::MetricsRegistry* registry,
                               const FleetStore* store, obs::Labels labels) {
  registry->AddSource(
      [store, labels = std::move(labels)](obs::MetricsEmitter& emitter) {
        EmitFleetStoreCounters(store->TotalCounters(), labels, emitter);
      });
}

}  // namespace diads::fleet
