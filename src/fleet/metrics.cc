#include "fleet/metrics.h"

namespace diads::fleet {

void EmitFleetStoreCounters(const FleetStore::Counters& counters,
                            const obs::Labels& labels,
                            obs::MetricsEmitter& emitter) {
  emitter.Counter("diads_fleet_publishes_total", "Publish() calls", labels,
                  counters.publishes);
  emitter.Counter("diads_fleet_rows_inserted_total",
                  "New (tenant, component, window) rows", labels,
                  counters.rows_inserted);
  emitter.Counter("diads_fleet_rows_superseded_total",
                  "Rows replaced by an equal-or-newer generation", labels,
                  counters.rows_superseded);
  emitter.Counter("diads_fleet_rows_stale_dropped_total",
                  "Publishes refused for carrying an older generation",
                  labels, counters.rows_stale_dropped);
  emitter.Counter("diads_fleet_invalidations_total",
                  "Rows erased by Invalidate*/DropStale", labels,
                  counters.invalidations);
  emitter.Counter("diads_fleet_queries_total",
                  "Cross-tenant query evaluations", labels,
                  counters.queries);
  emitter.Gauge("diads_fleet_entries", "Live rows across shards", labels,
                static_cast<double>(counters.entries));
}

void RegisterFleetStoreMetrics(obs::MetricsRegistry* registry,
                               const FleetStore* store, obs::Labels labels) {
  registry->AddSource(
      [store, labels = std::move(labels)](obs::MetricsEmitter& emitter) {
        EmitFleetStoreCounters(store->TotalCounters(), labels, emitter);
      });
}

void EmitFleetLogCounters(const LogCounters& counters,
                          const obs::Labels& labels,
                          obs::MetricsEmitter& emitter) {
  emitter.Counter("diads_fleet_log_appends_total",
                  "Verdict records appended to the segment log", labels,
                  counters.appends);
  emitter.Counter("diads_fleet_log_append_failures_total",
                  "Appends lost to I/O errors (record not durable)", labels,
                  counters.append_failures);
  emitter.Counter("diads_fleet_log_bytes_written_total",
                  "Frame + payload bytes appended", labels,
                  counters.bytes_written);
  emitter.Counter("diads_fleet_log_segments_created_total",
                  "Segment files opened", labels, counters.segments_created);
  emitter.Counter("diads_fleet_log_segments_deleted_total",
                  "Segment files removed by window retention", labels,
                  counters.segments_deleted);
}

void EmitReplayStats(const ReplayStats& stats, const obs::Labels& labels,
                     obs::MetricsEmitter& emitter) {
  emitter.Counter("diads_fleet_replay_segments_scanned_total",
                  "Segments scanned during recovery", labels,
                  stats.segments_scanned);
  emitter.Counter("diads_fleet_replay_records_total",
                  "Verdict records restored during recovery", labels,
                  stats.records_replayed);
  emitter.Counter("diads_fleet_replay_records_dropped_total",
                  "Torn or corrupt record suffixes abandoned", labels,
                  stats.records_dropped);
  emitter.Counter("diads_fleet_replay_decode_failures_total",
                  "CRC-valid but unparseable records skipped", labels,
                  stats.decode_failures);
  emitter.Counter("diads_fleet_replay_bytes_scanned_total",
                  "Bytes scanned during recovery", labels,
                  stats.bytes_scanned);
}

void RegisterFleetLogMetrics(obs::MetricsRegistry* registry,
                             const SegmentLog* log, obs::Labels labels) {
  registry->AddSource(
      [log, labels = std::move(labels)](obs::MetricsEmitter& emitter) {
        EmitFleetLogCounters(log->Counters(), labels, emitter);
      });
}

}  // namespace diads::fleet
