// Fleet request generation: many tenants asking DIADS the same question.
//
// The serving-layer experiments need a realistic request stream, not one
// scenario run once. A FleetWorkload instantiates N independent tenants —
// each a full Figure-1 testbed running one of the Table-1 scenarios with
// its own seed — and derives a shuffled stream of DiagnosisRequests over
// them, with repeats: dashboards and retries re-ask the same
// (query, window) question, which is what the engine's result cache and
// request coalescing exist for.
//
// Ownership: the FleetWorkload owns every tenant's state; the generated
// requests borrow from it, so keep the FleetWorkload alive until all
// futures resolve. Each tenant contributes exactly one diagnosis identity
// (query Q2 over its incident window), so with request coalescing enabled
// the engine never diagnoses one tenant's testbed from two workers at
// once — which also keeps deployment-supplied what-if probes (that
// temporarily mutate the tenant's catalog) race-free.
#ifndef DIADS_WORKLOAD_FLEET_H_
#define DIADS_WORKLOAD_FLEET_H_

#include <memory>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "workload/scenario.h"

namespace diads::workload {

struct FleetOptions {
  /// Scenario mix; tenants round-robin over it. Default: the five Table-1
  /// settings (S1-S5).
  std::vector<ScenarioId> scenarios;
  int tenants = 5;
  /// Requests generated per tenant; the first computes, the rest exercise
  /// the cache / coalescing path.
  int requests_per_tenant = 4;
  uint64_t seed = 42;
  /// Per-tenant scenario sizing (seed is overridden per tenant).
  ScenarioOptions scenario_options;
  /// Interleave the request stream across tenants (as concurrent
  /// administrators would); false keeps per-tenant bursts.
  bool shuffle = true;
};

/// One simulated tenant: a scenario run end to end, plus its answer key.
struct FleetTenant {
  std::string name;           ///< "t03-S4-concurrent-db-san".
  ScenarioId scenario;
  std::unique_ptr<ScenarioOutput> output;
};

struct FleetWorkload {
  std::vector<FleetTenant> tenants;
  /// The request stream, borrowing from `tenants`. request.tag names the
  /// tenant, so distinct tenants never share cache entries.
  std::vector<engine::DiagnosisRequest> requests;
  /// tenant index behind each request (verification: which serial report
  /// must the engine's response match).
  std::vector<size_t> tenant_of_request;
};

/// Builds the tenants (running each scenario end to end) and the request
/// stream. Errors if any scenario fails to run.
Result<FleetWorkload> BuildFleet(const FleetOptions& options);

/// A fleet stressed by shared infrastructure: `faulted_tenants` tenants
/// run the same infrastructure-fault scenario (S9 CPU saturation, S10
/// RAID rebuild, S11 disk failure — each tenant's copy of the shared
/// pool/server template takes the same hit, the way one SAN incident
/// surfaces in every tenant it backs), while `background_tenants` tenants
/// run an unrelated database-side scenario and must NOT be implicated by
/// the shared fault. This is the population the fleet store's
/// cross-tenant implicated-set queries are verified against.
struct SharedFaultFleetOptions {
  ScenarioId fault_scenario = ScenarioId::kS10RaidRebuild;
  ScenarioId background_scenario = ScenarioId::kS3DataPropertyChange;
  int faulted_tenants = 2;
  int background_tenants = 2;
  db::BackendKind backend = db::BackendKind::kPostgres;
  uint64_t seed = 42;
  /// Per-tenant sizing; seed and testbed.backend are overridden per the
  /// fields above. Tenant 0 (faulted) runs with seed == `seed` exactly,
  /// so at the defaults its diagnosis digest matches the checked-in
  /// conformance golden for (fault_scenario, backend).
  ScenarioOptions scenario_options;
};

/// Builds the shared-fault fleet: faulted tenants first (t00..), then the
/// background tenants, one request per tenant, in tenant order.
Result<FleetWorkload> BuildSharedFaultFleet(
    const SharedFaultFleetOptions& options);

/// An adversarial serving mix: one tenant floods the engine with a burst
/// of requests while a handful of well-behaved victim tenants each ask a
/// few questions of their own. Under FIFO dispatch every victim request
/// waits behind the whole remaining flood; under weighted fair queueing
/// the victims' sub-queues are served round-robin against the flood's —
/// this is the population bench_fairness measures victim p99 over, and
/// the admission/shedding counters are exercised by giving the flood
/// requests deadlines (set by the caller via `flood_deadline_ms`).
struct FloodingFleetOptions {
  /// The flooding tenant's scenario (tenant index 0, tag "t00-flood-*").
  ScenarioId flood_scenario = ScenarioId::kS1SanMisconfiguration;
  /// Victim scenario mix; victims round-robin over it. Default: S2-S5.
  std::vector<ScenarioId> victim_scenarios;
  int victim_tenants = 4;
  /// Burst size: flood requests generated FIRST in the stream, so they
  /// occupy the queue before any victim arrives (worst case for FIFO).
  int flood_requests = 48;
  int requests_per_victim = 3;
  /// Deadline stamped onto each flood request (0 = none). Victims never
  /// carry deadlines.
  double flood_deadline_ms = 0;
  /// Priority of the flood's requests (victims stay kNormal).
  engine::RequestPriority flood_priority = engine::RequestPriority::kNormal;
  uint64_t seed = 42;
  /// Per-tenant sizing (seed is overridden per tenant).
  ScenarioOptions scenario_options;
};

/// Builds the flooding fleet: tenant 0 is the flooder, tenants 1.. are
/// victims; the request stream is the flood burst followed by the
/// victims' requests round-robin. Run it with the result cache and
/// coalescing disabled — otherwise the engine collapses the identical
/// flood requests and nothing floods.
Result<FleetWorkload> BuildFloodingFleet(const FloodingFleetOptions& options);

/// Names of the tenants whose primary ground truth names `subject`
/// (registry name, e.g. "V1") — the answer key for implicated-set
/// queries. Sorted by tenant name.
std::vector<std::string> TenantsWithGroundTruthSubject(
    const FleetWorkload& fleet, const std::string& subject);

/// The serial ground-truth answer for one tenant: a direct
/// Workflow::Diagnose over the tenant's context with the same config.
Result<diag::DiagnosisReport> SerialDiagnosis(
    const FleetTenant& tenant, const diag::WorkflowConfig& config,
    const diag::SymptomsDb* symptoms_db,
    diag::ImpactMethod impact_method =
        diag::ImpactMethod::kInverseDependency);

/// Simulated-collection latency profile for serving experiments: every
/// component round-trips at `base_ms`, except each tenant's component
/// named `slow_component_name` (default "V1", the Table-1 contended
/// volume), which round-trips at base_ms * slow_factor — the one wedged
/// SAN agent that an overlapped gather hides and a serialized collection
/// pays in full. Tenants that lack the name are left at base latency.
monitor::SimulatedLatencyOptions MakeSkewedLatencyProfile(
    const FleetWorkload& fleet, double base_ms, double slow_factor,
    const std::string& slow_component_name = "V1");

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_FLEET_H_
