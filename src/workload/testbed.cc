#include "workload/testbed.h"

#include <cassert>

#include "common/strings.h"
#include "san/generator.h"

namespace diads::workload {

Testbed::Testbed(const TestbedOptions& opts)
    : options(opts),
      rng(opts.seed),
      registry(),
      event_log(),
      topology(&registry),
      config_db(&topology, &event_log),
      perf_model(&topology),
      store(),
      noise(opts.default_noise, rng.Child("noise")),
      san_collector(&topology, &perf_model, &store, &noise, &event_log,
                    monitor::SanCollectorConfig{opts.monitoring_interval,
                                                25.0, 0.85}),
      catalog(&registry, &event_log),
      backend(db::MakeDbBackend(
          opts.backend, db::BackendInit{&catalog, opts.scale_factor,
                                        opts.buffer_pool_mb,
                                        opts.db_params})),
      buffer_pool(&catalog, opts.buffer_pool_mb),
      locks(),
      activity(),
      db_collector(&activity, &locks, &catalog, ComponentId{}, &store, &noise,
                   opts.monitoring_interval),
      runs(),
      apg_builder(&catalog, &topology, &registry) {}

db::Executor Testbed::MakeExecutor() {
  db::ExecutorContext ctx;
  ctx.catalog = &catalog;
  ctx.topology = &topology;
  ctx.perf_model = &perf_model;
  ctx.buffer_pool = &buffer_pool;
  ctx.locks = &locks;
  ctx.activity = &activity;
  ctx.db_server = db_server;
  ctx.database = database;
  ctx.params = backend->ExecutorParams();
  return db::Executor(ctx, rng.Child(StrFormat("executor-%zu", runs.size())));
}

Result<int> Testbed::RunQ2(SimTimeMs at, std::shared_ptr<const db::Plan> plan) {
  if (plan == nullptr) plan = paper_plan;
  db::Executor executor = MakeExecutor();
  Result<db::QueryRunRecord> record = executor.Execute(plan, at);
  DIADS_RETURN_IF_ERROR(record.status());
  return runs.AddRun(std::move(*record));
}

Result<db::Plan> Testbed::OptimizeQ2() const {
  return backend->OptimizeQuery(q2_spec);
}

Status Testbed::CollectMonitors(SimTimeMs from, SimTimeMs to) {
  DIADS_RETURN_IF_ERROR(san_collector.CollectRange(from, to));
  return db_collector.CollectRange(from, to);
}

Result<apg::Apg> Testbed::BuildApg(std::shared_ptr<const db::Plan> plan) {
  if (plan == nullptr) plan = paper_plan;
  return apg_builder.Build(plan, query_q2, database, db_server);
}

std::function<Result<uint64_t>(const SystemEvent&)>
Testbed::MakeWhatIfProber() {
  return [this](const SystemEvent& event) -> Result<uint64_t> {
    switch (event.type) {
      case EventType::kIndexDropped: {
        auto it = event.attrs.find("index");
        if (it == event.attrs.end()) {
          return Status::InvalidArgument(
              "kIndexDropped event lacks 'index' attribute");
        }
        DIADS_RETURN_IF_ERROR(
            catalog.SetIndexDroppedSilently(it->second, false));
        Result<db::Plan> plan = OptimizeQ2();
        Status restore = catalog.SetIndexDroppedSilently(it->second, true);
        DIADS_RETURN_IF_ERROR(restore);
        DIADS_RETURN_IF_ERROR(plan.status());
        return plan->Fingerprint();
      }
      case EventType::kIndexCreated: {
        auto it = event.attrs.find("index");
        if (it == event.attrs.end()) {
          return Status::InvalidArgument(
              "kIndexCreated event lacks 'index' attribute");
        }
        DIADS_RETURN_IF_ERROR(
            catalog.SetIndexDroppedSilently(it->second, true));
        Result<db::Plan> plan = OptimizeQ2();
        Status restore = catalog.SetIndexDroppedSilently(it->second, false);
        DIADS_RETURN_IF_ERROR(restore);
        DIADS_RETURN_IF_ERROR(plan.status());
        return plan->Fingerprint();
      }
      case EventType::kDbParamChanged: {
        auto name_it = event.attrs.find("param");
        auto old_it = event.attrs.find("old_value");
        if (name_it == event.attrs.end() || old_it == event.attrs.end()) {
          return Status::InvalidArgument(
              "kDbParamChanged event lacks 'param'/'old_value' attributes");
        }
        Result<db::Plan> plan = backend->OptimizeQueryWithParam(
            q2_spec, name_it->second, std::stod(old_it->second));
        DIADS_RETURN_IF_ERROR(plan.status());
        return plan->Fingerprint();
      }
      case EventType::kTableStatsChanged: {
        auto table_it = event.attrs.find("table");
        auto rows_it = event.attrs.find("old_row_count");
        if (table_it == event.attrs.end() || rows_it == event.attrs.end()) {
          return Status::InvalidArgument(
              "kTableStatsChanged event lacks 'table'/'old_row_count'");
        }
        Result<const db::TableDef*> table = catalog.FindTable(table_it->second);
        DIADS_RETURN_IF_ERROR(table.status());
        const db::TableStats current = (*table)->optimizer_stats;
        db::TableStats reverted = current;
        reverted.row_count = std::stod(rows_it->second);
        DIADS_RETURN_IF_ERROR(
            catalog.SetOptimizerStatsSilently(table_it->second, reverted));
        Result<db::Plan> plan = OptimizeQ2();
        Status restore =
            catalog.SetOptimizerStatsSilently(table_it->second, current);
        DIADS_RETURN_IF_ERROR(restore);
        DIADS_RETURN_IF_ERROR(plan.status());
        return plan->Fingerprint();
      }
      default:
        return Status::Unimplemented(
            StrFormat("no what-if probe for event type %s",
                      EventTypeName(event.type)));
    }
  };
}

namespace {

// Storage layout (P1/P2, disks 1-10, V1-V4), LUN mappings, TPC-H catalog,
// the Q2 paper plan, and the ambient V3/V4 workloads — identical between the
// Figure-1 and multipath testbeds, so the F scenarios exercise the exact
// database/plan/volume schema the conformance suite pins. Expects servers,
// fabric, zoning, and tb->subsystem already built.
Status FinishStorageAndDatabase(Testbed* tb, const TestbedOptions& options) {
  DIADS_ASSIGN_OR_RETURN(
      tb->pool1, tb->topology.AddPool("P1", tb->subsystem,
                                      san::RaidLevel::kRaid5));
  DIADS_ASSIGN_OR_RETURN(
      tb->pool2, tb->topology.AddPool("P2", tb->subsystem,
                                      san::RaidLevel::kRaid5));
  for (int i = 1; i <= 4; ++i) {
    DIADS_RETURN_IF_ERROR(
        tb->topology.AddDisk(StrFormat("disk%d", i), tb->pool1).status());
  }
  for (int i = 5; i <= 10; ++i) {
    DIADS_RETURN_IF_ERROR(
        tb->topology.AddDisk(StrFormat("disk%d", i), tb->pool2).status());
  }
  DIADS_ASSIGN_OR_RETURN(tb->v1, tb->topology.AddVolume("V1", tb->pool1, 200));
  DIADS_ASSIGN_OR_RETURN(tb->v3, tb->topology.AddVolume("V3", tb->pool1, 200));
  DIADS_ASSIGN_OR_RETURN(tb->v2, tb->topology.AddVolume("V2", tb->pool2, 400));
  DIADS_ASSIGN_OR_RETURN(tb->v4, tb->topology.AddVolume("V4", tb->pool2, 300));

  DIADS_RETURN_IF_ERROR(tb->topology.MapLun(tb->db_server, tb->v1));
  DIADS_RETURN_IF_ERROR(tb->topology.MapLun(tb->db_server, tb->v2));
  DIADS_RETURN_IF_ERROR(tb->topology.MapLun(tb->app_server, tb->v3));
  DIADS_RETURN_IF_ERROR(tb->topology.MapLun(tb->app_server, tb->v4));
  DIADS_RETURN_IF_ERROR(tb->topology.Validate());

  // --- Database -------------------------------------------------------------
  DIADS_ASSIGN_OR_RETURN(
      tb->database,
      tb->registry.Register(ComponentKind::kDatabase,
                            tb->backend->DatabaseComponentName("dbserver")));
  DIADS_ASSIGN_OR_RETURN(
      tb->query_q2, tb->registry.Register(ComponentKind::kQuery, "Q2"));
  db::TpchOptions tpch;
  tpch.scale_factor = options.scale_factor;
  tpch.volume_v1 = tb->v1;
  tpch.volume_v2 = tb->v2;
  DIADS_RETURN_IF_ERROR(db::BuildTpchCatalog(tpch, &tb->catalog));

  tb->q2_spec = db::MakeTpchQ2Spec();
  DIADS_ASSIGN_OR_RETURN(db::Plan plan, tb->backend->MakePaperPlan());
  tb->paper_plan = std::make_shared<const db::Plan>(std::move(plan));

  // Re-bind the DB collector now that the database component exists.
  tb->db_collector =
      db::DbCollector(&tb->activity, &tb->locks, &tb->catalog, tb->database,
                      &tb->store, &tb->noise, options.monitoring_interval);

  // --- Ambient background workloads on V3/V4 --------------------------------
  DIADS_ASSIGN_OR_RETURN(
      tb->workload_v3,
      tb->registry.Register(ComponentKind::kWorkload, "app-workload-v3"));
  DIADS_ASSIGN_OR_RETURN(
      tb->workload_v4,
      tb->registry.Register(ComponentKind::kWorkload, "app-workload-v4"));
  tb->apg_builder.BindWorkload(tb->workload_v3, tb->v3);
  tb->apg_builder.BindWorkload(tb->workload_v4, tb->v4);
  return Status::Ok();
}

}  // namespace

Result<std::unique_ptr<Testbed>> BuildFigure1Testbed(
    const TestbedOptions& options) {
  auto tb = std::make_unique<Testbed>(options);

  // --- Servers and fabric ---------------------------------------------------
  DIADS_ASSIGN_OR_RETURN(tb->db_server,
                         tb->topology.AddServer("dbserver", "RedHat Linux"));
  DIADS_ASSIGN_OR_RETURN(ComponentId db_hba,
                         tb->topology.AddHba("dbserver-hba0", tb->db_server));
  DIADS_ASSIGN_OR_RETURN(
      tb->db_hba_port,
      tb->topology.AddPort("dbserver-hba0-p0", san::PortOwner::kHba, db_hba));

  DIADS_ASSIGN_OR_RETURN(tb->app_server,
                         tb->topology.AddServer("appserver", "AIX"));
  DIADS_ASSIGN_OR_RETURN(ComponentId app_hba,
                         tb->topology.AddHba("appserver-hba0", tb->app_server));
  DIADS_ASSIGN_OR_RETURN(
      tb->app_hba_port,
      tb->topology.AddPort("appserver-hba0-p0", san::PortOwner::kHba, app_hba));

  DIADS_ASSIGN_OR_RETURN(tb->edge_switch1,
                         tb->topology.AddSwitch("edge-sw1", false));
  DIADS_ASSIGN_OR_RETURN(tb->core_switch,
                         tb->topology.AddSwitch("core-sw1", true));
  DIADS_ASSIGN_OR_RETURN(tb->edge_switch2,
                         tb->topology.AddSwitch("edge-sw2", false));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId e1p0, tb->topology.AddPort("edge-sw1-p0",
                                             san::PortOwner::kSwitch,
                                             tb->edge_switch1));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId e1p1, tb->topology.AddPort("edge-sw1-p1",
                                             san::PortOwner::kSwitch,
                                             tb->edge_switch1));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId e1p2, tb->topology.AddPort("edge-sw1-p2",
                                             san::PortOwner::kSwitch,
                                             tb->edge_switch1));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId c0p0, tb->topology.AddPort("core-sw1-p0",
                                             san::PortOwner::kSwitch,
                                             tb->core_switch));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId c0p1, tb->topology.AddPort("core-sw1-p1",
                                             san::PortOwner::kSwitch,
                                             tb->core_switch));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId e2p0, tb->topology.AddPort("edge-sw2-p0",
                                             san::PortOwner::kSwitch,
                                             tb->edge_switch2));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId e2p1, tb->topology.AddPort("edge-sw2-p1",
                                             san::PortOwner::kSwitch,
                                             tb->edge_switch2));

  DIADS_ASSIGN_OR_RETURN(tb->subsystem,
                         tb->topology.AddSubsystem("ds6000", "IBM DS6000"));
  DIADS_ASSIGN_OR_RETURN(
      tb->subsystem_port0,
      tb->topology.AddPort("ds6000-p0", san::PortOwner::kSubsystem,
                           tb->subsystem));
  DIADS_ASSIGN_OR_RETURN(
      tb->subsystem_port1,
      tb->topology.AddPort("ds6000-p1", san::PortOwner::kSubsystem,
                           tb->subsystem));

  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->db_hba_port, e1p0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->app_hba_port, e1p2));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(e1p1, c0p0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(c0p1, e2p0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(e2p1, tb->subsystem_port0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(e2p1, tb->subsystem_port1));

  DIADS_RETURN_IF_ERROR(tb->topology.AddZone(
      "db-zone", {tb->db_hba_port, tb->subsystem_port0}));
  DIADS_RETURN_IF_ERROR(tb->topology.AddZone(
      "app-zone", {tb->app_hba_port, tb->subsystem_port1}));

  // --- Storage, catalog, database, ambient workloads ------------------------
  DIADS_RETURN_IF_ERROR(FinishStorageAndDatabase(tb.get(), options));

  return tb;
}

Result<std::unique_ptr<Testbed>> BuildMultipathTestbed(
    const TestbedOptions& options) {
  auto tb = std::make_unique<Testbed>(options);
  // All fabric ports run at 1 Gbps (125 MB/s effective) — deliberately slow
  // so that collapsing two paths onto one, or halving one port's capacity,
  // crosses the perf model's congestion threshold.
  constexpr double kGbps = 1.0;

  // --- Servers: the db server gets one HBA per fabric -----------------------
  DIADS_ASSIGN_OR_RETURN(tb->db_server,
                         tb->topology.AddServer("dbserver", "RedHat Linux"));
  DIADS_ASSIGN_OR_RETURN(tb->db_hba0,
                         tb->topology.AddHba("dbserver-hba0", tb->db_server));
  DIADS_ASSIGN_OR_RETURN(
      tb->db_hba_port,
      tb->topology.AddPort("dbserver-hba0-p0", san::PortOwner::kHba,
                           tb->db_hba0, kGbps));
  DIADS_ASSIGN_OR_RETURN(tb->db_hba1,
                         tb->topology.AddHba("dbserver-hba1", tb->db_server));
  DIADS_ASSIGN_OR_RETURN(
      tb->db_hba1_port,
      tb->topology.AddPort("dbserver-hba1-p0", san::PortOwner::kHba,
                           tb->db_hba1, kGbps));

  DIADS_ASSIGN_OR_RETURN(tb->app_server,
                         tb->topology.AddServer("appserver", "AIX"));
  DIADS_ASSIGN_OR_RETURN(ComponentId app_hba,
                         tb->topology.AddHba("appserver-hba0", tb->app_server));
  DIADS_ASSIGN_OR_RETURN(
      tb->app_hba_port,
      tb->topology.AddPort("appserver-hba0-p0", san::PortOwner::kHba, app_hba,
                           kGbps));

  // --- Fabric A: host switch -- ISL -- storage switch -----------------------
  DIADS_ASSIGN_OR_RETURN(tb->fabric_a_host_switch,
                         tb->topology.AddSwitch("mpa-host-sw", false));
  DIADS_ASSIGN_OR_RETURN(tb->fabric_a_storage_switch,
                         tb->topology.AddSwitch("mpa-stor-sw", false));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId a_host_p0,
      tb->topology.AddPort("mpa-host-sw-p0", san::PortOwner::kSwitch,
                           tb->fabric_a_host_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      tb->isl_a0, tb->topology.AddPort("mpa-host-sw-p1",
                                       san::PortOwner::kSwitch,
                                       tb->fabric_a_host_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      tb->isl_a1, tb->topology.AddPort("mpa-stor-sw-p0",
                                       san::PortOwner::kSwitch,
                                       tb->fabric_a_storage_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId a_stor_p1,
      tb->topology.AddPort("mpa-stor-sw-p1", san::PortOwner::kSwitch,
                           tb->fabric_a_storage_switch, kGbps));

  // --- Fabric B: same shape, plus the app server's attachment ---------------
  DIADS_ASSIGN_OR_RETURN(tb->fabric_b_host_switch,
                         tb->topology.AddSwitch("mpb-host-sw", false));
  DIADS_ASSIGN_OR_RETURN(tb->fabric_b_storage_switch,
                         tb->topology.AddSwitch("mpb-stor-sw", false));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId b_host_p0,
      tb->topology.AddPort("mpb-host-sw-p0", san::PortOwner::kSwitch,
                           tb->fabric_b_host_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId b_host_p1,
      tb->topology.AddPort("mpb-host-sw-p1", san::PortOwner::kSwitch,
                           tb->fabric_b_host_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      tb->isl_b0, tb->topology.AddPort("mpb-host-sw-p2",
                                       san::PortOwner::kSwitch,
                                       tb->fabric_b_host_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      tb->isl_b1, tb->topology.AddPort("mpb-stor-sw-p0",
                                       san::PortOwner::kSwitch,
                                       tb->fabric_b_storage_switch, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      ComponentId b_stor_p1,
      tb->topology.AddPort("mpb-stor-sw-p1", san::PortOwner::kSwitch,
                           tb->fabric_b_storage_switch, kGbps));

  // --- Subsystem: one port per fabric ---------------------------------------
  DIADS_ASSIGN_OR_RETURN(tb->subsystem,
                         tb->topology.AddSubsystem("ds6000", "IBM DS6000"));
  DIADS_ASSIGN_OR_RETURN(
      tb->subsystem_port0,
      tb->topology.AddPort("ds6000-pA", san::PortOwner::kSubsystem,
                           tb->subsystem, kGbps));
  DIADS_ASSIGN_OR_RETURN(
      tb->subsystem_port1,
      tb->topology.AddPort("ds6000-pB", san::PortOwner::kSubsystem,
                           tb->subsystem, kGbps));

  // --- Cabling --------------------------------------------------------------
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->db_hba_port, a_host_p0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->isl_a0, tb->isl_a1));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(a_stor_p1, tb->subsystem_port0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->db_hba1_port, b_host_p0));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->app_hba_port, b_host_p1));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(tb->isl_b0, tb->isl_b1));
  DIADS_RETURN_IF_ERROR(tb->topology.Link(b_stor_p1, tb->subsystem_port1));

  // --- Zoning: the db server sees the subsystem through both fabrics --------
  DIADS_RETURN_IF_ERROR(tb->topology.AddZone(
      "mp-zone-a", {tb->db_hba_port, tb->subsystem_port0}));
  DIADS_RETURN_IF_ERROR(tb->topology.AddZone(
      "mp-zone-b",
      {tb->db_hba1_port, tb->app_hba_port, tb->subsystem_port1}));

  // --- Storage, catalog, database, ambient workloads ------------------------
  DIADS_RETURN_IF_ERROR(FinishStorageAndDatabase(tb.get(), options));

  // --- Optional generated scale fabric (bench_topology_scale) ---------------
  // Idle background structure sharing the registry/topology; its own
  // servers, zones, and LUN mappings never intersect the core testbed's.
  if (options.add_scale_fabric) {
    DIADS_RETURN_IF_ERROR(
        san::GenerateFabricTopology(&tb->topology, san::LargeFabricSpec())
            .status());
  }

  return tb;
}

}  // namespace diads::workload
