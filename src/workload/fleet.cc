#include "workload/fleet.h"

#include <algorithm>
#include <utility>

#include "common/rng.h"
#include "common/strings.h"
#include "diads/workflow.h"

namespace diads::workload {

Result<FleetWorkload> BuildFleet(const FleetOptions& options) {
  FleetOptions opts = options;
  if (opts.scenarios.empty()) {
    opts.scenarios = {
        ScenarioId::kS1SanMisconfiguration,
        ScenarioId::kS2DualExternalContention,
        ScenarioId::kS3DataPropertyChange,
        ScenarioId::kS4ConcurrentDbSan,
        ScenarioId::kS5LockingWithNoise,
    };
  }
  if (opts.tenants <= 0) {
    return Status::InvalidArgument("FleetOptions.tenants must be positive");
  }
  if (opts.requests_per_tenant <= 0) {
    return Status::InvalidArgument(
        "FleetOptions.requests_per_tenant must be positive");
  }

  FleetWorkload fleet;
  fleet.tenants.reserve(static_cast<size_t>(opts.tenants));
  for (int i = 0; i < opts.tenants; ++i) {
    const ScenarioId id =
        opts.scenarios[static_cast<size_t>(i) % opts.scenarios.size()];
    ScenarioOptions scenario_options = opts.scenario_options;
    // Distinct seeds make tenants statistically independent deployments.
    scenario_options.seed = opts.seed + static_cast<uint64_t>(i) * 7919;
    Result<ScenarioOutput> output = RunScenario(id, scenario_options);
    DIADS_RETURN_IF_ERROR(output.status());
    FleetTenant tenant;
    tenant.name = StrFormat("t%02d-%s", i, ScenarioName(id));
    tenant.scenario = id;
    tenant.output =
        std::make_unique<ScenarioOutput>(std::move(output).value());
    fleet.tenants.push_back(std::move(tenant));
  }

  for (size_t t = 0; t < fleet.tenants.size(); ++t) {
    for (int r = 0; r < opts.requests_per_tenant; ++r) {
      engine::DiagnosisRequest request;
      request.ctx = fleet.tenants[t].output->MakeContext();
      request.tag = fleet.tenants[t].name;
      fleet.requests.push_back(std::move(request));
      fleet.tenant_of_request.push_back(t);
    }
  }

  if (opts.shuffle) {
    // Shuffle requests and their tenant labels with the same permutation.
    SeededRng rng(opts.seed ^ 0x5eed5eedull);
    std::vector<size_t> order(fleet.requests.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.Shuffle(&order);
    std::vector<engine::DiagnosisRequest> requests;
    std::vector<size_t> tenant_of_request;
    requests.reserve(order.size());
    tenant_of_request.reserve(order.size());
    for (size_t i : order) {
      requests.push_back(std::move(fleet.requests[i]));
      tenant_of_request.push_back(fleet.tenant_of_request[i]);
    }
    fleet.requests = std::move(requests);
    fleet.tenant_of_request = std::move(tenant_of_request);
  }
  return fleet;
}

Result<FleetWorkload> BuildSharedFaultFleet(
    const SharedFaultFleetOptions& options) {
  if (options.faulted_tenants <= 0) {
    return Status::InvalidArgument(
        "SharedFaultFleetOptions.faulted_tenants must be positive");
  }
  if (options.background_tenants < 0) {
    return Status::InvalidArgument(
        "SharedFaultFleetOptions.background_tenants must be >= 0");
  }
  const int total = options.faulted_tenants + options.background_tenants;
  FleetWorkload fleet;
  fleet.tenants.reserve(static_cast<size_t>(total));
  for (int i = 0; i < total; ++i) {
    const bool faulted = i < options.faulted_tenants;
    const ScenarioId id =
        faulted ? options.fault_scenario : options.background_scenario;
    ScenarioOptions scenario_options = options.scenario_options;
    scenario_options.seed = options.seed + static_cast<uint64_t>(i) * 7919;
    scenario_options.testbed.backend = options.backend;
    Result<ScenarioOutput> output = RunScenario(id, scenario_options);
    DIADS_RETURN_IF_ERROR(output.status());
    FleetTenant tenant;
    tenant.name = StrFormat("t%02d-%s", i, ScenarioName(id));
    tenant.scenario = id;
    tenant.output =
        std::make_unique<ScenarioOutput>(std::move(output).value());
    fleet.tenants.push_back(std::move(tenant));
  }
  for (size_t t = 0; t < fleet.tenants.size(); ++t) {
    engine::DiagnosisRequest request;
    request.ctx = fleet.tenants[t].output->MakeContext();
    request.tag = fleet.tenants[t].name;
    fleet.requests.push_back(std::move(request));
    fleet.tenant_of_request.push_back(t);
  }
  return fleet;
}

Result<FleetWorkload> BuildFloodingFleet(const FloodingFleetOptions& options) {
  FloodingFleetOptions opts = options;
  if (opts.victim_scenarios.empty()) {
    opts.victim_scenarios = {
        ScenarioId::kS2DualExternalContention,
        ScenarioId::kS3DataPropertyChange,
        ScenarioId::kS4ConcurrentDbSan,
        ScenarioId::kS5LockingWithNoise,
    };
  }
  if (opts.victim_tenants <= 0) {
    return Status::InvalidArgument(
        "FloodingFleetOptions.victim_tenants must be positive");
  }
  if (opts.flood_requests <= 0 || opts.requests_per_victim <= 0) {
    return Status::InvalidArgument(
        "FloodingFleetOptions request counts must be positive");
  }

  FleetWorkload fleet;
  fleet.tenants.reserve(static_cast<size_t>(opts.victim_tenants) + 1);
  for (int i = 0; i <= opts.victim_tenants; ++i) {
    const bool flooder = i == 0;
    const ScenarioId id =
        flooder ? opts.flood_scenario
                : opts.victim_scenarios[static_cast<size_t>(i - 1) %
                                        opts.victim_scenarios.size()];
    ScenarioOptions scenario_options = opts.scenario_options;
    scenario_options.seed = opts.seed + static_cast<uint64_t>(i) * 7919;
    Result<ScenarioOutput> output = RunScenario(id, scenario_options);
    DIADS_RETURN_IF_ERROR(output.status());
    FleetTenant tenant;
    tenant.name = StrFormat(flooder ? "t%02d-flood-%s" : "t%02d-%s", i,
                            ScenarioName(id));
    tenant.scenario = id;
    tenant.output =
        std::make_unique<ScenarioOutput>(std::move(output).value());
    fleet.tenants.push_back(std::move(tenant));
  }

  // Flood burst first: by the time the first victim request arrives the
  // queue is as deep in flood work as it will ever be.
  for (int r = 0; r < opts.flood_requests; ++r) {
    engine::DiagnosisRequest request;
    request.ctx = fleet.tenants[0].output->MakeContext();
    request.tag = fleet.tenants[0].name;
    request.priority = opts.flood_priority;
    request.deadline_ms = opts.flood_deadline_ms;
    fleet.requests.push_back(std::move(request));
    fleet.tenant_of_request.push_back(0);
  }
  // Victims round-robin, so no single victim monopolizes the tail either.
  for (int r = 0; r < opts.requests_per_victim; ++r) {
    for (int v = 1; v <= opts.victim_tenants; ++v) {
      const size_t t = static_cast<size_t>(v);
      engine::DiagnosisRequest request;
      request.ctx = fleet.tenants[t].output->MakeContext();
      request.tag = fleet.tenants[t].name;
      fleet.requests.push_back(std::move(request));
      fleet.tenant_of_request.push_back(t);
    }
  }
  return fleet;
}

std::vector<std::string> TenantsWithGroundTruthSubject(
    const FleetWorkload& fleet, const std::string& subject) {
  std::vector<std::string> out;
  for (const FleetTenant& tenant : fleet.tenants) {
    for (const GroundTruthCause& truth : tenant.output->ground_truth) {
      if (truth.primary && truth.subject_name == subject) {
        out.push_back(tenant.name);
        break;
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

Result<diag::DiagnosisReport> SerialDiagnosis(
    const FleetTenant& tenant, const diag::WorkflowConfig& config,
    const diag::SymptomsDb* symptoms_db, diag::ImpactMethod impact_method) {
  diag::Workflow workflow(tenant.output->MakeContext(), config, symptoms_db);
  return workflow.Diagnose(impact_method);
}

monitor::SimulatedLatencyOptions MakeSkewedLatencyProfile(
    const FleetWorkload& fleet, double base_ms, double slow_factor,
    const std::string& slow_component_name) {
  monitor::SimulatedLatencyOptions options;
  options.base_latency_ms = base_ms;
  for (const FleetTenant& tenant : fleet.tenants) {
    const ComponentRegistry& registry =
        tenant.output->testbed->topology.registry();
    Result<ComponentId> slow = registry.FindByName(slow_component_name);
    if (!slow.ok()) continue;
    options.per_component_ms[slow->value] = base_ms * slow_factor;
  }
  return options;
}

}  // namespace diads::workload
