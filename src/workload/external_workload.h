// External workload generation.
//
// Other applications share the paper's production SAN; their I/O is what
// creates cross-volume contention. The generator registers piecewise-
// constant load on a volume in three shapes:
//
//   * ambient: hourly-varying low-level load (the healthy variance every
//     KDE baseline needs — without it, a perfectly flat baseline would make
//     any microscopic wiggle look anomalous);
//   * steady: a constant profile over a window (scenario 2's competing
//     workloads, scenario 1's workload on the misconfigured volume V');
//   * bursty: short high-intensity bursts on a duty cycle (Section 5's
//     "extra I/O load on Volume V2 in a bursty manner" — intense enough to
//     spike latency metrics, brief enough to be diluted by the 5-minute
//     monitoring averages).
//
// Each Start* call can log kExternalWorkloadStarted/Stopped events. The
// scenario-1 injector suppresses them: the misconfigured volume belongs to
// a server outside the monitored environment, so DIADS only sees the
// configuration events — exactly the paper's setup.
#ifndef DIADS_WORKLOAD_EXTERNAL_WORKLOAD_H_
#define DIADS_WORKLOAD_EXTERNAL_WORKLOAD_H_

#include "common/rng.h"
#include "san/perf_model.h"
#include "workload/testbed.h"

namespace diads::workload {

/// Generator of external (non-database) I/O load.
class ExternalWorkloadGen {
 public:
  /// `testbed` must outlive the generator.
  explicit ExternalWorkloadGen(Testbed* testbed);

  /// Low-level load whose intensity re-rolls every `chunk` (default 1 h),
  /// uniformly in [0.6, 1.4] x `base`. No events are logged (ambient load
  /// predates the diagnosis window).
  Status StartAmbient(ComponentId volume, const TimeInterval& window,
                      const san::IoProfile& base,
                      SimTimeMs chunk = Hours(1));

  /// Constant load over the window. Logs start/stop events against
  /// `subject` (usually the volume) unless `log_events` is false.
  Status StartSteady(ComponentId volume, const TimeInterval& window,
                     const san::IoProfile& profile, bool log_events,
                     const std::string& description);

  /// Bursts of `burst_len` every `period` over the window.
  Status StartBursty(ComponentId volume, const TimeInterval& window,
                     const san::IoProfile& burst_profile, SimTimeMs period,
                     SimTimeMs burst_len, bool log_events,
                     const std::string& description);

 private:
  Status LogWorkloadEvent(EventType type, SimTimeMs t, ComponentId volume,
                          const std::string& description);

  Testbed* testbed_;
  SeededRng rng_;
};

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_EXTERNAL_WORKLOAD_H_
