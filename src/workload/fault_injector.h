// Fault injector (Section 6).
//
// "A fault injector that can inject a variety of faults at the database and
// SAN levels, including SAN misconfiguration, server, disk, or volume
// contention, RAID rebuilds, changes in data properties, and table-locking
// problems. ... This module is used for test purposes and verification of
// the correctness of the DIADS results."
//
// Every injector perturbs the real simulated state (SAN load, catalog
// statistics, lock windows, noise overrides) and emits exactly the events a
// production environment would log — no injector tells DIADS what the
// answer is.
#ifndef DIADS_WORKLOAD_FAULT_INJECTOR_H_
#define DIADS_WORKLOAD_FAULT_INJECTOR_H_

#include <string>
#include <vector>

#include "workload/external_workload.h"
#include "workload/testbed.h"

namespace diads::workload {

/// Fault injection over a testbed.
class FaultInjector {
 public:
  /// `testbed` must outlive the injector.
  explicit FaultInjector(Testbed* testbed);

  /// Scenario 1: a SAN misconfiguration. At `config_time` a new volume V'
  /// is provisioned in V1's pool and zoned/mapped to the app server; from
  /// `load_window.begin` the (unmonitored) application writes to V',
  /// contending with V1 on the shared disks. Only configuration events are
  /// logged — the workload itself is invisible to the monitoring tool.
  Status InjectSanMisconfiguration(SimTimeMs config_time,
                                   const TimeInterval& load_window,
                                   double write_iops = 90.0);

  /// Volume contention from a *known* external workload (logged).
  Status InjectExternalContention(ComponentId volume,
                                  const TimeInterval& window,
                                  double read_iops, double write_iops);

  /// Bursty load (Section 5's robustness twist on scenario 1).
  Status InjectBurstyLoad(ComponentId volume, const TimeInterval& window,
                          double read_iops, SimTimeMs period = Minutes(5),
                          SimTimeMs burst_len = Seconds(30));

  /// Scenario 3: bulk DML multiplies a table's actual row count; optimizer
  /// statistics stay stale (no ANALYZE), so the plan is unchanged but
  /// record counts and I/O drift.
  Status InjectDataPropertyChange(SimTimeMs t, const std::string& table,
                                  double factor);

  /// Scenario 5: a competing transaction holds locks on `table`; scans
  /// starting in the window wait `wait_ms`. Logs kTableLockContention.
  Status InjectLockContention(const TimeInterval& window,
                              const std::string& table, SimTimeMs wait_ms,
                              double extra_locks_held = 12.0);

  /// Scenario 5's second half: fabricate contention-like readings on a
  /// volume's latency metrics (noise bias), with no real load behind them.
  Status InjectSpuriousVolumeSymptoms(ComponentId volume,
                                      const TimeInterval& window,
                                      double bias_fraction = 1.5);

  /// RAID rebuild on a pool: backend overhead on every disk + events.
  Status InjectRaidRebuild(ComponentId pool, const TimeInterval& window,
                           double overhead_utilization = 0.35);

  /// Disk failure at `t`. Topology state has no time dimension, so the
  /// disk stays failed until InjectDiskRecovery is called at the right
  /// point of the simulated history.
  Status InjectDiskFailure(SimTimeMs t, ComponentId disk);
  Status InjectDiskRecovery(SimTimeMs t, ComponentId disk);

  /// Plan-change faults: drop an index / change an optimizer parameter /
  /// ANALYZE after data drift. Each logs the corresponding event with the
  /// attributes Module PD's what-if probe needs.
  Status InjectIndexDrop(SimTimeMs t, const std::string& index_name);
  Status InjectParamChange(SimTimeMs t, const std::string& param,
                           double new_value);
  Status InjectAnalyze(SimTimeMs t, const std::string& table);

  /// Database server CPU saturation from a competing job.
  Status InjectCpuSaturation(const TimeInterval& window,
                             double utilization = 0.85);

  // --- Failover scenario family (F1-F4) -------------------------------------

  /// A pure fabric byte stream (mirror / replication / rebuild traffic) of
  /// `mb_per_sec` across an explicit port chain. Like scenario 1's
  /// unmonitored workload, the stream itself logs nothing — only its
  /// congestion side-effects are observable.
  Status InjectFabricStream(const TimeInterval& window, double mb_per_sec,
                            std::vector<ComponentId> ports);

  /// Multipath-driver path-health probes for a db-server volume: one
  /// negligible (1 IOPS) volume-bound load event per currently-resolved
  /// path, carrying that path's ports. Congestion on any path thereby shows
  /// in the volume's latency continuously — not only while a query happens
  /// to run — matching real multipath drivers, which probe every path
  /// periodically. Paths are resolved at call time; call again after a
  /// failover to probe the surviving set.
  Status InjectPathProbes(ComponentId volume, const TimeInterval& window);

  /// F1: HBA hardware failure. The config database logs the failure and
  /// whatever path failovers it forces.
  Status InjectHbaFailure(SimTimeMs t, ComponentId hba);

  /// F2: a port negotiates down to `capacity_factor` of its bandwidth
  /// (flaky SFP / link renegotiation). Logged; routing is unchanged.
  Status InjectPortDegradation(SimTimeMs t, ComponentId port,
                               double capacity_factor);

  // --- Column-store storage-layout faults (C1-C2) ---------------------------

  /// C1: compression-ratio drift on `table`. Churny DML has degraded the
  /// segment compression ratio, so every scan of the table reads `bloat`
  /// times the pages for the same logical rows — row counts (and the plan)
  /// are untouched. The engine's own churn monitor logs the drift; only a
  /// segment reorganization would heal it.
  Status InjectCompressionDrift(SimTimeMs t, const std::string& table,
                                double bloat = 2.2);

  /// C2: zone-map staleness on `table`. The min/max metadata no longer
  /// matches the segments, so zone-pruned scans (and only those) read
  /// `bloat` times the segments they should — full vector scans are
  /// unaffected, which is what distinguishes this from C1 at the operator
  /// level.
  Status InjectZoneMapStaleness(SimTimeMs t, const std::string& table,
                                double bloat = 2.5);

  /// F4: a retry snowball on `volume` — unmonitored queue pressure from
  /// `window.begin`, then an escalation step `escalation` later as
  /// timed-out I/Os are reissued, with the driver's retry-storm alarm
  /// logged at the escalation point.
  Status InjectRetrySnowball(ComponentId volume, const TimeInterval& window,
                             SimTimeMs escalation = Minutes(15));

 private:
  Testbed* testbed_;
  ExternalWorkloadGen workloads_;
};

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_FAULT_INJECTOR_H_
