#include "workload/fault_injector.h"

#include "common/strings.h"

namespace diads::workload {

FaultInjector::FaultInjector(Testbed* testbed)
    : testbed_(testbed), workloads_(testbed) {}

Status FaultInjector::InjectSanMisconfiguration(SimTimeMs config_time,
                                                const TimeInterval& load_window,
                                                double write_iops) {
  Testbed& tb = *testbed_;
  // The misconfiguration: V' lands in P1 — the same physical disks as V1.
  DIADS_ASSIGN_OR_RETURN(
      ComponentId v_prime,
      tb.config_db.ProvisionVolume(config_time, "V-prime", tb.pool1, 150));
  DIADS_RETURN_IF_ERROR(tb.config_db.ChangeZoning(
      config_time + Seconds(30), "app-zone-vprime",
      {tb.app_hba_port, tb.subsystem_port1}));
  DIADS_RETURN_IF_ERROR(tb.config_db.ChangeLunMapping(
      config_time + Seconds(60), tb.app_server, v_prime));

  // The application workload on V': write-heavy, steady, and — critically —
  // not logged (the app server is outside the monitored environment).
  san::IoProfile profile;
  profile.write_iops = write_iops;
  profile.read_iops = write_iops * 0.2;
  profile.seq_fraction = 0.2;
  profile.avg_block_kb = 8;
  return workloads_.StartSteady(v_prime, load_window, profile,
                                /*log_events=*/false,
                                "unmonitored workload on V-prime");
}

Status FaultInjector::InjectExternalContention(ComponentId volume,
                                               const TimeInterval& window,
                                               double read_iops,
                                               double write_iops) {
  san::IoProfile profile;
  profile.read_iops = read_iops;
  profile.write_iops = write_iops;
  profile.seq_fraction = 0.3;
  return workloads_.StartSteady(
      volume, window, profile, /*log_events=*/true,
      StrFormat("external workload on %s",
                testbed_->registry.NameOf(volume).c_str()));
}

Status FaultInjector::InjectBurstyLoad(ComponentId volume,
                                       const TimeInterval& window,
                                       double read_iops, SimTimeMs period,
                                       SimTimeMs burst_len) {
  // Read-heavy bursts: they inflate the backend queue (write *time* rises)
  // without moving the write-operation counters much — the paper's Table 2
  // shows exactly that split (V2 writeTime 0.879 vs writeIO 0.512).
  san::IoProfile profile;
  profile.read_iops = read_iops;
  profile.write_iops = read_iops * 0.05;
  profile.seq_fraction = 0.1;
  return workloads_.StartBursty(
      volume, window, profile, period, burst_len, /*log_events=*/false,
      StrFormat("bursty load on %s",
                testbed_->registry.NameOf(volume).c_str()));
}

Status FaultInjector::InjectDataPropertyChange(SimTimeMs t,
                                               const std::string& table,
                                               double factor) {
  // The fault models a statistics-maintenance gap: data moved, the
  // optimizer's view did not. That requires the silent DML path on every
  // backend (PostgreSQL: no ANALYZE ran; MySQL: a STATS_AUTO_RECALC=0
  // table, the standard opt-out for exactly these bulk loads).
  return testbed_->backend->ApplyDmlSilently(
      t, table, factor,
      StrFormat("bulk DML changed data properties of '%s' (x%.2f rows)",
                table.c_str(), factor));
}

Status FaultInjector::InjectLockContention(const TimeInterval& window,
                                           const std::string& table,
                                           SimTimeMs wait_ms,
                                           double extra_locks_held) {
  db::LockContentionWindow contention;
  contention.table = table;
  contention.window = window;
  contention.wait_ms = wait_ms;
  contention.extra_locks_held = extra_locks_held;
  DIADS_RETURN_IF_ERROR(testbed_->locks.AddContention(contention));

  Result<const db::TableDef*> def = testbed_->catalog.FindTable(table);
  DIADS_RETURN_IF_ERROR(def.status());
  SystemEvent event;
  event.time = window.begin;
  event.type = EventType::kTableLockContention;
  event.subject = (*def)->id;
  event.description = StrFormat(
      "competing transaction holding locks on '%s' (%s waits)", table.c_str(),
      FormatDuration(wait_ms).c_str());
  event.attrs["table"] = table;
  return testbed_->event_log.Append(std::move(event));
}

Status FaultInjector::InjectSpuriousVolumeSymptoms(ComponentId volume,
                                                   const TimeInterval& window,
                                                   double bias_fraction) {
  monitor::NoiseOverride override_spec;
  override_spec.component = volume;
  override_spec.window = window;
  override_spec.spec = monitor::NoiseSpec{};
  override_spec.spec.gaussian_rel_sigma = 0.15;
  override_spec.spec.bias_fraction = bias_fraction;
  // Only latency-style metrics are biased: a stuck sensor or averaging
  // artifact inflates times, not operation counts.
  override_spec.metric = monitor::MetricId::kVolPhysWriteTimeMs;
  testbed_->noise.AddOverride(override_spec);
  override_spec.metric = monitor::MetricId::kVolPhysReadTimeMs;
  testbed_->noise.AddOverride(override_spec);
  override_spec.metric = monitor::MetricId::kVolReadLatencyMs;
  testbed_->noise.AddOverride(override_spec);
  override_spec.metric = monitor::MetricId::kVolWriteLatencyMs;
  testbed_->noise.AddOverride(override_spec);
  return Status::Ok();
}

Status FaultInjector::InjectRaidRebuild(ComponentId pool,
                                        const TimeInterval& window,
                                        double overhead_utilization) {
  DIADS_RETURN_IF_ERROR(
      testbed_->perf_model.AddPoolOverhead(pool, window,
                                           overhead_utilization));
  return testbed_->config_db.RecordRaidRebuild(window, pool);
}

Status FaultInjector::InjectDiskFailure(SimTimeMs t, ComponentId disk) {
  return testbed_->config_db.FailDisk(t, disk);
}

Status FaultInjector::InjectDiskRecovery(SimTimeMs t, ComponentId disk) {
  return testbed_->config_db.RecoverDisk(t, disk);
}

Status FaultInjector::InjectIndexDrop(SimTimeMs t,
                                      const std::string& index_name) {
  // Catalog::DropIndex logs the kIndexDropped event with the "index"
  // attribute Module PD's what-if probe keys on.
  return testbed_->catalog.DropIndex(t, index_name);
}

Status FaultInjector::InjectParamChange(SimTimeMs t, const std::string& param,
                                        double new_value) {
  // The parameter vocabulary is the backend's own — injecting
  // "random_page_cost" on the MySQL backend is an error, exactly as it
  // would be on a real server.
  Result<double> old_value = testbed_->backend->GetParam(param);
  DIADS_RETURN_IF_ERROR(old_value.status());
  DIADS_RETURN_IF_ERROR(testbed_->backend->SetParam(param, new_value));
  SystemEvent event;
  event.time = t;
  event.type = EventType::kDbParamChanged;
  event.subject = testbed_->database;
  event.description = StrFormat("parameter '%s' changed %.2f -> %.2f",
                                param.c_str(), *old_value, new_value);
  event.attrs["param"] = param;
  event.attrs["old_value"] = FormatDouble(*old_value, 6);
  event.attrs["new_value"] = FormatDouble(new_value, 6);
  return testbed_->event_log.Append(std::move(event));
}

Status FaultInjector::InjectAnalyze(SimTimeMs t, const std::string& table) {
  // The backend's explicit statistics refresh; either engine logs
  // kTableStatsChanged with the table/old_row_count attrs Module PD's
  // what-if probe keys on.
  return testbed_->backend->Analyze(t, table);
}

Status FaultInjector::InjectCpuSaturation(const TimeInterval& window,
                                          double utilization) {
  return testbed_->perf_model.AddCpuLoad(testbed_->db_server, window,
                                         utilization);
}

Status FaultInjector::InjectFabricStream(const TimeInterval& window,
                                         double mb_per_sec,
                                         std::vector<ComponentId> ports) {
  return testbed_->perf_model.AddFabricLoad(window, mb_per_sec,
                                            std::move(ports));
}

Status FaultInjector::InjectPathProbes(ComponentId volume,
                                       const TimeInterval& window) {
  Testbed& tb = *testbed_;
  DIADS_ASSIGN_OR_RETURN(std::vector<san::IoPath> paths,
                         tb.topology.ResolvePaths(tb.db_server, volume));
  for (const san::IoPath& path : paths) {
    san::LoadEvent event;
    event.volume = volume;
    event.interval = window;
    event.profile.read_iops = 1.0;  // Negligible disk demand; the point is
    event.profile.avg_block_kb = 8.0;  // keeping the path "warm".
    event.path_ports = path.ports;
    event.path_switches = path.switches;
    DIADS_RETURN_IF_ERROR(tb.perf_model.AddLoad(std::move(event)));
  }
  return Status::Ok();
}

Status FaultInjector::InjectHbaFailure(SimTimeMs t, ComponentId hba) {
  return testbed_->config_db.FailHba(t, hba);
}

Status FaultInjector::InjectPortDegradation(SimTimeMs t, ComponentId port,
                                            double capacity_factor) {
  return testbed_->config_db.DegradePort(t, port, capacity_factor);
}

Status FaultInjector::InjectCompressionDrift(SimTimeMs t,
                                             const std::string& table,
                                             double bloat) {
  Testbed& tb = *testbed_;
  // The storage-layout change itself: every scan of the table now reads
  // `bloat` times the pages for the same logical rows. Row counts and
  // optimizer statistics are untouched — the optimizer keeps the same plan
  // and the same estimates, which is exactly the gap DIADS has to close.
  DIADS_RETURN_IF_ERROR(tb.catalog.SetTableStorageBloatSilently(table, bloat));

  Result<const db::TableDef*> def = tb.catalog.FindTable(table);
  DIADS_RETURN_IF_ERROR(def.status());
  // The engine's churn monitor notices the ratio moving (it tracks bytes
  // written vs bytes stored); it logs the drift but cannot say what the
  // drift costs any particular query.
  SystemEvent event;
  event.time = t;
  event.type = EventType::kCompressionRatioDrifted;
  event.subject = (*def)->id;
  event.description = StrFormat(
      "segment compression ratio on '%s' degraded under churny DML "
      "(~%.1fx pages per logical row)",
      table.c_str(), bloat);
  event.attrs["table"] = table;
  event.attrs["bloat"] = FormatDouble(bloat, 3);
  return tb.event_log.Append(std::move(event));
}

Status FaultInjector::InjectZoneMapStaleness(SimTimeMs t,
                                             const std::string& table,
                                             double bloat) {
  Testbed& tb = *testbed_;
  // Stale min/max metadata only hurts the scans that consult it: every
  // zone map on the table stops pruning, so zone-pruned scans read `bloat`
  // times the segments. Full vector scans never consult zone maps and are
  // unaffected — that operator-level asymmetry is C2's fingerprint.
  std::vector<const db::IndexDef*> zone_maps = tb.catalog.IndexesOn(table, "");
  if (zone_maps.empty()) {
    return Status::InvalidArgument("no zone maps on table: " + table);
  }
  for (const db::IndexDef* zm : zone_maps) {
    DIADS_RETURN_IF_ERROR(
        tb.catalog.SetIndexScanBloatSilently(zm->name, bloat));
  }

  Result<const db::TableDef*> def = tb.catalog.FindTable(table);
  DIADS_RETURN_IF_ERROR(def.status());
  SystemEvent event;
  event.time = t;
  event.type = EventType::kZoneMapStale;
  event.subject = (*def)->id;
  event.description = StrFormat(
      "zone maps on '%s' stale after unsorted loads; segment pruning "
      "ineffective (%zu zone maps affected)",
      table.c_str(), zone_maps.size());
  event.attrs["table"] = table;
  return tb.event_log.Append(std::move(event));
}

Status FaultInjector::InjectRetrySnowball(ComponentId volume,
                                          const TimeInterval& window,
                                          SimTimeMs escalation) {
  Testbed& tb = *testbed_;
  const std::string name = tb.registry.NameOf(volume);
  // The original (unmonitored) queue pressure: write-heavy enough that the
  // volume's interval-averaged latency crosses the collector's 25 ms
  // degraded-volume trigger well before the storm alarm fires (the
  // retry-storm symptom keys on that ordering).
  san::IoProfile base;
  base.read_iops = 40.0;
  base.write_iops = 160.0;
  base.seq_fraction = 0.25;
  DIADS_RETURN_IF_ERROR(workloads_.StartSteady(
      volume, window, base, /*log_events=*/false,
      StrFormat("queue pressure on %s", name.c_str())));

  // Timed-out I/Os get reissued: extra demand on an already-saturated
  // volume, which is what makes the storm feed itself.
  const SimTimeMs storm_t = window.begin + escalation;
  san::IoProfile retries;
  retries.read_iops = 55.0;
  retries.write_iops = 70.0;
  retries.seq_fraction = 0.1;
  DIADS_RETURN_IF_ERROR(workloads_.StartSteady(
      volume, TimeInterval{storm_t, window.end}, retries,
      /*log_events=*/false,
      StrFormat("retry amplification on %s", name.c_str())));

  // The one observable: the multipath driver's retry-storm alarm.
  SystemEvent event;
  event.time = storm_t;
  event.type = EventType::kRetryStormDetected;
  event.subject = volume;
  event.description = StrFormat(
      "I/O retry storm detected on %s (timed-out requests reissued)",
      name.c_str());
  return tb.event_log.Append(std::move(event));
}

}  // namespace diads::workload
