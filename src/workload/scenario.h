// The evaluation scenarios (Table 1 of the paper, plus plan-change extras).
//
// Each scenario builds a fresh Figure-1 testbed, executes a history of
// periodic Q2 runs (the report-generation workload), injects its fault(s)
// at the transition point, executes the post-fault runs, collects the
// monitors over the whole span, and labels runs by time window — the
// paper's "all runs from 8 AM to 2 PM were satisfactory" style of
// declarative labelling.
//
//   S1  SAN misconfiguration -> contention in V1             (Table 1, row 1)
//   S1b S1 plus bursty, low-impact extra load on V2          (Section 5 twist)
//   S2  External workloads on V1 and V2; only V1's matters   (row 2)
//   S3  DML changes data properties; propagates to the SAN   (row 3)
//   S4  Concurrent DB (data properties) + SAN (misconfig)    (row 4)
//   S5  Lock contention + spurious V2 contention symptoms    (row 5)
//   S6  Index drop changes the plan                          (Module PD)
//   S7  cost-parameter change flips the plan                 (Module PD)
//   S8  ANALYZE after silent data drift changes the plan     (Module PD)
//   S9  Database server CPU saturation                       (Section 6's
//   S10 RAID rebuild on V1's pool                             injector list:
//   S11 Disk failure in V1's pool                             "server, disk,
//                                                             or volume
//                                                             contention,
//                                                             RAID rebuilds")
//
// The F family runs on the dual-fabric multipath testbed instead:
//   F1  HBA failure masked by path failover; the surviving path congests
//   F2  A degraded port unbalances the multipath split
//   F3  RAID rebuild whose replication stream crosses a shared ISL
//   F4  I/O retry storm snowballs an ordinary slowdown
//
// The C family is column-store-native and only runs when the testbed's
// backend is the columnar engine (other engines have no segments to
// degrade; RunScenario rejects the combination):
//   C1  Compression-ratio drift inflates every scan of a table
//   C2  Stale zone maps defeat segment pruning on zone-pruned scans
#ifndef DIADS_WORKLOAD_SCENARIO_H_
#define DIADS_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "apg/apg.h"
#include "diads/diagnosis.h"
#include "workload/fault_injector.h"
#include "workload/testbed.h"

namespace diads::workload {

enum class ScenarioId {
  kS1SanMisconfiguration,
  kS1bBurstyV2,
  kS2DualExternalContention,
  kS3DataPropertyChange,
  kS4ConcurrentDbSan,
  kS5LockingWithNoise,
  kS6IndexDrop,
  kS7ParamChange,
  kS8AnalyzeAfterDrift,
  kS9CpuSaturation,
  kS10RaidRebuild,
  kS11DiskFailure,
  // Failover family: runs on the dual-fabric multipath testbed
  // (BuildMultipathTestbed) instead of Figure-1.
  kF1HbaFailover,
  kF2MultipathImbalance,
  kF3IslRebuildCrosstalk,
  kF4RetrySnowball,
  // Column-store family: requires TestbedOptions::backend == kColumnar.
  kC1CompressionDrift,
  kC2ZoneMapStale,
};

const char* ScenarioName(ScenarioId id);
const char* ScenarioDescription(ScenarioId id);

struct ScenarioOptions {
  uint64_t seed = 42;
  int satisfactory_runs = 20;
  int unsatisfactory_runs = 10;
  SimTimeMs period = Minutes(30);     ///< Gap between run starts.
  SimTimeMs start = Hours(8);         ///< Day-0 08:00.
  TestbedOptions testbed;
};

/// What the injector actually did — the answer key for evaluation.
struct GroundTruthCause {
  diag::RootCauseType type;
  std::string subject_name;  ///< Registry name ("V1", "table:partsupp", ...).
  bool primary = true;       ///< False for injected-but-negligible faults.
};

/// A finished scenario: the testbed (owning all state), the APG of the
/// diagnosed plan, labelled windows, and the ground truth.
struct ScenarioOutput {
  std::unique_ptr<Testbed> testbed;
  std::unique_ptr<apg::Apg> apg;
  TimeInterval satisfactory_window;
  TimeInterval unsatisfactory_window;
  std::vector<GroundTruthCause> ground_truth;
  ScenarioId id = ScenarioId::kS1SanMisconfiguration;

  /// Assembles the DiagnosisContext over this scenario's state. The output
  /// borrows from `testbed` and `apg`; keep the ScenarioOutput alive.
  diag::DiagnosisContext MakeContext() const;
};

/// Runs a scenario end to end.
Result<ScenarioOutput> RunScenario(ScenarioId id,
                                   const ScenarioOptions& options = {});

/// True if `cause` matches a ground-truth entry (type and, when the truth
/// names a subject, subject).
bool MatchesGroundTruth(const GroundTruthCause& truth,
                        const diag::RootCause& cause,
                        const ComponentRegistry& registry);

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_SCENARIO_H_
