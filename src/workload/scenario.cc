#include "workload/scenario.h"

#include <algorithm>

#include "common/strings.h"

namespace diads::workload {

const char* ScenarioName(ScenarioId id) {
  switch (id) {
    case ScenarioId::kS1SanMisconfiguration:
      return "S1-san-misconfiguration";
    case ScenarioId::kS1bBurstyV2:
      return "S1b-bursty-v2";
    case ScenarioId::kS2DualExternalContention:
      return "S2-dual-external-contention";
    case ScenarioId::kS3DataPropertyChange:
      return "S3-data-property-change";
    case ScenarioId::kS4ConcurrentDbSan:
      return "S4-concurrent-db-san";
    case ScenarioId::kS5LockingWithNoise:
      return "S5-locking-with-noise";
    case ScenarioId::kS6IndexDrop:
      return "S6-index-drop";
    case ScenarioId::kS7ParamChange:
      return "S7-param-change";
    case ScenarioId::kS8AnalyzeAfterDrift:
      return "S8-analyze-after-drift";
    case ScenarioId::kS9CpuSaturation:
      return "S9-cpu-saturation";
    case ScenarioId::kS10RaidRebuild:
      return "S10-raid-rebuild";
    case ScenarioId::kS11DiskFailure:
      return "S11-disk-failure";
    case ScenarioId::kF1HbaFailover:
      return "F1-hba-failover";
    case ScenarioId::kF2MultipathImbalance:
      return "F2-multipath-imbalance";
    case ScenarioId::kF3IslRebuildCrosstalk:
      return "F3-isl-rebuild-crosstalk";
    case ScenarioId::kF4RetrySnowball:
      return "F4-retry-snowball";
    case ScenarioId::kC1CompressionDrift:
      return "C1-compression-drift";
    case ScenarioId::kC2ZoneMapStale:
      return "C2-zone-map-stale";
  }
  return "?";
}

const char* ScenarioDescription(ScenarioId id) {
  switch (id) {
    case ScenarioId::kS1SanMisconfiguration:
      return "SAN misconfiguration leading to contention in volume V1";
    case ScenarioId::kS1bBurstyV2:
      return "S1 plus bursty extra load on V2 with little query impact";
    case ScenarioId::kS2DualExternalContention:
      return "Contention caused by external workloads on volumes V1 and V2; "
             "with only the former affecting query performance";
    case ScenarioId::kS3DataPropertyChange:
      return "SQL DML causes a subtle change in data properties; problem "
             "propagates to SAN causing volume contention";
    case ScenarioId::kS4ConcurrentDbSan:
      return "Concurrent DB (change in data properties) and SAN "
             "(misconfiguration) problems";
    case ScenarioId::kS5LockingWithNoise:
      return "DB problem (locking-based) and spurious symptoms of volume "
             "contention due to noise";
    case ScenarioId::kS6IndexDrop:
      return "Index drop forces the optimizer onto a slower plan";
    case ScenarioId::kS7ParamChange:
      return "cost-parameter misconfiguration flips the plan "
             "(random_page_cost on PostgreSQL, io_block_read_cost on MySQL, "
             "zone_map_consult_cost on the columnar engine)";
    case ScenarioId::kS8AnalyzeAfterDrift:
      return "ANALYZE after silent data drift changes the plan";
    case ScenarioId::kS9CpuSaturation:
      return "A competing job saturates the database server's CPUs";
    case ScenarioId::kS10RaidRebuild:
      return "RAID rebuild on V1's pool steals backend bandwidth";
    case ScenarioId::kS11DiskFailure:
      return "Disk failure concentrates V1's load on the surviving disks";
    case ScenarioId::kF1HbaFailover:
      return "HBA failure masked by path failover; the surviving path "
             "congests under the folded-over traffic";
    case ScenarioId::kF2MultipathImbalance:
      return "A port negotiates down to half bandwidth, unbalancing the "
             "multipath split without any routing change";
    case ScenarioId::kF3IslRebuildCrosstalk:
      return "RAID rebuild whose replication stream crosses the shared "
             "inter-switch link of the active fabric";
    case ScenarioId::kF4RetrySnowball:
      return "Timed-out I/Os get reissued into an already-slow volume, "
             "snowballing into a retry storm";
    case ScenarioId::kC1CompressionDrift:
      return "Segment compression ratio drifts under churny DML, inflating "
             "every scan of the table without changing a single row count";
    case ScenarioId::kC2ZoneMapStale:
      return "Stale zone maps defeat segment pruning: zone-pruned scans "
             "read segments they should skip, full vector scans are "
             "unaffected";
  }
  return "?";
}

diag::DiagnosisContext ScenarioOutput::MakeContext() const {
  diag::DiagnosisContext ctx;
  ctx.runs = &testbed->runs;
  ctx.query = "Q2";
  ctx.store = &testbed->store;
  ctx.events = &testbed->event_log;
  ctx.apg = apg.get();
  ctx.topology = &testbed->topology;
  ctx.catalog = &testbed->catalog;
  ctx.database = testbed->database;
  ctx.plan_whatif_probe = testbed->MakeWhatIfProber();
  return ctx;
}

bool MatchesGroundTruth(const GroundTruthCause& truth,
                        const diag::RootCause& cause,
                        const ComponentRegistry& registry) {
  if (truth.type != cause.type) return false;
  if (truth.subject_name.empty()) return true;
  if (!registry.Contains(cause.subject)) return false;
  return registry.NameOf(cause.subject) == truth.subject_name;
}

namespace {

/// Executes `count` Q2 runs starting at `*cursor`, advancing it by the
/// period. Returns the covered interval.
Result<TimeInterval> RunBatch(Testbed& tb, int count, SimTimeMs* cursor,
                              SimTimeMs period,
                              std::shared_ptr<const db::Plan> plan) {
  const SimTimeMs begin = *cursor;
  SimTimeMs last_end = begin;
  for (int i = 0; i < count; ++i) {
    Result<int> run = tb.RunQ2(*cursor, plan);
    DIADS_RETURN_IF_ERROR(run.status());
    Result<const db::QueryRunRecord*> record = tb.runs.FindRun(*run);
    DIADS_RETURN_IF_ERROR(record.status());
    last_end = (*record)->interval.end;
    *cursor += period;
    if (*cursor < last_end) {
      // A run overran its slot (heavily degraded system): keep runs
      // non-overlapping, the next starts right after with a small gap.
      *cursor = last_end + Minutes(1);
    }
  }
  return TimeInterval{begin, last_end};
}

/// The ambient background every scenario shares: app workloads on V3/V4.
Status StartBackground(Testbed& tb, ExternalWorkloadGen& gen,
                       const TimeInterval& span) {
  // 20-minute re-roll: enough run-to-run variance to keep every KDE
  // baseline honest, without multi-hour drifts that would make healthy
  // volumes look anomalous between the two labelling windows.
  san::IoProfile v3_profile;
  v3_profile.read_iops = 25;
  v3_profile.write_iops = 12;
  v3_profile.seq_fraction = 0.4;
  DIADS_RETURN_IF_ERROR(
      gen.StartAmbient(tb.v3, span, v3_profile, Minutes(20)));
  san::IoProfile v4_profile;
  v4_profile.read_iops = 35;
  v4_profile.write_iops = 15;
  v4_profile.seq_fraction = 0.5;
  DIADS_RETURN_IF_ERROR(
      gen.StartAmbient(tb.v4, span, v4_profile, Minutes(20)));
  // Light steady CPU noise on the database server.
  return tb.perf_model.AddCpuLoad(tb.db_server, span, 0.08);
}

}  // namespace

Result<ScenarioOutput> RunScenario(ScenarioId id,
                                   const ScenarioOptions& options) {
  ScenarioOptions opts = options;
  opts.testbed.seed = options.seed;
  const bool multipath_scenario = id == ScenarioId::kF1HbaFailover ||
                                  id == ScenarioId::kF2MultipathImbalance ||
                                  id == ScenarioId::kF3IslRebuildCrosstalk ||
                                  id == ScenarioId::kF4RetrySnowball;
  const bool columnar_scenario = id == ScenarioId::kC1CompressionDrift ||
                                 id == ScenarioId::kC2ZoneMapStale;
  if (columnar_scenario &&
      opts.testbed.backend != db::BackendKind::kColumnar) {
    return Status::InvalidArgument(
        StrFormat("%s is column-store-native; backend '%s' has no segments",
                  ScenarioName(id),
                  db::BackendKindName(opts.testbed.backend)));
  }
  DIADS_ASSIGN_OR_RETURN(std::unique_ptr<Testbed> tb,
                         multipath_scenario
                             ? BuildMultipathTestbed(opts.testbed)
                             : BuildFigure1Testbed(opts.testbed));
  ExternalWorkloadGen workloads(tb.get());
  FaultInjector injector(tb.get());

  const SimTimeMs t0 = opts.start;
  // Generous horizon estimate; background load must cover everything.
  const SimTimeMs horizon =
      t0 + opts.period * (opts.satisfactory_runs + opts.unsatisfactory_runs +
                          8) +
      Hours(6);
  DIADS_RETURN_IF_ERROR(
      StartBackground(*tb, workloads, TimeInterval{t0 - Hours(1), horizon}));

  const bool plan_change_scenario = id == ScenarioId::kS6IndexDrop ||
                                    id == ScenarioId::kS7ParamChange ||
                                    id == ScenarioId::kS8AnalyzeAfterDrift;

  // Pre-fault plan: the Figure-1 paper plan for the Table-1 scenarios, the
  // optimizer's choice for the plan-change scenarios.
  std::shared_ptr<const db::Plan> pre_plan = tb->paper_plan;
  if (plan_change_scenario) {
    if (id == ScenarioId::kS8AnalyzeAfterDrift) {
      // Silent drift before the history: the table grew, the optimizer
      // does not know yet. The satisfactory era runs a stale-statistics
      // plan; the ANALYZE at the fault point flips the join strategy. The
      // drift size is backend-specific (how much growth the engine's cost
      // model absorbs before fresh stats change the plan), and the silent
      // DML path keeps it invisible on every backend (on MySQL this models
      // a STATS_AUTO_RECALC=0 table).
      const db::StatsDriftSpec drift = tb->backend->AnalyzeDriftSpec();
      DIADS_RETURN_IF_ERROR(tb->backend->ApplyDmlSilently(
          t0 - Hours(2), drift.table, drift.factor,
          StrFormat("silent data drift (%s grew %.0fx) before the run "
                    "history",
                    drift.table.c_str(), drift.factor)));
    }
    DIADS_ASSIGN_OR_RETURN(db::Plan plan, tb->OptimizeQ2());
    pre_plan = std::make_shared<const db::Plan>(std::move(plan));
  }

  SimTimeMs cursor = t0;
  DIADS_ASSIGN_OR_RETURN(
      TimeInterval sat_span,
      RunBatch(*tb, opts.satisfactory_runs, &cursor, opts.period, pre_plan));

  // --- Fault injection at the transition ----------------------------------
  const SimTimeMs t_fault = cursor + Minutes(2);
  cursor = t_fault + Minutes(8);
  const TimeInterval fault_window{t_fault, horizon};
  ScenarioOutput out;
  out.id = id;

  switch (id) {
    case ScenarioId::kS1SanMisconfiguration:
      DIADS_RETURN_IF_ERROR(
          injector.InjectSanMisconfiguration(t_fault, fault_window));
      out.ground_truth = {{diag::RootCauseType::kSanMisconfigurationContention,
                           "V1", true}};
      break;
    case ScenarioId::kS1bBurstyV2:
      DIADS_RETURN_IF_ERROR(
          injector.InjectSanMisconfiguration(t_fault, fault_window));
      DIADS_RETURN_IF_ERROR(injector.InjectBurstyLoad(
          tb->v2, fault_window, 620.0, Minutes(5), Seconds(45)));
      out.ground_truth = {{diag::RootCauseType::kSanMisconfigurationContention,
                           "V1", true}};
      break;
    case ScenarioId::kS2DualExternalContention:
      DIADS_RETURN_IF_ERROR(injector.InjectExternalContention(
          tb->v1, fault_window, 30.0, 95.0));
      DIADS_RETURN_IF_ERROR(injector.InjectExternalContention(
          tb->v2, fault_window, 80.0, 20.0));
      out.ground_truth = {
          {diag::RootCauseType::kExternalWorkloadContention, "V1", true}};
      break;
    case ScenarioId::kS3DataPropertyChange:
      DIADS_RETURN_IF_ERROR(
          injector.InjectDataPropertyChange(t_fault, "partsupp", 1.7));
      out.ground_truth = {{diag::RootCauseType::kDataPropertyChange,
                           "table:partsupp", true}};
      break;
    case ScenarioId::kS4ConcurrentDbSan:
      DIADS_RETURN_IF_ERROR(
          injector.InjectDataPropertyChange(t_fault, "partsupp", 1.5));
      DIADS_RETURN_IF_ERROR(injector.InjectSanMisconfiguration(
          t_fault + Minutes(1), fault_window));
      out.ground_truth = {
          {diag::RootCauseType::kSanMisconfigurationContention, "V1", true},
          {diag::RootCauseType::kDataPropertyChange, "table:partsupp", true}};
      break;
    case ScenarioId::kS5LockingWithNoise:
      DIADS_RETURN_IF_ERROR(injector.InjectLockContention(
          fault_window, "partsupp", Seconds(40)));
      DIADS_RETURN_IF_ERROR(
          injector.InjectSpuriousVolumeSymptoms(tb->v2, fault_window, 1.5));
      out.ground_truth = {
          {diag::RootCauseType::kLockContention, "table:partsupp", true}};
      break;
    case ScenarioId::kS6IndexDrop:
      DIADS_RETURN_IF_ERROR(
          injector.InjectIndexDrop(t_fault, "partsupp_partkey_idx"));
      out.ground_truth = {{diag::RootCauseType::kPlanChange, "", true}};
      break;
    case ScenarioId::kS7ParamChange: {
      // Each engine has its own plan-flipping misconfiguration knob
      // (random_page_cost has no MySQL analogue).
      const db::PlanMisconfigKnob knob = tb->backend->MisconfigKnob();
      DIADS_RETURN_IF_ERROR(
          injector.InjectParamChange(t_fault, knob.param, knob.bad_value));
      out.ground_truth = {{diag::RootCauseType::kPlanChange, "", true}};
      break;
    }
    case ScenarioId::kS8AnalyzeAfterDrift:
      DIADS_RETURN_IF_ERROR(injector.InjectAnalyze(
          t_fault, tb->backend->AnalyzeDriftSpec().table));
      out.ground_truth = {{diag::RootCauseType::kPlanChange, "", true}};
      break;
    case ScenarioId::kS9CpuSaturation:
      DIADS_RETURN_IF_ERROR(
          injector.InjectCpuSaturation(fault_window, 0.72));
      out.ground_truth = {{diag::RootCauseType::kCpuSaturation,
                           tb->registry.NameOf(tb->database), true}};
      break;
    case ScenarioId::kS10RaidRebuild:
      DIADS_RETURN_IF_ERROR(
          injector.InjectRaidRebuild(tb->pool1, fault_window, 0.45));
      out.ground_truth = {{diag::RootCauseType::kRaidRebuild, "V1", true}};
      break;
    case ScenarioId::kS11DiskFailure: {
      Result<ComponentId> disk1 = tb->registry.FindByName("disk1");
      DIADS_RETURN_IF_ERROR(disk1.status());
      DIADS_RETURN_IF_ERROR(injector.InjectDiskFailure(t_fault, *disk1));
      // The array reacts as a real DS6000 would: an automatic RAID rebuild
      // onto the hot spare, stealing backend bandwidth from the survivors.
      DIADS_RETURN_IF_ERROR(injector.InjectRaidRebuild(
          tb->pool1, TimeInterval{t_fault + Minutes(1), fault_window.end},
          0.30));
      out.ground_truth = {{diag::RootCauseType::kDiskFailure, "V1", true},
                          {diag::RootCauseType::kRaidRebuild, "V1", true}};
      break;
    }
    case ScenarioId::kF1HbaFailover: {
      // A mirror stream of 106.25 MB/s rides V1's resolved paths the whole
      // time. Split across both 1 Gbps fabrics it is 0.425 utilization per
      // path — below the congestion threshold, so the satisfactory era is
      // genuinely quiet. (Load events may be registered in any time order;
      // a sub-threshold stream adds exactly nothing to past run latencies.)
      DIADS_ASSIGN_OR_RETURN(
          std::vector<san::IoPath> pre_paths,
          tb->topology.ResolvePaths(tb->db_server, tb->v1));
      const TimeInterval pre_window{t0 - Hours(1), t_fault};
      for (const san::IoPath& path : pre_paths) {
        DIADS_RETURN_IF_ERROR(injector.InjectFabricStream(
            pre_window, 106.25 / static_cast<double>(pre_paths.size()),
            path.ports));
      }
      DIADS_RETURN_IF_ERROR(injector.InjectPathProbes(tb->v1, pre_window));
      // The fault: hba0 dies. The config database logs the failure plus the
      // path failovers it forces; queries keep running — the failure is
      // masked — but the whole stream folds onto the surviving fabric-B
      // path: 0.85 utilization, past the congestion threshold.
      DIADS_RETURN_IF_ERROR(injector.InjectHbaFailure(t_fault, tb->db_hba0));
      DIADS_ASSIGN_OR_RETURN(
          std::vector<san::IoPath> post_paths,
          tb->topology.ResolvePaths(tb->db_server, tb->v1));
      for (const san::IoPath& path : post_paths) {
        DIADS_RETURN_IF_ERROR(injector.InjectFabricStream(
            fault_window, 106.25 / static_cast<double>(post_paths.size()),
            path.ports));
      }
      DIADS_RETURN_IF_ERROR(injector.InjectPathProbes(tb->v1, fault_window));
      out.ground_truth = {
          {diag::RootCauseType::kHbaFailure, "dbserver-hba0", true}};
      break;
    }
    case ScenarioId::kF2MultipathImbalance: {
      // At the fault point the fabric-A subsystem port negotiates down to
      // half bandwidth just as a balanced 106.25 MB/s replication cycle
      // starts across both paths: path B runs at a comfortable 0.425
      // utilization while the degraded port grinds at 0.85 of its reduced
      // capacity. (Port capacity, like S11's disk failure, has no time
      // dimension in the topology, so the stream is confined to the fault
      // window to keep the satisfactory era's intervals clean.)
      DIADS_ASSIGN_OR_RETURN(
          std::vector<san::IoPath> paths,
          tb->topology.ResolvePaths(tb->db_server, tb->v1));
      for (const san::IoPath& path : paths) {
        DIADS_RETURN_IF_ERROR(injector.InjectFabricStream(
            fault_window, 106.25 / static_cast<double>(paths.size()),
            path.ports));
      }
      DIADS_RETURN_IF_ERROR(injector.InjectPathProbes(
          tb->v1, TimeInterval{t0 - Hours(1), horizon}));
      DIADS_RETURN_IF_ERROR(injector.InjectPortDegradation(
          t_fault, tb->subsystem_port0, 0.5));
      out.ground_truth = {
          {diag::RootCauseType::kMultipathImbalance, "ds6000-pA", true}};
      break;
    }
    case ScenarioId::kF3IslRebuildCrosstalk: {
      // RAID rebuild on V2's pool, whose replication stream crosses fabric
      // A's inter-switch link — the one fabric segment every path-A flow
      // shares — so the rebuild hurts twice: backend bandwidth on P2's
      // disks, congestion on the active fabric.
      // 87.5 MB/s on a 1 Gbps ISL = 0.7 utilization: a moderate ~7 ms
      // congestion tax on every path-A flow — enough to show up on the ISL
      // port counters, not enough to drown out the rebuild itself.
      DIADS_RETURN_IF_ERROR(
          injector.InjectRaidRebuild(tb->pool2, fault_window, 0.45));
      DIADS_RETURN_IF_ERROR(injector.InjectFabricStream(
          fault_window, 87.5, {tb->isl_a0, tb->isl_a1}));
      // Path probes keep the ISL's utilization visible in both volumes'
      // fabric latency (congestion is charged through volume-bound events
      // that carry path ports; the raw stream alone only moves the port
      // counters).
      DIADS_RETURN_IF_ERROR(injector.InjectPathProbes(
          tb->v1, TimeInterval{t0 - Hours(1), horizon}));
      DIADS_RETURN_IF_ERROR(injector.InjectPathProbes(
          tb->v2, TimeInterval{t0 - Hours(1), horizon}));
      out.ground_truth = {{diag::RootCauseType::kRaidRebuild, "V2", true}};
      break;
    }
    case ScenarioId::kF4RetrySnowball:
      DIADS_RETURN_IF_ERROR(
          injector.InjectRetrySnowball(tb->v1, fault_window, Minutes(15)));
      out.ground_truth = {{diag::RootCauseType::kRetryStorm, "V1", true}};
      break;
    case ScenarioId::kC1CompressionDrift:
      // partsupp carries both heavy leaves (the paper plan's V1 hot spot),
      // so the drift inflates exactly the scans whose I/O dominates Q2.
      DIADS_RETURN_IF_ERROR(
          injector.InjectCompressionDrift(t_fault, "partsupp", 2.2));
      out.ground_truth = {{diag::RootCauseType::kCompressionRatioDrift,
                           "table:partsupp", true}};
      break;
    case ScenarioId::kC2ZoneMapStale:
      DIADS_RETURN_IF_ERROR(
          injector.InjectZoneMapStaleness(t_fault, "partsupp", 2.5));
      out.ground_truth = {{diag::RootCauseType::kZoneMapStaleness,
                           "table:partsupp", true}};
      break;
  }

  // Post-fault plan: re-optimized for plan-change scenarios.
  std::shared_ptr<const db::Plan> post_plan = pre_plan;
  if (plan_change_scenario) {
    DIADS_ASSIGN_OR_RETURN(db::Plan plan, tb->OptimizeQ2());
    post_plan = std::make_shared<const db::Plan>(std::move(plan));
  }

  DIADS_ASSIGN_OR_RETURN(
      TimeInterval unsat_span,
      RunBatch(*tb, opts.unsatisfactory_runs, &cursor, opts.period,
               post_plan));

  // --- Monitoring, labelling, APG ------------------------------------------
  DIADS_RETURN_IF_ERROR(
      tb->CollectMonitors(t0 - Minutes(30), unsat_span.end + Minutes(30)));
  DIADS_RETURN_IF_ERROR(tb->runs.LabelByTimeWindow(
      "Q2", TimeInterval{t0 - Minutes(1), t_fault},
      db::RunLabel::kSatisfactory));
  DIADS_RETURN_IF_ERROR(tb->runs.LabelByTimeWindow(
      "Q2", TimeInterval{t_fault, unsat_span.end + Minutes(1)},
      db::RunLabel::kUnsatisfactory));

  // The APG is built for the plan under diagnosis: the shared plan for
  // same-plan scenarios, the *pre-fault* plan for plan-change ones (PD
  // stops the drill-down there anyway).
  DIADS_ASSIGN_OR_RETURN(apg::Apg apg, tb->BuildApg(pre_plan));
  out.apg = std::make_unique<apg::Apg>(std::move(apg));
  out.satisfactory_window = sat_span;
  out.unsatisfactory_window = unsat_span;
  out.testbed = std::move(tb);
  return out;
}

}  // namespace diads::workload
