// Streaming-detection replay over a finished scenario.
//
// RunScenario populates its monitoring store in one batch at the end
// (CollectMonitors over the whole span), but a deployed detector sees the
// same samples one append at a time, in time order. ReplayScenarioDetection
// reconstructs that live view: it drains the scenario store's samples,
// globally sorts them by (time, component, metric) — a deterministic
// merge of what the per-component collectors would have interleaved — and
// re-appends them into a fresh replica store watched by a SlowdownDetector.
//
// The auto-submitted diagnosis question, however, is asked over the
// scenario's *canonical* context (ScenarioOutput::MakeContext), exactly as
// an administrator would ask it — so its report digest is comparable
// byte-for-byte with the request-driven golden table. The replica exists
// only to drive the sketches.
//
// `cutoff` truncates the replay: the quiet-fleet (false-positive)
// experiments stop at satisfactory_window.end, before any fault onset.
#ifndef DIADS_WORKLOAD_DETECT_REPLAY_H_
#define DIADS_WORKLOAD_DETECT_REPLAY_H_

#include <string>
#include <vector>

#include "detect/detector.h"
#include "workload/scenario.h"

namespace diads::workload {

struct DetectionReplayOptions {
  detect::DetectorOptions detector;
  /// Replay only samples with time <= cutoff; < 0 replays everything.
  SimTimeMs cutoff = -1;
  /// Workflow config of the auto-submitted diagnosis (defaults match the
  /// conformance suite's request-driven runs).
  diag::WorkflowConfig config;
  diag::ImpactMethod impact_method = diag::ImpactMethod::kInverseDependency;
  /// Optional span sink for detect_incident spans.
  obs::Tracer* tracer = nullptr;
};

struct DetectionReplayResult {
  detect::DetectorStats stats;
  std::vector<detect::Incident> incidents;
  size_t samples_replayed = 0;
  /// Auto-submitted diagnosis responses, in submit order (empty when the
  /// caller passed no engine or nothing confirmed).
  std::vector<engine::DiagnosisResponse> responses;
  /// Sim time from the end of the satisfactory window to the first
  /// incident's confirming sample; -1 when no incident was raised.
  SimTimeMs detection_latency = -1;
};

/// Replays `scenario`'s monitoring stream through a fresh SlowdownDetector
/// watching a replica store, auto-submitting diagnoses tagged
/// `tenant_name` to `engine` (may be null: incidents only). The scenario
/// must outlive the call (responses borrow its context).
Result<DetectionReplayResult> ReplayScenarioDetection(
    const ScenarioOutput& scenario, const std::string& tenant_name,
    engine::DiagnosisEngine* engine,
    const DetectionReplayOptions& options = {});

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_DETECT_REPLAY_H_
