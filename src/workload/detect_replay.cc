#include "workload/detect_replay.h"

#include <algorithm>
#include <tuple>

namespace diads::workload {
namespace {

struct ReplaySample {
  SimTimeMs time = 0;
  ComponentId component;
  monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  double value = 0;
};

}  // namespace

Result<DetectionReplayResult> ReplayScenarioDetection(
    const ScenarioOutput& scenario, const std::string& tenant_name,
    engine::DiagnosisEngine* engine, const DetectionReplayOptions& options) {
  if (scenario.testbed == nullptr) {
    return Status::InvalidArgument("scenario has no testbed");
  }

  // Flatten the batch-collected store into the stream a live deployment
  // would have appended. The sort key breaks same-instant ties by
  // (component, metric) so the replay order is deterministic regardless
  // of the store's hash-map iteration order.
  std::vector<ReplaySample> stream;
  scenario.testbed->store.ForEachSeries(
      [&](ComponentId component, monitor::MetricId metric,
          const std::vector<monitor::Sample>& samples) {
        for (const monitor::Sample& sample : samples) {
          if (options.cutoff >= 0 && sample.time > options.cutoff) continue;
          stream.push_back(
              ReplaySample{sample.time, component, metric, sample.value});
        }
      });
  std::sort(stream.begin(), stream.end(),
            [](const ReplaySample& a, const ReplaySample& b) {
              return std::make_tuple(a.time, a.component.value,
                                     static_cast<int>(a.metric)) <
                     std::make_tuple(b.time, b.component.value,
                                     static_cast<int>(b.metric));
            });

  detect::SlowdownDetector detector(options.detector, engine,
                                    options.tracer);
  monitor::TimeSeriesStore replica;
  detect::SlowdownDetector::RequestFactory factory;
  if (engine != nullptr) {
    factory = [&scenario, tenant_name, &options]() {
      engine::DiagnosisRequest request;
      request.ctx = scenario.MakeContext();
      request.config = options.config;
      request.impact_method = options.impact_method;
      request.tag = tenant_name;
      return request;
    };
  }
  DIADS_RETURN_IF_ERROR(
      detector.Watch(tenant_name, &replica, std::move(factory)));

  DetectionReplayResult out;
  for (const ReplaySample& sample : stream) {
    DIADS_RETURN_IF_ERROR(replica.Append(sample.component, sample.metric,
                                         sample.time, sample.value));
    ++out.samples_replayed;
  }

  detector.WaitForDiagnoses();
  detector.Unwatch(&replica);
  out.stats = detector.Stats();
  out.incidents = detector.Incidents();
  out.responses = detector.TakeResponses();
  if (!out.incidents.empty()) {
    out.detection_latency = out.incidents.front().confirmed_time -
                            scenario.satisfactory_window.end;
  }
  return out;
}

}  // namespace diads::workload
