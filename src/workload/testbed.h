// The Figure-1 testbed.
//
// Assembles the complete evaluation environment of Section 5: a database
// engine (PostgreSQL-like by default; see TestbedOptions::backend for the
// MySQL-like and column-store alternatives) on a RedHat server, connected
// through an edge/core FC
// fabric to an IBM DS6000-class storage subsystem with two RAID pools —
// P1 (disks 1-4) carrying volumes V1 and V3, P2 (disks 5-10) carrying V2
// and V4 — plus a second application server whose workloads drive V3/V4 as
// ambient background (the "production SAN ... shared by other applications"
// of Section 5). TPC-H tables are laid out with partsupp on V1 and
// everything else on V2, and the Figure-1 Q2 plan (25 operators, leaves O8
// and O22 on V1) is preloaded.
#ifndef DIADS_WORKLOAD_TESTBED_H_
#define DIADS_WORKLOAD_TESTBED_H_

#include <functional>
#include <memory>
#include <string>

#include "apg/apg.h"
#include "common/event_log.h"
#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/backend.h"
#include "db/buffer_pool.h"
#include "db/catalog.h"
#include "db/db_activity.h"
#include "db/executor.h"
#include "db/lock_manager.h"
#include "db/optimizer.h"
#include "db/query.h"
#include "db/run_record.h"
#include "db/tpch.h"
#include "monitor/noise.h"
#include "monitor/san_collector.h"
#include "monitor/timeseries.h"
#include "san/config_db.h"
#include "san/perf_model.h"
#include "san/topology.h"

namespace diads::workload {

/// Testbed construction knobs.
struct TestbedOptions {
  uint64_t seed = 42;
  /// The database engine under test (postgres, mysql, or columnar). Every
  /// knob below applies to every backend; engine-specific parameters live
  /// on the backend itself (see AllBackendKinds and BackendInit).
  db::BackendKind backend = db::BackendKind::kPostgres;
  double scale_factor = 1.0;
  SimTimeMs monitoring_interval = Minutes(5);
  /// Small enough that partsupp does not fully fit — its scans do real I/O.
  double buffer_pool_mb = 96.0;
  /// PostgreSQL parameter seed; ignored by the MySQL-like and columnar
  /// backends (tune those via backend->SetParam in their own vocabularies —
  /// see BackendInit).
  db::DbParams db_params;
  /// Multipath testbed only: additionally generate LargeFabricSpec() into
  /// the same registry/topology, pushing it past 1000 components — the
  /// bench_topology_scale configuration. The generated fabric is idle
  /// background structure; the monitored workload stays on the core testbed.
  bool add_scale_fabric = false;
  /// Production-realistic measurement noise (Section 1.1: coarse intervals
  /// make the data noisy): 12% multiplicative jitter, occasional spikes,
  /// and dropped samples (a dropped sample makes DIADS fall back to the
  /// previous, possibly stale, reading).
  monitor::NoiseSpec default_noise{/*gaussian_rel_sigma=*/0.12,
                                   /*spike_prob=*/0.02,
                                   /*spike_scale=*/2.5,
                                   /*dropout_prob=*/0.08,
                                   /*bias_fraction=*/0.0};
};

/// The assembled environment. Non-copyable, non-movable (members hold
/// pointers into each other); create via BuildFigure1Testbed.
class Testbed {
 public:
  explicit Testbed(const TestbedOptions& options);
  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  // --- Sub-systems, in dependency order -----------------------------------
  TestbedOptions options;
  SeededRng rng;
  ComponentRegistry registry;
  EventLog event_log;
  san::SanTopology topology;
  san::ConfigDatabase config_db;
  san::SanPerfModel perf_model;
  monitor::TimeSeriesStore store;
  monitor::NoiseModel noise;
  monitor::SanCollector san_collector;
  db::Catalog catalog;
  /// The engine under test: plan production, parameter vocabulary, DML /
  /// ANALYZE statistics semantics, executor cost translation. Owns the
  /// live engine parameters (what db_params used to be).
  std::unique_ptr<db::DbBackend> backend;
  db::BufferPool buffer_pool;
  db::LockManager locks;
  db::DbActivityModel activity;
  db::DbCollector db_collector;
  db::RunCatalog runs;
  apg::ApgBuilder apg_builder;

  // --- Named components (populated by BuildFigure1Testbed) ----------------
  ComponentId db_server, app_server;
  ComponentId db_hba_port, app_hba_port;
  ComponentId edge_switch1, core_switch, edge_switch2;
  ComponentId subsystem, subsystem_port0, subsystem_port1;
  ComponentId pool1, pool2;
  ComponentId v1, v2, v3, v4;
  // --- Multipath testbed components (BuildMultipathTestbed only) ----------
  // Invalid on the Figure-1 testbed. The db server gets one HBA per fabric
  // (db_hba_port is the fabric-A port); each fabric is a host switch and a
  // storage switch joined by an inter-switch link (isl_*).
  ComponentId db_hba0, db_hba1;
  ComponentId db_hba1_port;
  ComponentId fabric_a_host_switch, fabric_a_storage_switch;
  ComponentId fabric_b_host_switch, fabric_b_storage_switch;
  ComponentId isl_a0, isl_a1, isl_b0, isl_b1;
  ComponentId database;   ///< The kDatabase component.
  ComponentId query_q2;   ///< The kQuery component.
  ComponentId workload_v3, workload_v4;  ///< Ambient background workloads.

  db::QuerySpec q2_spec;
  std::shared_ptr<const db::Plan> paper_plan;

  // --- Operations -----------------------------------------------------------
  /// Executes one Q2 run at `at` with the given plan (nullptr = paper plan)
  /// and appends it to the run catalog. Returns the run id.
  Result<int> RunQ2(SimTimeMs at, std::shared_ptr<const db::Plan> plan = nullptr);

  /// Plans Q2 with the backend's optimizer, current statistics, and
  /// current engine parameters.
  Result<db::Plan> OptimizeQ2() const;

  /// Runs both collectors over [from, to) on the monitoring grid.
  Status CollectMonitors(SimTimeMs from, SimTimeMs to);

  /// Builds the APG for the given plan (default: the paper plan).
  Result<apg::Apg> BuildApg(std::shared_ptr<const db::Plan> plan = nullptr);

  /// Module PD's what-if probe over this testbed's catalog/params: reverts
  /// the event, re-optimizes Q2, restores, and returns the fingerprint.
  std::function<Result<uint64_t>(const SystemEvent&)> MakeWhatIfProber();

 private:
  db::Executor MakeExecutor();
};

/// Builds the Figure-1 environment. Fails only on internal inconsistencies
/// (the topology is validated before return).
Result<std::unique_ptr<Testbed>> BuildFigure1Testbed(
    const TestbedOptions& options = {});

/// Builds the dual-fabric multipath environment for the failover scenario
/// family (F1-F4): the same TPC-H catalog, Q2 paper plan, and P1/P2 storage
/// layout as Figure-1, but the db server reaches the subsystem through TWO
/// independent fabrics (one HBA per fabric, each a host switch and a
/// storage switch joined by an inter-switch link) over 1 Gbps ports — slow
/// enough that losing or degrading one path pushes the survivor past the
/// congestion threshold. With options.add_scale_fabric the topology
/// additionally carries the generated 1000+-component LargeFabricSpec()
/// fabric as idle structure (the scale-bench configuration).
Result<std::unique_ptr<Testbed>> BuildMultipathTestbed(
    const TestbedOptions& options = {});

}  // namespace diads::workload

#endif  // DIADS_WORKLOAD_TESTBED_H_
