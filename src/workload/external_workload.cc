#include "workload/external_workload.h"

#include <algorithm>

#include "common/strings.h"

namespace diads::workload {

ExternalWorkloadGen::ExternalWorkloadGen(Testbed* testbed)
    : testbed_(testbed), rng_(testbed->rng.Child("external-workload")) {}

Status ExternalWorkloadGen::LogWorkloadEvent(EventType type, SimTimeMs t,
                                             ComponentId volume,
                                             const std::string& description) {
  SystemEvent event;
  event.time = t;
  event.type = type;
  event.subject = volume;
  event.description = description;
  return testbed_->event_log.Append(std::move(event));
}

Status ExternalWorkloadGen::StartAmbient(ComponentId volume,
                                         const TimeInterval& window,
                                         const san::IoProfile& base,
                                         SimTimeMs chunk) {
  if (window.empty() || chunk <= 0) {
    return Status::InvalidArgument("ambient window/chunk must be non-empty");
  }
  for (SimTimeMs t = window.begin; t < window.end; t += chunk) {
    const double intensity = rng_.Uniform(0.6, 1.4);
    san::LoadEvent load;
    load.volume = volume;
    load.interval = TimeInterval{t, std::min(t + chunk, window.end)};
    load.profile = base;
    load.profile.read_iops *= intensity;
    load.profile.write_iops *= intensity;
    load.source = volume;
    DIADS_RETURN_IF_ERROR(testbed_->perf_model.AddLoad(std::move(load)));
  }
  return Status::Ok();
}

Status ExternalWorkloadGen::StartSteady(ComponentId volume,
                                        const TimeInterval& window,
                                        const san::IoProfile& profile,
                                        bool log_events,
                                        const std::string& description) {
  if (window.empty()) {
    return Status::InvalidArgument("steady-load window must be non-empty");
  }
  san::LoadEvent load;
  load.volume = volume;
  load.interval = window;
  load.profile = profile;
  load.source = volume;
  DIADS_RETURN_IF_ERROR(testbed_->perf_model.AddLoad(std::move(load)));
  if (log_events) {
    DIADS_RETURN_IF_ERROR(LogWorkloadEvent(
        EventType::kExternalWorkloadStarted, window.begin, volume,
        description + " started"));
  }
  return Status::Ok();
}

Status ExternalWorkloadGen::StartBursty(ComponentId volume,
                                        const TimeInterval& window,
                                        const san::IoProfile& burst_profile,
                                        SimTimeMs period, SimTimeMs burst_len,
                                        bool log_events,
                                        const std::string& description) {
  if (window.empty() || period <= 0 || burst_len <= 0 || burst_len > period) {
    return Status::InvalidArgument("invalid bursty-load parameters");
  }
  for (SimTimeMs t = window.begin; t < window.end; t += period) {
    // Jitter the burst position inside its period so bursts do not align
    // with the monitoring grid.
    const SimTimeMs slack = period - burst_len;
    const SimTimeMs offset =
        slack > 0 ? rng_.UniformInt(0, slack) : SimTimeMs{0};
    san::LoadEvent load;
    load.volume = volume;
    load.interval =
        TimeInterval{t + offset,
                     std::min(t + offset + burst_len, window.end)};
    if (load.interval.empty()) continue;
    load.profile = burst_profile;
    load.source = volume;
    DIADS_RETURN_IF_ERROR(testbed_->perf_model.AddLoad(std::move(load)));
  }
  if (log_events) {
    DIADS_RETURN_IF_ERROR(LogWorkloadEvent(
        EventType::kExternalWorkloadStarted, window.begin, volume,
        description + " started (bursty)"));
  }
  return Status::Ok();
}

}  // namespace diads::workload
