// Always-on slowdown detection: from request-driven to streaming diagnosis.
//
// The paper's workflow runs when an administrator asks "why did my query
// slow down?". At fleet scale nobody is watching every tenant, so the
// system must notice the slowdown itself. SlowdownDetector hooks a
// tenant's TimeSeriesStore appends (monitor::AppendListener), scores each
// sample against a per-series SeriesSketch, and walks a small state
// machine per series:
//
//   append ──> sketch (EWMA band + KDE-calibrated ceiling)
//     crossing? ──> windowed confirmation (K of the last W scored samples)
//       confirmed? ──> tenant incident (dedup + cooldown)
//         opened? ──> auto-submit a DiagnosisRequest to the engine
//
// Incident discipline — one incident, one diagnosis, not a storm:
//   * A tenant has at most one *active* incident. While it is active,
//     further series confirmations are suppressed (counted, not acted on)
//     — a fault that degrades twelve metrics asks the engine once.
//   * The incident closes when every confirmed series has re-entered its
//     band for `recovery_samples` consecutive samples. A later
//     re-crossing opens a *new* incident with a fresh (monotone)
//     sequence stamp.
//   * A sim-time cooldown between openings bounds the worst-case
//     diagnosis rate per tenant even for a flapping fault.
//   * The submitted request is a plain engine request (same cache key
//     rules), so it coalesces with — and its result is shared by — any
//     administrator asking the same question (single-flight), and its
//     report digest is byte-identical to the request-driven one.
//
// Threading: TimeSeriesStore is single-threaded per store, so OnAppend
// arrives on each tenant's (one) appending thread; distinct tenants may
// append concurrently. The per-append hot path is lock-free: series
// state is confined to the appending thread, and the hot counters are
// per-tenant single-writer atomics (relaxed load+store, no RMW) that
// Stats() aggregates. Cross-tenant state (sequence, incident log,
// incident counters, the watch table) uses shared atomics and two small
// mutexes touched only on rare events. Engine::Submit is thread-safe and
// called without any detector-wide lock held.
//
// Digest-neutrality: the detector observes appends and submits requests;
// it never mutates a store, a context, or a report. With no detector
// attached (or detection disabled) every byte of every report is
// unchanged — enforced by the conformance suite against the golden table.
#ifndef DIADS_DETECT_DETECTOR_H_
#define DIADS_DETECT_DETECTOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "detect/sketch.h"
#include "engine/engine.h"
#include "monitor/timeseries.h"
#include "obs/trace.h"

namespace diads::detect {

struct DetectorOptions {
  SketchOptions sketch;
  /// A series is confirmed anomalous when `confirmation_samples` of its
  /// last `window_samples` scored samples were crossings. Windowed rather
  /// than strictly consecutive: the report workload runs every ~30
  /// minutes against a 5-minute monitoring interval, so even a hard
  /// DB-side fault elevates only ~1 sample in 6 — the window must span
  /// several run periods for those crossings to accumulate. 5-of-32
  /// confirms a plan-change fault within ~4-5 run periods (~2 simulated
  /// hours) and a SAN-side fault (every sample elevated) within ~25
  /// minutes, while independent noise spikes (a few percent per sample)
  /// practically never put five crossings in one window — measured zero
  /// false confirmations across every scenario's quiet era.
  int confirmation_samples = 5;
  int window_samples = 32;
  /// Consecutive in-band samples before a confirmed series recovers.
  /// Defaults to the window length: recovery means the whole
  /// confirmation window went clean, so the once-per-run-period gaps of
  /// a sustained DB-side fault never flap the incident closed.
  int recovery_samples = 32;
  /// Minimum sim-time between incident openings per tenant.
  SimTimeMs cooldown = Minutes(30);
};

/// One raised incident (scoped to a tenant; the triggering series is the
/// first one whose confirmation opened it).
struct Incident {
  uint64_t sequence = 0;  ///< Detector-wide monotone; the generation stamp.
  std::string tenant;
  ComponentId component;  ///< Triggering series.
  monitor::MetricId metric = monitor::MetricId::kVolTotalIos;
  SimTimeMs onset_time = 0;      ///< First crossing of the confirming cluster.
  SimTimeMs confirmed_time = 0;  ///< Sample that confirmed.
  double value = 0;      ///< The confirming sample's value.
  double threshold = 0;  ///< The sketch threshold it exceeded.
};

/// Counter snapshot (all counters detector-lifetime monotone except the
/// two gauges at the bottom).
struct DetectorStats {
  uint64_t appends_observed = 0;  ///< Every OnAppend.
  uint64_t appends_scored = 0;    ///< Post-calibration scores.
  uint64_t series_tracked = 0;
  uint64_t series_calibrated = 0;
  uint64_t band_crossings = 0;
  uint64_t confirmations = 0;        ///< Series entering confirmed state.
  uint64_t incidents_opened = 0;
  uint64_t incidents_closed = 0;
  uint64_t suppressed_active = 0;    ///< Confirmations under an active incident.
  uint64_t suppressed_cooldown = 0;  ///< Openings deferred by cooldown.
  uint64_t diagnoses_submitted = 0;
  uint64_t active_incidents = 0;  ///< Gauge.
  uint64_t watched_tenants = 0;   ///< Gauge.
};

class SlowdownDetector {
 public:
  /// Builds the DiagnosisRequest an incident submits for its tenant (the
  /// question "why did this tenant's query slow down", asked by the
  /// machine). Called once per opened incident, on the appending thread.
  using RequestFactory = std::function<engine::DiagnosisRequest()>;

  /// `engine` may be null (incidents are still raised and counted — the
  /// false-positive bench runs detection without a diagnosis engine);
  /// when set it must outlive the detector. `tracer` (may be null) files
  /// a "detect_incident" span per opened incident.
  explicit SlowdownDetector(DetectorOptions options,
                            engine::DiagnosisEngine* engine = nullptr,
                            obs::Tracer* tracer = nullptr);
  ~SlowdownDetector();

  SlowdownDetector(const SlowdownDetector&) = delete;
  SlowdownDetector& operator=(const SlowdownDetector&) = delete;

  /// Starts watching `store`'s appends as tenant `tenant` (installs the
  /// detector's probe as the store's append listener). `factory` may be
  /// null (incidents only). The store must stay alive — and must not be
  /// appended to — after Unwatch/destruction; one store, one tenant.
  Status Watch(const std::string& tenant, monitor::TimeSeriesStore* store,
               RequestFactory factory);

  /// Detaches the probe from `store`. Idempotent; also run for every
  /// still-watched store at destruction.
  void Unwatch(monitor::TimeSeriesStore* store);

  DetectorStats Stats() const;

  /// Every incident opened so far, in sequence order.
  std::vector<Incident> Incidents() const;

  /// Blocks until every auto-submitted diagnosis has resolved and moves
  /// the responses into the internal log (see TakeResponses). Returns
  /// the number that resolved ok.
  size_t WaitForDiagnoses();

  /// Moves out the accumulated auto-diagnosis responses (in submit
  /// order). Implies WaitForDiagnoses for anything still in flight.
  std::vector<engine::DiagnosisResponse> TakeResponses();

  const DetectorOptions& options() const { return options_; }

 private:
  struct SeriesState;
  struct TenantState;
  class Probe;

  void OnAppend(TenantState* tenant, ComponentId component,
                monitor::MetricId metric, const monitor::Sample& sample,
                uint32_t series_ordinal);
  /// Incident-opening attempt for a confirmed series' crossing sample.
  /// Called with the tenant's mutex held.
  void MaybeOpenIncident(TenantState* tenant, ComponentId component,
                         monitor::MetricId metric,
                         const monitor::Sample& sample,
                         const SeriesState& series);

  /// Folds a departing tenant's hot counters into retired_ (caller holds
  /// tenants_mu_; the tenant's appender must already have stopped).
  void Retire(TenantState* tenant);

  DetectorOptions options_;
  engine::DiagnosisEngine* engine_;  ///< May be null.
  obs::Tracer* tracer_;              ///< May be null.
  uint32_t window_mask_ = 0;         ///< (1 << window_samples) - 1.

  std::atomic<uint64_t> sequence_{0};
  // Rare-event counters (see DetectorStats); the per-append hot counters
  // live on each TenantState and are aggregated by Stats().
  std::atomic<uint64_t> incidents_opened_{0}, incidents_closed_{0};
  std::atomic<uint64_t> diagnoses_submitted_{0};
  std::atomic<uint64_t> active_incidents_{0};
  std::atomic<uint64_t> watched_tenants_{0};

  /// Hot-counter sums of unwatched tenants (guarded by tenants_mu_).
  struct RetiredCounters {
    uint64_t appends_observed = 0, appends_scored = 0;
    uint64_t series_tracked = 0, series_calibrated = 0;
    uint64_t band_crossings = 0, confirmations = 0;
    uint64_t suppressed_active = 0, suppressed_cooldown = 0;
  };
  RetiredCounters retired_;

  mutable std::mutex tenants_mu_;  ///< Guards the watch table + retired_.
  std::unordered_map<monitor::TimeSeriesStore*, std::unique_ptr<TenantState>>
      tenants_;
  std::unordered_map<monitor::TimeSeriesStore*, std::unique_ptr<Probe>>
      probes_;

  mutable std::mutex log_mu_;  ///< Guards the incident + response logs.
  std::vector<Incident> incidents_;
  std::vector<std::future<engine::DiagnosisResponse>> futures_;
  std::vector<engine::DiagnosisResponse> responses_;
};

}  // namespace diads::detect

#endif  // DIADS_DETECT_DETECTOR_H_
