#include "detect/detector.h"

#include <utility>

#include "fleet/verdict.h"
#include "monitor/metrics.h"
#include "san/topology.h"

namespace diads::detect {

namespace {

int PopCount(uint32_t bits) {
  int n = 0;
  while (bits != 0) {
    bits &= bits - 1;
    ++n;
  }
  return n;
}

/// Single-writer counter increment: only the tenant's appending thread
/// writes, so a relaxed load+store (no locked RMW) is race-free and keeps
/// the per-append cost to two plain memory ops.
void Bump(std::atomic<uint64_t>& counter, uint64_t delta = 1) {
  counter.store(counter.load(std::memory_order_relaxed) + delta,
                std::memory_order_relaxed);
}

}  // namespace

struct SlowdownDetector::SeriesState {
  explicit SeriesState(const SketchOptions& options) : sketch(options) {}

  SeriesSketch sketch;
  /// Crossing history of the last `window_samples` scored samples, newest
  /// sample in bit 0.
  uint32_t recent = 0;
  int in_band_streak = 0;
  bool confirmed = false;
  /// First append seen (slots exist for every ordinal up to the highest
  /// appended one, so a resize can create slots never appended to).
  bool seen = false;
  /// Start of the current crossing cluster (valid while `recent` != 0).
  SimTimeMs cluster_start = 0;
};

struct SlowdownDetector::TenantState {
  std::string name;
  monitor::TimeSeriesStore* store = nullptr;
  RequestFactory factory;

  // Hot counters: written only by the tenant's (one) appending thread
  // via Bump, read by Stats() from any thread — single-writer atomics,
  // never RMW. Unwatch folds them into the detector's retired_ sums.
  std::atomic<uint64_t> appends_observed{0}, appends_scored{0};
  std::atomic<uint64_t> series_tracked{0}, series_calibrated{0};
  std::atomic<uint64_t> band_crossings{0}, confirmations{0};
  std::atomic<uint64_t> suppressed_active{0}, suppressed_cooldown{0};

  // Appending-thread-confined state: the store contract is one appender
  // per store, so the per-append path takes no lock at all. Indexed by
  // the store's dense series ordinal — a direct contiguous-array load
  // per append instead of re-hashing the series key.
  std::vector<SeriesState> series;
  int confirmed_series = 0;
  bool incident_active = false;
  /// Sim time of the last incident opening (cooldown anchor).
  SimTimeMs last_open_time = 0;
  bool ever_opened = false;
};

/// The AppendListener installed on one tenant's store: tags each append
/// with its tenant and forwards to the detector.
class SlowdownDetector::Probe : public monitor::AppendListener {
 public:
  Probe(SlowdownDetector* detector, TenantState* tenant)
      : detector_(detector), tenant_(tenant) {}

  void OnAppend(ComponentId component, monitor::MetricId metric,
                const monitor::Sample& sample, uint64_t series_generation,
                uint32_t series_ordinal) override {
    (void)series_generation;
    detector_->OnAppend(tenant_, component, metric, sample, series_ordinal);
  }

 private:
  SlowdownDetector* detector_;
  TenantState* tenant_;
};

SlowdownDetector::SlowdownDetector(DetectorOptions options,
                                   engine::DiagnosisEngine* engine,
                                   obs::Tracer* tracer)
    : options_(options), engine_(engine), tracer_(tracer) {
  if (options_.window_samples < 1) options_.window_samples = 1;
  if (options_.window_samples > 32) options_.window_samples = 32;
  if (options_.confirmation_samples < 1) options_.confirmation_samples = 1;
  if (options_.confirmation_samples > options_.window_samples) {
    options_.confirmation_samples = options_.window_samples;
  }
  if (options_.recovery_samples < 1) options_.recovery_samples = 1;
  window_mask_ = options_.window_samples >= 32
                     ? 0xFFFFFFFFu
                     : ((1u << options_.window_samples) - 1);
}

void SlowdownDetector::Retire(TenantState* tenant) {
  retired_.appends_observed +=
      tenant->appends_observed.load(std::memory_order_relaxed);
  retired_.appends_scored +=
      tenant->appends_scored.load(std::memory_order_relaxed);
  retired_.series_tracked +=
      tenant->series_tracked.load(std::memory_order_relaxed);
  retired_.series_calibrated +=
      tenant->series_calibrated.load(std::memory_order_relaxed);
  retired_.band_crossings +=
      tenant->band_crossings.load(std::memory_order_relaxed);
  retired_.confirmations +=
      tenant->confirmations.load(std::memory_order_relaxed);
  retired_.suppressed_active +=
      tenant->suppressed_active.load(std::memory_order_relaxed);
  retired_.suppressed_cooldown +=
      tenant->suppressed_cooldown.load(std::memory_order_relaxed);
}

SlowdownDetector::~SlowdownDetector() {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  for (auto& [store, tenant] : tenants_) {
    store->SetAppendListener(nullptr);
    Retire(tenant.get());
  }
  tenants_.clear();
  probes_.clear();
}

Status SlowdownDetector::Watch(const std::string& tenant,
                               monitor::TimeSeriesStore* store,
                               RequestFactory factory) {
  if (store == nullptr) {
    return Status::InvalidArgument("Watch requires a store");
  }
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (tenants_.count(store) > 0) {
    return Status::InvalidArgument("store is already watched");
  }
  if (store->append_listener() != nullptr) {
    return Status::InvalidArgument("store already has an append listener");
  }
  auto state = std::make_unique<TenantState>();
  state->name = tenant;
  state->store = store;
  state->factory = std::move(factory);
  // The probe shares the TenantState's lifetime; park it in the map via
  // the state so Unwatch tears both down together.
  auto probe = std::make_unique<Probe>(this, state.get());
  store->SetAppendListener(probe.get());
  probes_[store] = std::move(probe);
  tenants_[store] = std::move(state);
  watched_tenants_.fetch_add(1, std::memory_order_relaxed);
  return Status::Ok();
}

void SlowdownDetector::Unwatch(monitor::TimeSeriesStore* store) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto it = tenants_.find(store);
  if (it == tenants_.end()) return;
  store->SetAppendListener(nullptr);
  Retire(it->second.get());
  tenants_.erase(it);
  probes_.erase(store);
  watched_tenants_.fetch_sub(1, std::memory_order_relaxed);
}

void SlowdownDetector::OnAppend(TenantState* tenant, ComponentId component,
                                monitor::MetricId metric,
                                const monitor::Sample& sample,
                                uint32_t series_ordinal) {
  Bump(tenant->appends_observed);
  if (series_ordinal >= tenant->series.size()) {
    // Ordinals are dense creation-order, but the detector may attach to
    // a store that already has series — resize covers any gap with
    // fresh (uncalibrated, unseen) slots.
    tenant->series.resize(series_ordinal + 1, SeriesState(options_.sketch));
  }
  SeriesState& series = tenant->series[series_ordinal];
  if (!series.seen) {
    series.seen = true;
    Bump(tenant->series_tracked);
  }

  const bool was_calibrated = series.sketch.calibrated();
  const SampleVerdict verdict = series.sketch.Observe(sample.value);
  if (!was_calibrated && series.sketch.calibrated()) {
    Bump(tenant->series_calibrated);
  }
  if (verdict == SampleVerdict::kCalibrating) return;
  Bump(tenant->appends_scored);

  const bool crossing = verdict == SampleVerdict::kCrossing;
  if (series.recent == 0 && crossing) series.cluster_start = sample.time;
  series.recent = ((series.recent << 1) | (crossing ? 1u : 0u)) & window_mask_;

  if (crossing) {
    Bump(tenant->band_crossings);
    series.in_band_streak = 0;
    if (!series.confirmed &&
        PopCount(series.recent) >= options_.confirmation_samples) {
      series.confirmed = true;
      ++tenant->confirmed_series;
      Bump(tenant->confirmations);
    }
    if (series.confirmed) {
      MaybeOpenIncident(tenant, component, metric, sample, series);
    }
    return;
  }

  ++series.in_band_streak;
  if (series.confirmed &&
      series.in_band_streak >= options_.recovery_samples) {
    series.confirmed = false;
    series.recent = 0;
    --tenant->confirmed_series;
    if (tenant->confirmed_series == 0 && tenant->incident_active) {
      tenant->incident_active = false;
      incidents_closed_.fetch_add(1, std::memory_order_relaxed);
      active_incidents_.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

void SlowdownDetector::MaybeOpenIncident(TenantState* tenant,
                                         ComponentId component,
                                         monitor::MetricId metric,
                                         const monitor::Sample& sample,
                                         const SeriesState& series) {
  if (tenant->incident_active) {
    Bump(tenant->suppressed_active);
    return;
  }
  if (tenant->ever_opened &&
      sample.time < tenant->last_open_time + options_.cooldown) {
    Bump(tenant->suppressed_cooldown);
    return;
  }

  Incident incident;
  incident.sequence = sequence_.fetch_add(1, std::memory_order_relaxed) + 1;
  incident.tenant = tenant->name;
  incident.component = component;
  incident.metric = metric;
  incident.onset_time = series.cluster_start;
  incident.confirmed_time = sample.time;
  incident.value = sample.value;
  incident.threshold = series.sketch.threshold();

  tenant->incident_active = true;
  tenant->ever_opened = true;
  tenant->last_open_time = sample.time;
  incidents_opened_.fetch_add(1, std::memory_order_relaxed);
  active_incidents_.fetch_add(1, std::memory_order_relaxed);

  obs::SpanHandle span;
  if (tracer_ != nullptr) {
    span = tracer_->Root().StartSpan("detect_incident", "detect");
    span.Note("tenant", tenant->name);
    span.Note("sequence", incident.sequence);
    span.Note("metric", monitor::MetricShortName(metric));
    span.Note("onset_sim", FormatSimTime(incident.onset_time));
    span.Note("confirmed_sim", FormatSimTime(incident.confirmed_time));
  }

  std::future<engine::DiagnosisResponse> future;
  bool submitted = false;
  if (engine_ != nullptr && tenant->factory != nullptr) {
    engine::DiagnosisRequest request = tenant->factory();
    auto stamp = std::make_shared<fleet::IncidentStamp>();
    stamp->sequence = incident.sequence;
    if (request.ctx.topology != nullptr &&
        request.ctx.topology->registry().Contains(component)) {
      stamp->subject = request.ctx.topology->registry().NameOf(component);
    }
    stamp->metric = metric;
    stamp->onset_time = incident.onset_time;
    stamp->confirmed_time = incident.confirmed_time;
    request.incident = std::move(stamp);
    future = engine_->Submit(std::move(request));
    diagnoses_submitted_.fetch_add(1, std::memory_order_relaxed);
    submitted = true;
    span.Note("diagnosis", "submitted");
  }
  span.End();

  std::lock_guard<std::mutex> lock(log_mu_);
  incidents_.push_back(std::move(incident));
  if (submitted) futures_.push_back(std::move(future));
}

DetectorStats SlowdownDetector::Stats() const {
  DetectorStats out;
  std::lock_guard<std::mutex> lock(tenants_mu_);
  out.appends_observed = retired_.appends_observed;
  out.appends_scored = retired_.appends_scored;
  out.series_tracked = retired_.series_tracked;
  out.series_calibrated = retired_.series_calibrated;
  out.band_crossings = retired_.band_crossings;
  out.confirmations = retired_.confirmations;
  out.suppressed_active = retired_.suppressed_active;
  out.suppressed_cooldown = retired_.suppressed_cooldown;
  for (const auto& [store, tenant] : tenants_) {
    (void)store;
    out.appends_observed +=
        tenant->appends_observed.load(std::memory_order_relaxed);
    out.appends_scored +=
        tenant->appends_scored.load(std::memory_order_relaxed);
    out.series_tracked +=
        tenant->series_tracked.load(std::memory_order_relaxed);
    out.series_calibrated +=
        tenant->series_calibrated.load(std::memory_order_relaxed);
    out.band_crossings +=
        tenant->band_crossings.load(std::memory_order_relaxed);
    out.confirmations +=
        tenant->confirmations.load(std::memory_order_relaxed);
    out.suppressed_active +=
        tenant->suppressed_active.load(std::memory_order_relaxed);
    out.suppressed_cooldown +=
        tenant->suppressed_cooldown.load(std::memory_order_relaxed);
  }
  out.incidents_opened = incidents_opened_.load(std::memory_order_relaxed);
  out.incidents_closed = incidents_closed_.load(std::memory_order_relaxed);
  out.diagnoses_submitted =
      diagnoses_submitted_.load(std::memory_order_relaxed);
  out.active_incidents = active_incidents_.load(std::memory_order_relaxed);
  out.watched_tenants = watched_tenants_.load(std::memory_order_relaxed);
  return out;
}

std::vector<Incident> SlowdownDetector::Incidents() const {
  std::lock_guard<std::mutex> lock(log_mu_);
  return incidents_;
}

size_t SlowdownDetector::WaitForDiagnoses() {
  std::vector<std::future<engine::DiagnosisResponse>> pending;
  {
    std::lock_guard<std::mutex> lock(log_mu_);
    pending = std::move(futures_);
    futures_.clear();
  }
  size_t ok = 0;
  std::vector<engine::DiagnosisResponse> resolved;
  resolved.reserve(pending.size());
  for (std::future<engine::DiagnosisResponse>& future : pending) {
    resolved.push_back(future.get());
    if (resolved.back().ok()) ++ok;
  }
  std::lock_guard<std::mutex> lock(log_mu_);
  for (engine::DiagnosisResponse& response : resolved) {
    responses_.push_back(std::move(response));
  }
  return ok;
}

std::vector<engine::DiagnosisResponse> SlowdownDetector::TakeResponses() {
  WaitForDiagnoses();
  std::lock_guard<std::mutex> lock(log_mu_);
  std::vector<engine::DiagnosisResponse> out = std::move(responses_);
  responses_.clear();
  return out;
}

}  // namespace diads::detect
