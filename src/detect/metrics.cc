#include "detect/metrics.h"

#include <utility>

namespace diads::detect {

void EmitDetectorSnapshot(const DetectorStats& stats,
                          const obs::Labels& labels,
                          obs::MetricsEmitter& emitter) {
  emitter.Counter("diads_detect_appends_observed_total",
                  "Appends seen by the detector", labels,
                  stats.appends_observed);
  emitter.Counter("diads_detect_appends_scored_total",
                  "Appends scored post-calibration", labels,
                  stats.appends_scored);
  emitter.Counter("diads_detect_series_calibrated_total",
                  "Series sketches that finished calibration", labels,
                  stats.series_calibrated);
  emitter.Counter("diads_detect_band_crossings_total",
                  "Samples above both the band and the ceiling", labels,
                  stats.band_crossings);
  emitter.Counter("diads_detect_confirmations_total",
                  "Series confirmed anomalous", labels,
                  stats.confirmations);
  emitter.Counter("diads_detect_incidents_total", "Incidents opened",
                  labels, stats.incidents_opened);
  emitter.Counter("diads_detect_incidents_closed_total",
                  "Incidents closed after band re-entry", labels,
                  stats.incidents_closed);
  emitter.Counter("diads_detect_suppressed_active_total",
                  "Confirmations deduped onto an active incident", labels,
                  stats.suppressed_active);
  emitter.Counter("diads_detect_suppressed_cooldown_total",
                  "Incident openings deferred by cooldown", labels,
                  stats.suppressed_cooldown);
  emitter.Counter("diads_detect_diagnoses_submitted_total",
                  "Diagnoses auto-submitted to the engine", labels,
                  stats.diagnoses_submitted);
  emitter.Gauge("diads_detect_series_tracked", "Series with sketch state",
                labels, static_cast<double>(stats.series_tracked));
  emitter.Gauge("diads_detect_active_incidents", "Incidents open now",
                labels, static_cast<double>(stats.active_incidents));
  emitter.Gauge("diads_detect_watched_tenants", "Stores being watched",
                labels, static_cast<double>(stats.watched_tenants));
}

void RegisterDetectorMetrics(obs::MetricsRegistry* registry,
                             const SlowdownDetector* detector,
                             obs::Labels labels) {
  registry->AddSource(
      [detector, labels = std::move(labels)](obs::MetricsEmitter& emitter) {
        EmitDetectorSnapshot(detector->Stats(), labels, emitter);
      });
}

}  // namespace diads::detect
