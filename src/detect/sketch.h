// Per-series incremental slowdown sketch.
//
// The request-driven workflow fits baseline KDEs over a whole satisfactory
// window at diagnosis time; the always-on detector cannot afford that per
// append. SeriesSketch is the O(1)-amortized alternative: each series
// carries a few dozen bytes of state, scored on every append.
//
//   * Calibration: the first `calibration_samples` values are buffered;
//     when full, a SortedKde is fitted over them (the same kernel + the
//     bandwidth floor the diagnosis modules use, so constant series fit
//     cleanly) and its CDF is inverted by bisection at `quantile` — the
//     kernel-smoothed "normal-range ceiling" for this series. Production
//     monitoring series are bimodal (idle intervals vs run-load
//     intervals); the KDE quantile sits above the *high* mode, which a
//     mean/variance band alone would not give.
//   * Steady state: an EWMA mean/variance band is maintained over in-band
//     samples, and the quantile ceiling is nudged with a Robbins-Monro
//     update (step scaled by the band sigma). A sample is a *crossing*
//     when it exceeds BOTH the EWMA upper band and the quantile ceiling.
//   * Guarded update: crossing samples are NOT folded into the band or
//     the ceiling, so a sustained fault does not teach the sketch that
//     the fault is the new normal — the band stays at baseline and the
//     series can later be observed re-entering it.
//
// One-sided by design: the paper's question is "why did my query slow
// down", and every injected fault pushes load/latency/queueing metrics up.
// Digest-neutrality: the sketch only ever *reads* appended values; nothing
// the diagnosis workflow consumes depends on it.
#ifndef DIADS_DETECT_SKETCH_H_
#define DIADS_DETECT_SKETCH_H_

#include <cstdint>
#include <vector>

namespace diads::detect {

struct SketchOptions {
  /// Samples buffered before the KDE calibration fit. At the paper's
  /// 5-minute interval, 24 samples = 2 hours — enough to cover the idle
  /// pre-roll plus several run periods of a report workload.
  int calibration_samples = 24;
  /// EWMA rate for the mean/variance band (per in-band sample).
  double ewma_alpha = 0.15;
  /// Band half-width in (floored) sigmas.
  double band_sigmas = 4.0;
  /// Calibrated ceiling quantile.
  double quantile = 0.995;
  /// Sigma floors: effective sigma is max(sigma, abs + rel * |mean|), so
  /// a near-constant series does not alarm on measurement noise.
  double sigma_rel_floor = 0.10;
  double sigma_abs_floor = 1e-9;
  /// Robbins-Monro step for the ceiling, as a fraction of effective sigma.
  double quantile_step = 0.05;
};

enum class SampleVerdict {
  kCalibrating,  ///< Still buffering; never a crossing.
  kInBand,
  kCrossing,  ///< Above both the EWMA band and the quantile ceiling.
};

class SeriesSketch {
 public:
  explicit SeriesSketch(const SketchOptions& options = SketchOptions());

  /// Scores one appended value and folds it into the sketch state
  /// (guarded: crossings are scored but not absorbed).
  SampleVerdict Observe(double value);

  bool calibrated() const { return calibrated_; }
  uint64_t observed() const { return observed_; }
  double mean() const { return mean_; }
  /// The floored sigma the band uses.
  double effective_sigma() const;
  /// mean + band_sigmas * effective_sigma (0 until calibrated).
  double upper_band() const;
  /// The calibrated / nudged quantile ceiling (0 until calibrated).
  double ceiling() const { return ceiling_; }
  /// The crossing threshold: max(upper_band, ceiling).
  double threshold() const;

 private:
  void Calibrate();

  SketchOptions options_;
  std::vector<double> buffer_;  ///< Cleared after calibration.
  bool calibrated_ = false;
  uint64_t observed_ = 0;
  double mean_ = 0;
  double var_ = 0;
  double ceiling_ = 0;
};

}  // namespace diads::detect

#endif  // DIADS_DETECT_SKETCH_H_
