// Bridges SlowdownDetector counters into the unified metrics registry,
// following the engine/fleet source pattern: the detector's atomics stay
// where they are, the registry reads a snapshot at scrape time. Family
// naming: diads_detect_<what>[_total].
#ifndef DIADS_DETECT_METRICS_H_
#define DIADS_DETECT_METRICS_H_

#include "detect/detector.h"
#include "obs/metrics.h"

namespace diads::detect {

/// Emits one DetectorStats snapshot through `emitter`.
void EmitDetectorSnapshot(const DetectorStats& stats,
                          const obs::Labels& labels,
                          obs::MetricsEmitter& emitter);

/// Registers a scrape-time source over `detector` (not owned; must
/// outlive the registry's scrapes).
void RegisterDetectorMetrics(obs::MetricsRegistry* registry,
                             const SlowdownDetector* detector,
                             obs::Labels labels = {});

}  // namespace diads::detect

#endif  // DIADS_DETECT_METRICS_H_
