#include "detect/sketch.h"

#include <algorithm>
#include <cmath>

#include "stats/sorted_kde.h"

namespace diads::detect {
namespace {

/// Inverts a monotone CDF at probability `p` by bisection over the fitted
/// sample range widened by the KDE's own tail window. ~40 iterations pin
/// the answer far below any threshold-relevant precision.
double QuantileOf(const stats::SortedKde& kde, double p) {
  const std::vector<double>& s = kde.sorted_samples();
  double lo = s.front() - stats::SortedKde::kTailSigmas * kde.bandwidth();
  double hi = s.back() + stats::SortedKde::kTailSigmas * kde.bandwidth();
  for (int i = 0; i < 48; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (kde.Cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace

SeriesSketch::SeriesSketch(const SketchOptions& options) : options_(options) {
  if (options_.calibration_samples < 2) options_.calibration_samples = 2;
  buffer_.reserve(static_cast<size_t>(options_.calibration_samples));
}

double SeriesSketch::effective_sigma() const {
  const double sigma = std::sqrt(std::max(var_, 0.0));
  return std::max(sigma, options_.sigma_abs_floor +
                             options_.sigma_rel_floor * std::fabs(mean_));
}

double SeriesSketch::upper_band() const {
  if (!calibrated_) return 0;
  return mean_ + options_.band_sigmas * effective_sigma();
}

double SeriesSketch::threshold() const {
  return std::max(upper_band(), ceiling_);
}

void SeriesSketch::Calibrate() {
  double sum = 0;
  for (double v : buffer_) sum += v;
  mean_ = sum / static_cast<double>(buffer_.size());
  double ss = 0;
  for (double v : buffer_) ss += (v - mean_) * (v - mean_);
  var_ = ss / static_cast<double>(buffer_.size());
  // The bandwidth floor in SelectBandwidthSorted keeps this fit valid even
  // for an all-constant buffer.
  Result<stats::SortedKde> kde = stats::SortedKde::Fit(buffer_);
  if (kde.ok()) {
    ceiling_ = QuantileOf(*kde, options_.quantile);
  } else {
    ceiling_ = upper_band();
  }
  calibrated_ = true;
  buffer_.clear();
  buffer_.shrink_to_fit();
}

SampleVerdict SeriesSketch::Observe(double value) {
  ++observed_;
  if (!calibrated_) {
    buffer_.push_back(value);
    if (static_cast<int>(buffer_.size()) >= options_.calibration_samples) {
      Calibrate();
    }
    return SampleVerdict::kCalibrating;
  }
  if (value > threshold()) return SampleVerdict::kCrossing;
  // In band: fold into the EWMA mean/variance...
  const double alpha = options_.ewma_alpha;
  const double delta = value - mean_;
  mean_ += alpha * delta;
  var_ = (1 - alpha) * (var_ + alpha * delta * delta);
  // ...and nudge the ceiling with the Robbins-Monro quantile rule
  // (tau = the target probability): samples above it push it up fast,
  // samples below let it decay slowly, so it tracks the running
  // `quantile` of the in-band distribution.
  const double step = options_.quantile_step * effective_sigma();
  if (value > ceiling_) {
    ceiling_ += step * options_.quantile;
  } else {
    ceiling_ -= step * (1.0 - options_.quantile);
  }
  // Never let the ceiling decay through the band: the band is the other
  // half of the crossing predicate and the ceiling's job is only to sit
  // above the high mode.
  ceiling_ = std::max(ceiling_, mean_);
  return SampleVerdict::kInBand;
}

}  // namespace diads::detect
