// Batched, tail-truncated Gaussian KDE — the anomaly-scoring fast path.
//
// The naive Kde evaluates Cdf(u) as a full O(n) kernel sum per observation,
// so scoring m observations against an n-sample baseline costs O(n * m) erf
// evaluations. At fleet scale (many tenants, repeated diagnoses, baselines
// of thousands of monitoring samples) that sum is the dominant CPU cost of
// a diagnosis. SortedKde fits once into *sorted* samples and exploits two
// facts about the Gaussian kernel tail:
//
//   * a sample more than kTailSigmas bandwidths below u contributes a CDF
//     term indistinguishable from 1.0 at double precision, and one more
//     than kTailSigmas above contributes ~0 — so the kernel sum only has
//     to touch the samples inside a 2 * kTailSigmas * h window around u,
//     found with two binary searches (O(log n + window));
//
//   * for a batch of observations evaluated together, sorting the
//     observations makes those windows advance monotonically, so CdfBatch
//     sweeps two pointers across the sample array once instead of binary
//     searching per observation.
//
// Equivalence contract: |SortedKde::Cdf(x) - Kde::Cdf(x)| <= 1e-9 for any
// fit over the same samples and bandwidth (property-tested in
// stats_test.cc; the truncation error is <= a few ULPs, far below that
// bound), and CdfBatch(xs)[i] is bit-identical to Cdf(xs[i]). Within one
// binary every anomaly score produced through SortedKde is a pure
// deterministic function of (sorted samples, bandwidth), which is what
// makes cached models (diads/model_cache.h) digest-safe: a cache hit
// reuses exactly the arithmetic a refit would perform.
#ifndef DIADS_STATS_SORTED_KDE_H_
#define DIADS_STATS_SORTED_KDE_H_

#include <vector>

#include "common/status.h"
#include "stats/kde.h"

namespace diads::stats {

/// A one-dimensional Gaussian KDE over sorted samples with truncated-tail
/// batched evaluation. Scoring semantics match Kde (same kernel, same
/// bandwidth rules); only the evaluation strategy differs.
class SortedKde {
 public:
  /// Kernel terms are clamped to exactly 1.0 / 0.0 beyond this many
  /// bandwidths from the evaluation point. At 8 sigma the discarded mass
  /// per sample is ~6e-16 — at most a few ULPs of the final CDF.
  static constexpr double kTailSigmas = 8.0;

  /// Fits to `samples` (at least one required); sorts them once and
  /// selects the bandwidth with `rule` (identical rule semantics to
  /// Kde::Fit, computed without the redundant per-percentile sort copies).
  static Result<SortedKde> Fit(std::vector<double> samples,
                               BandwidthRule rule = BandwidthRule::kSilverman);

  /// Fits with an explicit bandwidth (> 0).
  static Result<SortedKde> FitWithBandwidth(std::vector<double> samples,
                                            double bandwidth);

  /// Estimated P(S <= x): two binary searches plus the in-window kernel
  /// sum (ascending sample order).
  double Cdf(double x) const;

  /// Cdf for every element of `xs`, returned in input order. Sorts an
  /// index permutation of `xs` and advances the window with a two-pointer
  /// sweep; each result is bit-identical to the corresponding Cdf(x).
  std::vector<double> CdfBatch(const std::vector<double>& xs) const;

  /// Estimated density at x (tail-truncated like Cdf; terms beyond the
  /// window are < 1e-14 of the peak).
  double Pdf(double x) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_count() const { return samples_.size(); }
  /// The fitted samples in ascending order.
  const std::vector<double>& sorted_samples() const { return samples_; }

 private:
  SortedKde(std::vector<double> sorted_samples, double bandwidth);

  /// Kernel sum over [lo, hi) for evaluation point x, where lo/hi are the
  /// window bounds found for x; samples before lo each contribute an exact
  /// 1.0. Shared by Cdf and CdfBatch so both are bit-identical.
  double WindowSum(double x, size_t lo, size_t hi) const;

  std::vector<double> samples_;  ///< Ascending.
  double bandwidth_ = 0;
  double tail_ = 0;  ///< kTailSigmas * bandwidth_.
};

}  // namespace diads::stats

#endif  // DIADS_STATS_SORTED_KDE_H_
