// Anomaly scoring — the statistical heart of Modules CO, DA, and CR.
//
// Given baseline samples (values observed during satisfactory runs) and
// observations (values from unsatisfactory runs), the anomaly score is the
// KDE-estimated prob(S <= u) aggregated across observations. The paper uses
// a threshold of 0.8 in its evaluation (Section 5).
#ifndef DIADS_STATS_ANOMALY_H_
#define DIADS_STATS_ANOMALY_H_

#include <vector>

#include "common/status.h"
#include "stats/kde.h"
#include "stats/sorted_kde.h"

namespace diads::stats {

/// How per-observation scores are combined into one anomaly score.
enum class AnomalyAggregation {
  /// Mean of per-observation prob(S <= u). Default; matches the robustness
  /// the paper reports under noisy observations.
  kMean,
  /// Median of per-observation scores; even more outlier-resistant.
  kMedian,
  /// Max of per-observation scores; most sensitive.
  kMax,
};

/// Anomaly-scorer configuration.
struct AnomalyConfig {
  BandwidthRule bandwidth_rule = BandwidthRule::kSilverman;
  AnomalyAggregation aggregation = AnomalyAggregation::kMean;
  /// Scores >= threshold are "anomalous". 0.8 per Section 5.
  double threshold = 0.8;
};

/// Result of scoring one series.
struct AnomalyScore {
  double score = 0.0;           ///< Aggregated prob(S <= u), in [0, 1].
  bool anomalous = false;       ///< score >= config.threshold.
  size_t baseline_count = 0;    ///< Samples the KDE was fit on.
  size_t observation_count = 0; ///< Unsatisfactory observations scored.
};

/// Scores `observations` against the KDE of `baseline`. Errors if either
/// input is empty.
Result<AnomalyScore> ScoreAnomaly(const std::vector<double>& baseline,
                                  const std::vector<double>& observations,
                                  const AnomalyConfig& config = {});

/// Two-sided variant: max(prob(S <= u), 1 - prob(S <= u)) scaled back to
/// [0,1] via 2*|p-0.5|. Used by Module CR where a record-count change in
/// either direction signals changed data properties.
Result<AnomalyScore> ScoreDeviation(const std::vector<double>& baseline,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config = {});

/// Scores against an already-fitted model — the fast path used with the
/// baseline-model cache: a fit amortized over many diagnoses produces the
/// same AnomalyScore, bit for bit, as refitting from the same baseline
/// (SortedKde::Fit is deterministic and evaluation is a pure function of
/// the fitted state). ScoreAnomaly/ScoreDeviation above are exactly
/// Fit + ScoreWithModel/ScoreDeviationWithModel.
Result<AnomalyScore> ScoreWithModel(const SortedKde& model,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config = {});

/// Two-sided model-based variant (Module CR).
Result<AnomalyScore> ScoreDeviationWithModel(
    const SortedKde& model, const std::vector<double>& observations,
    const AnomalyConfig& config = {});

}  // namespace diads::stats

#endif  // DIADS_STATS_ANOMALY_H_
