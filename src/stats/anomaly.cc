#include "stats/anomaly.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace diads::stats {
namespace {

double Aggregate(std::vector<double> scores, AnomalyAggregation how) {
  switch (how) {
    case AnomalyAggregation::kMean:
      return Mean(scores);
    case AnomalyAggregation::kMedian:
      return Median(std::move(scores));
    case AnomalyAggregation::kMax:
      return Max(scores);
  }
  return 0.0;
}

Result<AnomalyScore> ScoreImpl(const std::vector<double>& baseline,
                               const std::vector<double>& observations,
                               const AnomalyConfig& config, bool two_sided) {
  if (baseline.empty()) {
    return Status::InvalidArgument("anomaly scoring requires baseline samples");
  }
  if (observations.empty()) {
    return Status::InvalidArgument("anomaly scoring requires observations");
  }
  Result<Kde> kde = Kde::Fit(baseline, config.bandwidth_rule);
  DIADS_RETURN_IF_ERROR(kde.status());

  std::vector<double> per_obs;
  per_obs.reserve(observations.size());
  for (double u : observations) {
    const double p = kde->Cdf(u);
    per_obs.push_back(two_sided ? 2.0 * std::fabs(p - 0.5) : p);
  }

  AnomalyScore out;
  out.score = Aggregate(std::move(per_obs), config.aggregation);
  out.anomalous = out.score >= config.threshold;
  out.baseline_count = baseline.size();
  out.observation_count = observations.size();
  return out;
}

}  // namespace

Result<AnomalyScore> ScoreAnomaly(const std::vector<double>& baseline,
                                  const std::vector<double>& observations,
                                  const AnomalyConfig& config) {
  return ScoreImpl(baseline, observations, config, /*two_sided=*/false);
}

Result<AnomalyScore> ScoreDeviation(const std::vector<double>& baseline,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config) {
  return ScoreImpl(baseline, observations, config, /*two_sided=*/true);
}

}  // namespace diads::stats
