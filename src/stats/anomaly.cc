#include "stats/anomaly.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace diads::stats {
namespace {

// Takes the scores by value so the caller's vector moves straight
// through: kMean/kMax read it in place and kMedian hands it to Median's
// in-place sort — no aggregation mode copies the per-observation scores.
double Aggregate(std::vector<double> scores, AnomalyAggregation how) {
  switch (how) {
    case AnomalyAggregation::kMean:
      return Mean(scores);
    case AnomalyAggregation::kMedian:
      return Median(std::move(scores));
    case AnomalyAggregation::kMax:
      return Max(scores);
  }
  return 0.0;
}

Result<AnomalyScore> ScoreModelImpl(const SortedKde& model,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config,
                                    bool two_sided) {
  if (observations.empty()) {
    return Status::InvalidArgument("anomaly scoring requires observations");
  }
  std::vector<double> per_obs = model.CdfBatch(observations);
  if (two_sided) {
    for (double& p : per_obs) p = 2.0 * std::fabs(p - 0.5);
  }
  AnomalyScore out;
  out.observation_count = per_obs.size();
  out.score = Aggregate(std::move(per_obs), config.aggregation);
  out.anomalous = out.score >= config.threshold;
  out.baseline_count = model.sample_count();
  return out;
}

Result<AnomalyScore> ScoreImpl(const std::vector<double>& baseline,
                               const std::vector<double>& observations,
                               const AnomalyConfig& config, bool two_sided) {
  if (baseline.empty()) {
    return Status::InvalidArgument("anomaly scoring requires baseline samples");
  }
  Result<SortedKde> model = SortedKde::Fit(baseline, config.bandwidth_rule);
  DIADS_RETURN_IF_ERROR(model.status());
  return ScoreModelImpl(*model, observations, config, two_sided);
}

}  // namespace

Result<AnomalyScore> ScoreAnomaly(const std::vector<double>& baseline,
                                  const std::vector<double>& observations,
                                  const AnomalyConfig& config) {
  return ScoreImpl(baseline, observations, config, /*two_sided=*/false);
}

Result<AnomalyScore> ScoreDeviation(const std::vector<double>& baseline,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config) {
  return ScoreImpl(baseline, observations, config, /*two_sided=*/true);
}

Result<AnomalyScore> ScoreWithModel(const SortedKde& model,
                                    const std::vector<double>& observations,
                                    const AnomalyConfig& config) {
  return ScoreModelImpl(model, observations, config, /*two_sided=*/false);
}

Result<AnomalyScore> ScoreDeviationWithModel(
    const SortedKde& model, const std::vector<double>& observations,
    const AnomalyConfig& config) {
  return ScoreModelImpl(model, observations, config, /*two_sided=*/true);
}

}  // namespace diads::stats
