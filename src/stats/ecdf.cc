#include "stats/ecdf.h"

#include <algorithm>

namespace diads::stats {

Result<Ecdf> Ecdf::Fit(std::vector<double> samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("ECDF requires at least one sample");
  }
  std::sort(samples.begin(), samples.end());
  return Ecdf(std::move(samples));
}

double Ecdf::Cdf(double x) const {
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double Ecdf::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted_.size()) return sorted_.back();
  return sorted_[lo] * (1.0 - frac) + sorted_[lo + 1] * frac;
}

}  // namespace diads::stats
