#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace diads::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  const double mu = Mean(xs);
  double ss = 0;
  for (double x : xs) ss += (x - mu) * (x - mu);
  return ss / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  if (p <= 0) return xs.front();
  if (p >= 100) return xs.back();
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= xs.size()) return xs.back();
  return xs[lo] * (1.0 - frac) + xs[lo + 1] * frac;
}

double Iqr(const std::vector<double>& xs) {
  return Percentile(xs, 75) - Percentile(xs, 25);
}

}  // namespace diads::stats
