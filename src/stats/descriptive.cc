#include "stats/descriptive.h"

#include <algorithm>
#include <cmath>

namespace diads::stats {

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  // Single-pass Welford update: SelectBandwidth calls this on every KDE
  // fit, and the two-scan textbook form (Mean, then squared deviations)
  // read the baseline twice per fit. Welford is one scan and at least as
  // numerically stable.
  const size_t n = xs.size();
  if (n < 2) return 0.0;
  double mean = 0;
  double m2 = 0;
  size_t count = 0;
  for (double x : xs) {
    ++count;
    const double delta = x - mean;
    mean += delta / static_cast<double>(count);
    m2 += delta * (x - mean);
  }
  return m2 / static_cast<double>(n - 1);
}

double StdDev(const std::vector<double>& xs) { return std::sqrt(Variance(xs)); }

double Min(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double Max(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double Median(std::vector<double> xs) { return Percentile(std::move(xs), 50); }

double Percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::sort(xs.begin(), xs.end());
  return PercentileOfSorted(xs, p);
}

double PercentileOfSorted(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  if (p <= 0) return sorted.front();
  if (p >= 100) return sorted.back();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

double Iqr(const std::vector<double>& xs) {
  // One sorted copy serves both quartiles (Percentile sorts per call).
  if (xs.empty()) return 0.0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  return PercentileOfSorted(sorted, 75) - PercentileOfSorted(sorted, 25);
}

}  // namespace diads::stats
