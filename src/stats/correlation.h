// Correlation measures.
//
// Module DA prunes an operator's dependency path by checking whether a
// component's performance metric is "significantly correlated with O's
// running time" (Section 4.1). Pearson captures linear co-movement; Spearman
// (rank) is robust to the latency nonlinearities a queueing system produces.
#ifndef DIADS_STATS_CORRELATION_H_
#define DIADS_STATS_CORRELATION_H_

#include <vector>

namespace diads::stats {

/// Pearson linear correlation of two equal-length series. Returns 0 when
/// either series is constant or the lengths differ / are < 2.
double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys);

/// Spearman rank correlation (Pearson over midranks). Same degenerate-case
/// conventions as PearsonCorrelation.
double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys);

/// Midranks of `xs` (ties averaged), 1-based as in classical statistics.
std::vector<double> MidRanks(const std::vector<double>& xs);

}  // namespace diads::stats

#endif  // DIADS_STATS_CORRELATION_H_
