// Gaussian naive-Bayes classifier.
//
// Section 5 observes that "compared to correlation analysis using advanced
// models (e.g., Bayesian networks), KDE can produce accurate results with few
// tens of samples, and is more robust to noise". This classifier is the
// "advanced model" foil for that ablation (bench_x1_kde_ablation): it learns
// per-class Gaussians over labelled runs and classifies an observation as
// satisfactory/unsatisfactory — a parametric, label-hungry approach that
// degrades with tiny samples, exactly the failure mode the paper calls out.
#ifndef DIADS_STATS_NAIVE_BAYES_H_
#define DIADS_STATS_NAIVE_BAYES_H_

#include <vector>

#include "common/status.h"

namespace diads::stats {

/// Binary Gaussian naive-Bayes over one feature dimension per call site.
class GaussianNaiveBayes {
 public:
  /// Fits per-class Gaussians. Both classes need >= 2 samples.
  static Result<GaussianNaiveBayes> Fit(
      const std::vector<double>& class0_samples,
      const std::vector<double>& class1_samples);

  /// Posterior P(class = 1 | x) under equal priors.
  double PosteriorClass1(double x) const;

  /// True if x is more likely drawn from class 1.
  bool Classify(double x) const { return PosteriorClass1(x) >= 0.5; }

  double mean0() const { return mean0_; }
  double mean1() const { return mean1_; }

 private:
  GaussianNaiveBayes(double m0, double s0, double m1, double s1)
      : mean0_(m0), std0_(s0), mean1_(m1), std1_(s1) {}

  double LogLikelihood(double x, double mean, double stddev) const;

  double mean0_, std0_;
  double mean1_, std1_;
};

}  // namespace diads::stats

#endif  // DIADS_STATS_NAIVE_BAYES_H_
