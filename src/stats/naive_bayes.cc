#include "stats/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace diads::stats {

Result<GaussianNaiveBayes> GaussianNaiveBayes::Fit(
    const std::vector<double>& class0_samples,
    const std::vector<double>& class1_samples) {
  if (class0_samples.size() < 2 || class1_samples.size() < 2) {
    return Status::InvalidArgument(
        "naive Bayes requires >= 2 samples per class");
  }
  const double m0 = Mean(class0_samples);
  const double m1 = Mean(class1_samples);
  // Variance floor keeps the likelihood finite for near-constant classes.
  const double scale = std::max({std::fabs(m0), std::fabs(m1), 1e-9});
  const double floor = scale * 1e-6;
  const double s0 = std::max(StdDev(class0_samples), floor);
  const double s1 = std::max(StdDev(class1_samples), floor);
  return GaussianNaiveBayes(m0, s0, m1, s1);
}

double GaussianNaiveBayes::LogLikelihood(double x, double mean,
                                         double stddev) const {
  const double z = (x - mean) / stddev;
  return -0.5 * z * z - std::log(stddev);
}

double GaussianNaiveBayes::PosteriorClass1(double x) const {
  const double l0 = LogLikelihood(x, mean0_, std0_);
  const double l1 = LogLikelihood(x, mean1_, std1_);
  const double m = std::max(l0, l1);
  const double e0 = std::exp(l0 - m);
  const double e1 = std::exp(l1 - m);
  return e1 / (e0 + e1);
}

}  // namespace diads::stats
