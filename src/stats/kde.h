// Kernel Density Estimation.
//
// Module CO of the paper (Section 4.1) fits a KDE to an operator's running
// times over *satisfactory* runs and scores an unsatisfactory observation u
// by prob(S <= u) — the CDF of the estimated density at u. Scores near 1
// mean "u is far above the healthy range". The same estimator powers Modules
// DA (component performance metrics) and CR (record counts).
//
// We use a Gaussian kernel. The CDF is then an average of normal CDFs
// centred on the sample points, computable in closed form with erf.
#ifndef DIADS_STATS_KDE_H_
#define DIADS_STATS_KDE_H_

#include <vector>

#include "common/status.h"

namespace diads::stats {

/// Bandwidth selection rules for Kde.
enum class BandwidthRule {
  /// Silverman's rule of thumb: 0.9 * min(sigma, IQR/1.34) * n^(-1/5).
  kSilverman,
  /// Scott's rule: 1.06 * sigma * n^(-1/5).
  kScott,
};

/// A one-dimensional Gaussian kernel density estimate.
class Kde {
 public:
  /// Fits a KDE to `samples` (at least one sample required). When the data
  /// is degenerate (zero spread), a bandwidth floor relative to the data
  /// magnitude keeps the estimate well-defined.
  static Result<Kde> Fit(std::vector<double> samples,
                         BandwidthRule rule = BandwidthRule::kSilverman);

  /// Fits with an explicit bandwidth (> 0).
  static Result<Kde> FitWithBandwidth(std::vector<double> samples,
                                      double bandwidth);

  /// Estimated density at x.
  double Pdf(double x) const;

  /// Estimated P(S <= x). This is the paper's anomaly score when x is an
  /// observation from an unsatisfactory run.
  double Cdf(double x) const;

  double bandwidth() const { return bandwidth_; }
  size_t sample_count() const { return samples_.size(); }
  const std::vector<double>& samples() const { return samples_; }

 private:
  Kde(std::vector<double> samples, double bandwidth)
      : samples_(std::move(samples)), bandwidth_(bandwidth) {}

  std::vector<double> samples_;
  double bandwidth_;
};

/// Computes the bandwidth the given rule would select for `samples`.
double SelectBandwidth(const std::vector<double>& samples, BandwidthRule rule);

}  // namespace diads::stats

#endif  // DIADS_STATS_KDE_H_
