#include "stats/sorted_kde.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "stats/descriptive.h"

namespace diads::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;

/// SelectBandwidth over sorted samples: same rules, but the IQR comes from
/// the sorted array directly instead of two sort-a-copy Percentile calls,
/// and the bandwidth floor's magnitude scan is just the two endpoints.
double SelectBandwidthSorted(const std::vector<double>& sorted,
                             BandwidthRule rule) {
  const double n = static_cast<double>(sorted.size());
  const double sigma = StdDev(sorted);
  double h = 0;
  switch (rule) {
    case BandwidthRule::kSilverman: {
      const double iqr =
          PercentileOfSorted(sorted, 75) - PercentileOfSorted(sorted, 25);
      double spread = sigma;
      if (iqr > 0) spread = std::min(spread > 0 ? spread : iqr, iqr / 1.34);
      h = 0.9 * spread * std::pow(n, -0.2);
      break;
    }
    case BandwidthRule::kScott:
      h = 1.06 * sigma * std::pow(n, -0.2);
      break;
  }
  const double scale = std::max(std::fabs(sorted.front()),
                                std::fabs(sorted.back()));
  return std::max(h, std::max(1e-9, scale * 1e-6));
}

}  // namespace

SortedKde::SortedKde(std::vector<double> sorted_samples, double bandwidth)
    : samples_(std::move(sorted_samples)),
      bandwidth_(bandwidth),
      tail_(kTailSigmas * bandwidth) {}

Result<SortedKde> SortedKde::Fit(std::vector<double> samples,
                                 BandwidthRule rule) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  std::sort(samples.begin(), samples.end());
  const double h = SelectBandwidthSorted(samples, rule);
  return SortedKde(std::move(samples), h);
}

Result<SortedKde> SortedKde::FitWithBandwidth(std::vector<double> samples,
                                              double bandwidth) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  if (bandwidth <= 0) {
    return Status::InvalidArgument("KDE bandwidth must be positive");
  }
  std::sort(samples.begin(), samples.end());
  return SortedKde(std::move(samples), bandwidth);
}

double SortedKde::WindowSum(double x, size_t lo, size_t hi) const {
  // Samples below the window sit more than kTailSigmas bandwidths under x;
  // each contributes exactly 1.0 (the erf term rounds to 1 at double
  // precision), so the prefix collapses to its count. Samples above the
  // window contribute ~0 and are skipped.
  double sum = static_cast<double>(lo);
  for (size_t i = lo; i < hi; ++i) {
    const double z = (x - samples_[i]) / bandwidth_;
    sum += 0.5 * (1.0 + std::erf(z * kInvSqrt2));
  }
  return sum;
}

double SortedKde::Cdf(double x) const {
  const auto lo = std::lower_bound(samples_.begin(), samples_.end(), x - tail_);
  const auto hi = std::lower_bound(lo, samples_.end(), x + tail_);
  const double sum = WindowSum(x, static_cast<size_t>(lo - samples_.begin()),
                               static_cast<size_t>(hi - samples_.begin()));
  return sum / static_cast<double>(samples_.size());
}

std::vector<double> SortedKde::CdfBatch(const std::vector<double>& xs) const {
  std::vector<double> out(xs.size(), 0.0);
  if (xs.empty()) return out;
  // Visit observations in ascending order so the truncation window only
  // ever moves forward: one two-pointer sweep across the samples instead
  // of a binary search per observation.
  std::vector<size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  const double n = static_cast<double>(samples_.size());
  size_t lo = 0;
  size_t hi = 0;
  for (size_t idx : order) {
    const double x = xs[idx];
    while (lo < samples_.size() && samples_[lo] < x - tail_) ++lo;
    if (hi < lo) hi = lo;
    while (hi < samples_.size() && samples_[hi] < x + tail_) ++hi;
    out[idx] = WindowSum(x, lo, hi) / n;
  }
  return out;
}

double SortedKde::Pdf(double x) const {
  const auto lo = std::lower_bound(samples_.begin(), samples_.end(), x - tail_);
  const auto hi = std::lower_bound(lo, samples_.end(), x + tail_);
  double sum = 0;
  for (auto it = lo; it != hi; ++it) {
    const double z = (x - *it) / bandwidth_;
    sum += std::exp(-0.5 * z * z);
  }
  return sum * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

}  // namespace diads::stats
