// Empirical cumulative distribution function.
//
// Used as a bandwidth-free alternative to the KDE CDF in tests (the two must
// agree asymptotically) and by the baseline diagnosers, which the paper
// describes as using simpler statistics than DIADS.
#ifndef DIADS_STATS_ECDF_H_
#define DIADS_STATS_ECDF_H_

#include <vector>

#include "common/status.h"

namespace diads::stats {

/// Empirical CDF over a fixed sample.
class Ecdf {
 public:
  /// Builds an ECDF; requires at least one sample.
  static Result<Ecdf> Fit(std::vector<double> samples);

  /// Fraction of samples <= x.
  double Cdf(double x) const;

  /// Inverse CDF (quantile); q in [0, 1] clamped.
  double Quantile(double q) const;

  size_t sample_count() const { return sorted_.size(); }

 private:
  explicit Ecdf(std::vector<double> sorted) : sorted_(std::move(sorted)) {}
  std::vector<double> sorted_;
};

}  // namespace diads::stats

#endif  // DIADS_STATS_ECDF_H_
