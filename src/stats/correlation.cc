#include "stats/correlation.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace diads::stats {

double PearsonCorrelation(const std::vector<double>& xs,
                          const std::vector<double>& ys) {
  const size_t n = xs.size();
  if (n != ys.size() || n < 2) return 0.0;
  double mx = 0, my = 0;
  for (size_t i = 0; i < n; ++i) {
    mx += xs[i];
    my += ys[i];
  }
  mx /= static_cast<double>(n);
  my /= static_cast<double>(n);
  double sxy = 0, sxx = 0, syy = 0;
  for (size_t i = 0; i < n; ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0 || syy <= 0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

std::vector<double> MidRanks(const std::vector<double>& xs) {
  const size_t n = xs.size();
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(),
            [&xs](size_t a, size_t b) { return xs[a] < xs[b]; });
  std::vector<double> ranks(n, 0.0);
  size_t i = 0;
  while (i < n) {
    size_t j = i;
    while (j + 1 < n && xs[order[j + 1]] == xs[order[i]]) ++j;
    // Average 1-based rank over the tie group [i, j].
    const double rank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t k = i; k <= j; ++k) ranks[order[k]] = rank;
    i = j + 1;
  }
  return ranks;
}

double SpearmanCorrelation(const std::vector<double>& xs,
                           const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) return 0.0;
  return PearsonCorrelation(MidRanks(xs), MidRanks(ys));
}

}  // namespace diads::stats
