#include "stats/kde.h"

#include <algorithm>
#include <cmath>

#include "stats/descriptive.h"

namespace diads::stats {
namespace {

constexpr double kInvSqrt2Pi = 0.3989422804014327;
constexpr double kInvSqrt2 = 0.7071067811865476;

// Floor the bandwidth at a small fraction of the data magnitude so that
// zero-spread samples (e.g., an operator whose time is quantised by the
// 5-minute monitoring interval) still yield a usable, sharply peaked
// estimate instead of a division by zero.
double BandwidthFloor(const std::vector<double>& samples) {
  double scale = 0;
  for (double s : samples) scale = std::max(scale, std::fabs(s));
  return std::max(1e-9, scale * 1e-6);
}

}  // namespace

double SelectBandwidth(const std::vector<double>& samples,
                       BandwidthRule rule) {
  const double n = static_cast<double>(samples.size());
  const double sigma = StdDev(samples);
  double h = 0;
  switch (rule) {
    case BandwidthRule::kSilverman: {
      const double iqr = Iqr(samples);
      double spread = sigma;
      if (iqr > 0) spread = std::min(spread > 0 ? spread : iqr, iqr / 1.34);
      h = 0.9 * spread * std::pow(n, -0.2);
      break;
    }
    case BandwidthRule::kScott:
      h = 1.06 * sigma * std::pow(n, -0.2);
      break;
  }
  return std::max(h, BandwidthFloor(samples));
}

Result<Kde> Kde::Fit(std::vector<double> samples, BandwidthRule rule) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  const double h = SelectBandwidth(samples, rule);
  return Kde(std::move(samples), h);
}

Result<Kde> Kde::FitWithBandwidth(std::vector<double> samples,
                                  double bandwidth) {
  if (samples.empty()) {
    return Status::InvalidArgument("KDE requires at least one sample");
  }
  if (bandwidth <= 0) {
    return Status::InvalidArgument("KDE bandwidth must be positive");
  }
  return Kde(std::move(samples), bandwidth);
}

double Kde::Pdf(double x) const {
  double sum = 0;
  for (double s : samples_) {
    const double z = (x - s) / bandwidth_;
    sum += std::exp(-0.5 * z * z);
  }
  return sum * kInvSqrt2Pi /
         (bandwidth_ * static_cast<double>(samples_.size()));
}

double Kde::Cdf(double x) const {
  double sum = 0;
  for (double s : samples_) {
    const double z = (x - s) / bandwidth_;
    sum += 0.5 * (1.0 + std::erf(z * kInvSqrt2));
  }
  return sum / static_cast<double>(samples_.size());
}

}  // namespace diads::stats
