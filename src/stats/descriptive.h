// Descriptive statistics over small samples.
//
// DIADS works with "a few tens of samples" (Section 5) — one observation per
// query run — so these helpers are written for exactness over tiny n rather
// than streaming scale.
#ifndef DIADS_STATS_DESCRIPTIVE_H_
#define DIADS_STATS_DESCRIPTIVE_H_

#include <vector>

namespace diads::stats {

double Mean(const std::vector<double>& xs);
/// Sample variance (n-1 denominator); 0 for n < 2.
double Variance(const std::vector<double>& xs);
double StdDev(const std::vector<double>& xs);
double Min(const std::vector<double>& xs);
double Max(const std::vector<double>& xs);
/// Median via sorting a copy; 0 for empty input.
double Median(std::vector<double> xs);
/// Linear-interpolated percentile, p in [0, 100]; 0 for empty input.
double Percentile(std::vector<double> xs, double p);
/// Percentile of an already-sorted (ascending) vector — the one shared
/// interpolation used by Percentile, Iqr, and the KDE bandwidth rules;
/// they must agree bit for bit, so there is exactly one copy of it.
double PercentileOfSorted(const std::vector<double>& sorted, double p);
/// Interquartile range (P75 - P25).
double Iqr(const std::vector<double>& xs);

}  // namespace diads::stats

#endif  // DIADS_STATS_DESCRIPTIVE_H_
