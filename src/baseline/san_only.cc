#include "baseline/san_only.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "monitor/metrics.h"

namespace diads::baseline {

SanOnlyDiagnoser::SanOnlyDiagnoser(const san::SanTopology* topology,
                                   const monitor::TimeSeriesStore* store,
                                   stats::AnomalyConfig config)
    : topology_(topology), store_(store), config_(config) {
  assert(topology_ && store_);
}

Result<std::vector<SanOnlyCause>> SanOnlyDiagnoser::Diagnose(
    const TimeInterval& satisfactory_window,
    const TimeInterval& unsatisfactory_window) const {
  double total_gb = 0;
  for (ComponentId v : topology_->AllVolumes()) {
    total_gb += topology_->volume(v).size_gb;
  }
  if (total_gb <= 0) total_gb = 1;

  std::vector<SanOnlyCause> out;
  for (ComponentId volume : topology_->AllVolumes()) {
    double best_score = 0;
    monitor::MetricId best_metric = monitor::MetricId::kVolTotalIos;
    for (monitor::MetricId metric : store_->MetricsFor(volume)) {
      const std::vector<double> baseline =
          store_->ValuesIn(volume, metric, satisfactory_window);
      const std::vector<double> observed =
          store_->ValuesIn(volume, metric, unsatisfactory_window);
      if (baseline.size() < 2 || observed.empty()) continue;
      Result<stats::AnomalyScore> score =
          stats::ScoreAnomaly(baseline, observed, config_);
      DIADS_RETURN_IF_ERROR(score.status());
      if (score->score > best_score) {
        best_score = score->score;
        best_metric = metric;
      }
    }
    if (best_score < config_.threshold) continue;
    SanOnlyCause cause;
    cause.volume = volume;
    cause.anomaly_score = best_score;
    cause.data_share = topology_->volume(volume).size_gb / total_gb;
    cause.rank_score = best_score * (0.5 + cause.data_share);
    cause.description = StrFormat(
        "volume '%s': %s anomalous (score %.3f), holds %.0f%% of the data",
        topology_->registry().NameOf(volume).c_str(),
        monitor::MetricShortName(best_metric), best_score,
        cause.data_share * 100.0);
    out.push_back(std::move(cause));
  }
  std::sort(out.begin(), out.end(),
            [](const SanOnlyCause& a, const SanOnlyCause& b) {
              return a.rank_score > b.rank_score;
            });
  return out;
}

}  // namespace diads::baseline
