// Database-only diagnoser — the other silo baseline.
//
// Section 5: "A database-only tool can pinpoint the slowdown in the
// operators, but it would likely give several false positives like a
// suboptimal buffer pool setting or a suboptimal choice of execution plan."
// This baseline sees only database-side data (run records and DB metrics,
// no SAN view): it finds anomalous operators with the same KDE scoring,
// then maps them to generic database root causes with rule-of-thumb
// heuristics — producing exactly those plausible-but-wrong suggestions when
// the real problem lives in the SAN.
#ifndef DIADS_BASELINE_DB_ONLY_H_
#define DIADS_BASELINE_DB_ONLY_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "db/run_record.h"
#include "diads/diagnosis.h"
#include "monitor/timeseries.h"
#include "stats/anomaly.h"

namespace diads::baseline {

struct DbOnlyCause {
  diag::RootCauseType mapped_type = diag::RootCauseType::kBufferPoolPressure;
  double score = 0;  ///< Heuristic plausibility, 0..100.
  std::string description;
};

/// Diagnoses from database-side data only.
class DbOnlyDiagnoser {
 public:
  DbOnlyDiagnoser(const db::RunCatalog* runs,
                  const monitor::TimeSeriesStore* store, ComponentId database,
                  stats::AnomalyConfig config = {});

  /// Returns generic DB causes ranked by plausibility.
  Result<std::vector<DbOnlyCause>> Diagnose(const std::string& query) const;

 private:
  const db::RunCatalog* runs_;
  const monitor::TimeSeriesStore* store_;
  ComponentId database_;
  stats::AnomalyConfig config_;
};

}  // namespace diads::baseline

#endif  // DIADS_BASELINE_DB_ONLY_H_
