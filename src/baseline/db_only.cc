#include "baseline/db_only.h"

#include <algorithm>
#include <cassert>

#include "common/strings.h"
#include "monitor/metrics.h"

namespace diads::baseline {

DbOnlyDiagnoser::DbOnlyDiagnoser(const db::RunCatalog* runs,
                                 const monitor::TimeSeriesStore* store,
                                 ComponentId database,
                                 stats::AnomalyConfig config)
    : runs_(runs), store_(store), database_(database), config_(config) {
  assert(runs_ && store_);
}

Result<std::vector<DbOnlyCause>> DbOnlyDiagnoser::Diagnose(
    const std::string& query) const {
  const std::vector<const db::QueryRunRecord*> good =
      runs_->RunsWithLabel(query, db::RunLabel::kSatisfactory);
  const std::vector<const db::QueryRunRecord*> bad =
      runs_->RunsWithLabel(query, db::RunLabel::kUnsatisfactory);
  if (good.size() < 2 || bad.empty()) {
    return Status::FailedPrecondition(
        "db-only diagnosis needs labelled runs on both sides");
  }

  // Operator anomaly scan (scans only; the tool reports "slow operators").
  int anomalous_scans = 0;
  int scored_scans = 0;
  const db::Plan* plan = bad.front()->plan.get();
  for (const db::PlanOp& op : plan->ops()) {
    if (!op.is_scan()) continue;
    const std::vector<double> baseline = diag::OperatorSpans(good, op.index);
    const std::vector<double> observed = diag::OperatorSpans(bad, op.index);
    if (baseline.size() < 2 || observed.empty()) continue;
    ++scored_scans;
    Result<stats::AnomalyScore> score =
        stats::ScoreAnomaly(baseline, observed, config_);
    DIADS_RETURN_IF_ERROR(score.status());
    if (score->anomalous) ++anomalous_scans;
  }

  // DB-level metric movements between the windows.
  auto metric_anomaly = [&](monitor::MetricId metric) -> double {
    std::vector<double> baseline;
    std::vector<double> observed;
    for (const db::QueryRunRecord* run : good) {
      Result<double> mean = store_->MeanIn(database_, metric, run->interval);
      if (mean.ok()) baseline.push_back(*mean);
    }
    for (const db::QueryRunRecord* run : bad) {
      Result<double> mean = store_->MeanIn(database_, metric, run->interval);
      if (mean.ok()) observed.push_back(*mean);
    }
    if (baseline.size() < 2 || observed.empty()) return 0;
    Result<stats::AnomalyScore> score =
        stats::ScoreAnomaly(baseline, observed, config_);
    return score.ok() ? score->score : 0;
  };
  const double blocks_read_score =
      metric_anomaly(monitor::MetricId::kDbBlocksRead);
  const double lock_wait_score =
      metric_anomaly(monitor::MetricId::kDbLockWaitMs);

  const double scan_fraction =
      scored_scans > 0
          ? static_cast<double>(anomalous_scans) / scored_scans
          : 0;

  // Generic-cause heuristics — the silo tool's rulebook. I/O-bound scans
  // with no visible lock problem look like a buffer-pool or plan problem
  // from inside the database, whatever the SAN is doing.
  std::vector<DbOnlyCause> out;
  if (lock_wait_score >= config_.threshold) {
    out.push_back(
        {diag::RootCauseType::kLockContention, 40 + 55 * lock_wait_score,
         "lock wait time is elevated: likely lock contention"});
  }
  if (scan_fraction > 0) {
    out.push_back(
        {diag::RootCauseType::kBufferPoolPressure,
         25 + 50 * scan_fraction * std::max(0.4, blocks_read_score),
         StrFormat("%d of %d scan operators slowed down: suboptimal buffer "
                   "pool setting suspected",
                   anomalous_scans, scored_scans)});
    out.push_back(
        {diag::RootCauseType::kPlanChange, 20 + 45 * scan_fraction,
         "scan-heavy slowdown: suboptimal choice of execution plan "
         "suspected"});
  }
  std::sort(out.begin(), out.end(),
            [](const DbOnlyCause& a, const DbOnlyCause& b) {
              return a.score > b.score;
            });
  return out;
}

}  // namespace diads::baseline
