// SAN-only diagnoser — the silo baseline DIADS is compared against.
//
// Section 5: "a SAN-only diagnosis tool may spot higher I/O loads in both V1
// and V2, and attribute both of these as potential root causes. Even worse,
// the tool may give more importance to V2 because most of the data is on
// V2." This baseline implements exactly that behaviour: it sees only SAN
// metrics (no plans, no operators, no record counts), scores each volume's
// storage metrics between the satisfactory and unsatisfactory windows with
// the same KDE machinery, and ranks candidates by anomaly score weighted by
// the volume's share of stored data.
#ifndef DIADS_BASELINE_SAN_ONLY_H_
#define DIADS_BASELINE_SAN_ONLY_H_

#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "monitor/timeseries.h"
#include "san/topology.h"
#include "stats/anomaly.h"

namespace diads::baseline {

struct SanOnlyCause {
  ComponentId volume;
  double anomaly_score = 0;   ///< Max over the volume's storage metrics.
  double data_share = 0;      ///< Volume size / total size.
  double rank_score = 0;      ///< anomaly * (0.5 + data_share) — the "more
                              ///< data = more important" heuristic.
  std::string description;
};

/// Diagnoses purely from SAN telemetry between two time windows.
class SanOnlyDiagnoser {
 public:
  SanOnlyDiagnoser(const san::SanTopology* topology,
                   const monitor::TimeSeriesStore* store,
                   stats::AnomalyConfig config = {});

  /// Scores every volume; returns candidates with anomaly >= threshold,
  /// ranked by rank_score descending.
  Result<std::vector<SanOnlyCause>> Diagnose(
      const TimeInterval& satisfactory_window,
      const TimeInterval& unsatisfactory_window) const;

 private:
  const san::SanTopology* topology_;
  const monitor::TimeSeriesStore* store_;
  stats::AnomalyConfig config_;
};

}  // namespace diads::baseline

#endif  // DIADS_BASELINE_SAN_ONLY_H_
