// MySQL-ish cost-based optimizer.
//
// The second synthetic engine's planner, deliberately different from the
// PostgreSQL-ish Optimizer along the axes real MySQL differs:
//
//   * One I/O cost. MySQL's cost model charges io_block_read_cost for any
//     page fetch — there is no random_page_cost / seq_page_cost split, so
//     index access paths are never penalised for random access. Combined
//     with the join strategy below this produces the engine's famous
//     index-nested-loop bias.
//
//   * Nested-loop joins only. No hash join, no merge join: every join is
//     an index nested loop ("ref" / "eq_ref" access on the inner table)
//     or, when no usable index exists, a block nested loop over a
//     join-buffer-materialised inner ("BNL").
//
//   * Subquery materialisation. The decorrelated aggregate block is
//     materialised into a temp table and joined back through an
//     auto-generated key ("ref<auto_key0>") — MySQL 8's derived-table
//     strategy — instead of PostgreSQL's hash join over the subquery.
//
//   * filesort / tmp-table aggregation for ORDER BY and GROUP BY.
//
// Plans come out in the shared db::Plan operator taxonomy (that is the
// point — the APG layers never see engine vocabulary), with each node's
// engine-native access-type name recorded in PlanOp::engine_op.
#ifndef DIADS_DB_MYSQL_OPTIMIZER_H_
#define DIADS_DB_MYSQL_OPTIMIZER_H_

#include <string>

#include "common/status.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "db/query.h"

namespace diads::db {

/// MySQL-flavoured optimizer/executor parameters (the Server Cost and
/// session-buffer subset the plan-change analysis cares about). Note the
/// single `io_block_read_cost` where DbParams has seq/random page costs.
struct MysqlParams {
  double io_block_read_cost = 1.0;      ///< Any page read, any pattern.
  double memory_block_read_cost = 0.25; ///< Buffer-pool-resident page.
  double row_evaluate_cost = 0.1;       ///< Per row examined.
  double key_compare_cost = 0.05;       ///< Per index key compared.
  double join_buffer_mb = 0.25;         ///< join_buffer_size (BNL chunking).
  double sort_buffer_mb = 8.0;          ///< filesort spill threshold.
  double tmp_table_mb = 32.0;           ///< Materialisation spill threshold.
  double buffer_pool_mb = 512.0;        ///< innodb_buffer_pool_size.
  /// Executor translation: milliseconds of CPU per optimizer cost unit.
  /// MySQL cost units are ~10x PostgreSQL's (row_evaluate_cost 0.1 vs
  /// cpu_tuple_cost 0.01), so the unit is a tenth of the PostgreSQL one —
  /// both engines execute the same physical work in comparable time.
  double cpu_ms_per_cost_unit = 0.006;
};

/// Parameter vocabulary for kDbParamChanged events ("io_block_read_cost",
/// ...). InvalidArgument for unknown names — including PostgreSQL-only
/// names like "random_page_cost", which do not exist on this engine.
Status SetMysqlParamByName(MysqlParams* params, const std::string& name,
                           double value);
Result<double> GetMysqlParamByName(const MysqlParams& params,
                                   const std::string& name);

/// The MySQL-ish planner. Stateless besides catalog/params references;
/// Optimize() is deterministic.
class MysqlOptimizer {
 public:
  /// `catalog` must outlive the optimizer.
  MysqlOptimizer(const Catalog* catalog, MysqlParams params);

  Result<Plan> Optimize(const QuerySpec& spec) const;

  const MysqlParams& params() const { return params_; }
  void set_params(MysqlParams params) { params_ = params; }

  /// Internal plan-tree node (defined in the .cc; public so the planner's
  /// free helper functions can build candidate subtrees).
  struct Node;

 private:
  const Catalog* catalog_;
  MysqlParams params_;
};

}  // namespace diads::db

#endif  // DIADS_DB_MYSQL_OPTIMIZER_H_
