#include "db/executor.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <set>

#include "common/strings.h"

namespace diads::db {
namespace {

/// Scans carry their planned table row count through est_pages/est_rows;
/// the executor needs actual/planned ratios per *alias* (a table may appear
/// under several aliases with independent scan ops, like partsupp in Q2).
struct SubtreeInfo {
  std::set<std::string> aliases;  ///< Scan aliases in the subtree.
};

}  // namespace

Executor::Executor(ExecutorContext ctx, SeededRng rng)
    : ctx_(ctx), rng_(std::move(rng)) {
  assert(ctx_.catalog && ctx_.topology && ctx_.perf_model &&
         ctx_.buffer_pool && ctx_.locks && ctx_.activity);
}

Result<std::vector<Executor::OpWork>> Executor::ComputeActualRows(
    const Plan& plan) {
  std::vector<OpWork> work(plan.size());
  std::vector<double> subtree_ratio(plan.size(), 1.0);

  // Per-scan actual/planned row ratio. Approximation (documented in the
  // header): nested-loop inner scans scale with their own table's growth
  // but not with the outer side's probe-count growth; the fault scenarios
  // mutate the probed table (partsupp), for which this is exact.
  std::function<double(int)> walk = [&](int index) -> double {
    const PlanOp& op = plan.op(index);
    double ratio = 1.0;
    for (int child : op.children) ratio *= walk(child);
    if (op.is_scan()) {
      Result<const TableDef*> table = ctx_.catalog->FindTable(op.table);
      if (table.ok()) {
        const double planned = std::max(1.0, op.est_rows);
        // est_rows already includes filters/probe counts; scale by the
        // table-level actual/optimizer ratio. Optimizer stats at plan time
        // equal the catalog's optimizer stats unless ANALYZE ran after
        // planning — use the actual/optimizer gap, which is exactly the
        // un-analyzed data drift the executor should see.
        const double table_ratio =
            (*table)->actual_stats.row_count /
            std::max(1.0, (*table)->optimizer_stats.row_count);
        ratio *= table_ratio;
        // Physical-layout degradation inflates page reads only: compression
        // drift and stale zone maps make the same logical rows touch more
        // segment pages, while actual_rows (and so Module CR's record
        // counts) stay exactly where the plan put them.
        double bloat = (*table)->storage_bloat;
        if (op.type == OpType::kIndexScan) {
          Result<const IndexDef*> via = ctx_.catalog->FindIndex(op.index_name);
          if (via.ok()) bloat *= (*via)->scan_bloat;
        }
        const double jitter = std::max(0.8, rng_.Normal(1.0, 0.015));
        work[static_cast<size_t>(index)].actual_rows =
            std::max(0.0, planned * table_ratio * jitter);
        work[static_cast<size_t>(index)].physical_reads =
            op.est_pages * table_ratio * bloat * jitter;
      } else {
        work[static_cast<size_t>(index)].actual_rows = op.est_rows;
        work[static_cast<size_t>(index)].physical_reads = op.est_pages;
      }
    } else {
      double rows = op.est_rows * ratio;
      if (op.type == OpType::kAggregate) {
        // Group count is NDV-capped: data growth adds rows per group, not
        // groups.
        rows = std::min(rows, op.est_rows * 1.02);
      }
      if (op.type == OpType::kLimit) {
        double child_rows = op.children.empty()
                                ? rows
                                : work[static_cast<size_t>(op.children[0])]
                                      .actual_rows;
        rows = std::min(op.est_rows, child_rows);
      }
      work[static_cast<size_t>(index)].actual_rows = std::max(1.0, rows);
    }
    subtree_ratio[static_cast<size_t>(index)] = ratio;
    return ratio;
  };
  walk(plan.root_index());

  // Buffer pool split of page fetches, and scan access pattern.
  for (const PlanOp& op : plan.ops()) {
    OpWork& w = work[static_cast<size_t>(op.index)];
    if (!op.is_scan()) continue;
    const double pages = w.physical_reads;  // Total page touches so far.
    const double hit = ctx_.buffer_pool->HitRate(op.table);
    w.buffer_hits = pages * hit;
    w.physical_reads = pages * (1.0 - hit);
    Result<ComponentId> volume = ctx_.catalog->VolumeOfTable(op.table);
    if (volume.ok()) w.volume = *volume;
    if (op.type == OpType::kSeqScan) {
      w.seq_fraction = 0.9;
    } else {
      Result<const IndexDef*> index = ctx_.catalog->FindIndex(op.index_name);
      w.seq_fraction = index.ok() ? 0.5 * (*index)->clustering : 0.2;
    }
  }
  return work;
}

void Executor::ComputeCpuWork(const Plan& plan, std::vector<OpWork>* work) {
  const DbParams& p = ctx_.params;
  const double unit = p.cpu_ms_per_cost_unit;
  for (const PlanOp& op : plan.ops()) {
    OpWork& w = (*work)[static_cast<size_t>(op.index)];
    const double out_rows = w.actual_rows;
    double child_rows = 0;
    for (int c : op.children) {
      child_rows += (*work)[static_cast<size_t>(c)].actual_rows;
    }
    double cost_units = 0;
    switch (op.type) {
      case OpType::kSeqScan:
        cost_units = (w.buffer_hits + w.physical_reads) * 0.1 +
                     out_rows * p.cpu_tuple_cost;
        break;
      case OpType::kIndexScan:
        cost_units = out_rows * (p.cpu_index_tuple_cost + p.cpu_tuple_cost);
        break;
      case OpType::kHashJoin:
        cost_units = child_rows * p.cpu_operator_cost +
                     out_rows * p.cpu_tuple_cost;
        break;
      case OpType::kHash:
        cost_units = child_rows * p.cpu_operator_cost * 1.5;
        break;
      case OpType::kMergeJoin:
        cost_units = child_rows * p.cpu_operator_cost +
                     out_rows * p.cpu_tuple_cost;
        break;
      case OpType::kNestLoopJoin:
        cost_units = out_rows * p.cpu_tuple_cost;
        break;
      case OpType::kSort: {
        const double n = std::max(2.0, child_rows);
        cost_units = 2.0 * n * std::log2(n) * p.cpu_operator_cost;
        break;
      }
      case OpType::kAggregate:
        cost_units = child_rows * p.cpu_operator_cost +
                     out_rows * p.cpu_tuple_cost;
        break;
      case OpType::kMaterialize:
        cost_units = child_rows * p.cpu_operator_cost;
        break;
      case OpType::kResult:
      case OpType::kLimit:
      case OpType::kFilter:
        cost_units = out_rows * p.cpu_tuple_cost * 0.1;
        break;
    }
    const double jitter = std::max(0.7, rng_.Normal(1.0, 0.04));
    w.cpu_ms = cost_units * unit * jitter;
  }
}

int Executor::AssignPipelines(const Plan& plan,
                              std::vector<OpWork>* work) const {
  int next_pipeline = 0;
  std::function<void(int, int)> assign = [&](int index, int pipeline) {
    const PlanOp& op = plan.op(index);
    int my_pipeline = pipeline;
    if (IsBlockingOutput(op.type)) {
      // Blocking op and its subtree form a fresh pipeline; the blocking
      // op's consuming/sorting work happens there.
      my_pipeline = next_pipeline++;
    }
    (*work)[static_cast<size_t>(index)].pipeline = my_pipeline;
    for (int child : op.children) assign(child, my_pipeline);
  };
  const int root_pipeline = next_pipeline++;
  assign(plan.root_index(), root_pipeline);
  return next_pipeline;
}

Result<QueryRunRecord> Executor::Execute(std::shared_ptr<const Plan> plan,
                                         SimTimeMs start_time) {
  if (plan == nullptr || plan->size() == 0) {
    return Status::InvalidArgument("cannot execute an empty plan");
  }
  Result<std::vector<OpWork>> work_r = ComputeActualRows(*plan);
  DIADS_RETURN_IF_ERROR(work_r.status());
  std::vector<OpWork> work = std::move(*work_r);
  ComputeCpuWork(*plan, &work);
  const int n_pipelines = AssignPipelines(*plan, &work);

  // Pipeline execution order: post-order over the pipeline tree, i.e.
  // producers (hash builds, sort inputs) before their consumers. Equivalent
  // to ordering ops post-order and listing pipelines by last-visited.
  // A pipeline completes when its topmost member is done, which in post-
  // order is the pipeline's *last* occurrence; ordering pipelines by last
  // occurrence puts every producer (hash build, sort input) before its
  // consumer.
  std::vector<int> pipeline_order;
  {
    std::vector<int> op_post_order;
    std::function<void(int)> visit = [&](int index) {
      for (int child : plan->op(index).children) visit(child);
      op_post_order.push_back(index);
    };
    visit(plan->root_index());

    std::vector<int> last_pos(static_cast<size_t>(n_pipelines), -1);
    for (size_t i = 0; i < op_post_order.size(); ++i) {
      const int p = work[static_cast<size_t>(op_post_order[i])].pipeline;
      last_pos[static_cast<size_t>(p)] = static_cast<int>(i);
    }
    pipeline_order.resize(static_cast<size_t>(n_pipelines));
    for (int p = 0; p < n_pipelines; ++p) pipeline_order[static_cast<size_t>(p)] = p;
    std::sort(pipeline_order.begin(), pipeline_order.end(),
              [&last_pos](int a, int b) {
                return last_pos[static_cast<size_t>(a)] <
                       last_pos[static_cast<size_t>(b)];
              });
  }

  // Per-pipeline totals.
  std::vector<double> pipeline_cpu(static_cast<size_t>(n_pipelines), 0.0);
  std::vector<std::vector<int>> pipeline_scans(
      static_cast<size_t>(n_pipelines));
  std::vector<std::vector<int>> pipeline_members(
      static_cast<size_t>(n_pipelines));
  for (const PlanOp& op : plan->ops()) {
    OpWork& w = work[static_cast<size_t>(op.index)];
    pipeline_cpu[static_cast<size_t>(w.pipeline)] += w.cpu_ms;
    pipeline_members[static_cast<size_t>(w.pipeline)].push_back(op.index);
    if (op.is_scan() && w.volume.valid() && w.physical_reads > 0) {
      pipeline_scans[static_cast<size_t>(w.pipeline)].push_back(op.index);
    }
  }

  // Schedule pipelines sequentially with a 2-step latency fixed point.
  std::vector<TimeInterval> pipeline_span(static_cast<size_t>(n_pipelines));
  SimTimeMs cursor = start_time;
  for (int p : pipeline_order) {
    const auto pi = static_cast<size_t>(p);
    // Processor sharing: background CPU demand on the server (competing
    // jobs, the CPU-saturation fault) stretches this backend's compute.
    const double bg_cpu =
        ctx_.perf_model
            ->ServerStats(ctx_.db_server,
                          TimeInterval{cursor, cursor + Minutes(5)})
            .cpu_utilization;
    const double cpu_stretch = 1.0 / std::max(0.15, 1.0 - bg_cpu);
    // The stretch is real compute-wait: reflect it in each member's self
    // time so Module IA's attribution sees it.
    if (cpu_stretch > 1.0) {
      for (int member : pipeline_members[pi]) {
        work[static_cast<size_t>(member)].cpu_ms *= cpu_stretch;
      }
    }
    double duration_ms = pipeline_cpu[pi] * cpu_stretch;

    // Lock waits for scans starting in this pipeline.
    for (int scan : pipeline_scans[pi]) {
      OpWork& w = work[static_cast<size_t>(scan)];
      const PlanOp& op = plan->op(scan);
      w.lock_wait_ms =
          static_cast<double>(ctx_.locks->WaitFor(op.table, cursor));
      duration_ms += w.lock_wait_ms;
    }

    // Iteration 0: latency without self-load.
    double io_ms = 0;
    for (int scan : pipeline_scans[pi]) {
      OpWork& w = work[static_cast<size_t>(scan)];
      const double lat =
          ctx_.perf_model->VolumeReadLatencyMs(w.volume, cursor);
      w.io_wait_ms = w.physical_reads * lat;
      io_ms += w.io_wait_ms;
    }
    // Iteration 1: include self-load at the estimated duration.
    const double d0 = std::max(1.0, duration_ms + io_ms);
    io_ms = 0;
    for (int scan : pipeline_scans[pi]) {
      OpWork& w = work[static_cast<size_t>(scan)];
      san::IoProfile self;
      self.read_iops = w.physical_reads / (d0 / 1000.0);
      self.seq_fraction = w.seq_fraction;
      const SimTimeMs mid = cursor + static_cast<SimTimeMs>(d0 / 2);
      const double lat =
          ctx_.perf_model->VolumeReadLatencyMs(w.volume, mid, self);
      w.io_wait_ms = w.physical_reads * lat;
      io_ms += w.io_wait_ms;
    }
    duration_ms += io_ms;
    // Scheduling noise: process wakeups, background autovacuum, cache
    // effects. Absolute (not relative), so short CPU-only pipelines carry
    // realistic baseline variance — without it a 10 ms hash-build pipeline
    // is so repeatable that a 1 ms drift looks like a 5-sigma anomaly.
    duration_ms += std::max(0.0, rng_.Normal(30.0, 15.0));
    duration_ms = std::max(duration_ms, 1.0);

    pipeline_span[pi] =
        TimeInterval{cursor, cursor + static_cast<SimTimeMs>(duration_ms)};
    cursor = pipeline_span[pi].end;
  }

  const TimeInterval run_interval{start_time, cursor};

  // Register SAN load + CPU for the run so the monitors see it.
  for (int p = 0; p < n_pipelines; ++p) {
    const auto pi = static_cast<size_t>(p);
    if (pipeline_span[pi].empty()) continue;
    const double dur_s =
        static_cast<double>(pipeline_span[pi].duration()) / 1000.0;
    for (int scan : pipeline_scans[pi]) {
      OpWork& w = work[static_cast<size_t>(scan)];
      const double read_iops = w.physical_reads / std::max(1e-3, dur_s);
      // The multipath driver round-robins I/O across every surviving route,
      // so the scan's demand is split evenly over them. With one path this
      // degenerates to the single LoadEvent of the single-route model.
      Result<std::vector<san::IoPath>> paths =
          ctx_.topology->ResolvePaths(ctx_.db_server, w.volume);
      const size_t n_paths = paths.ok() ? paths->size() : 1;
      for (size_t pp = 0; pp < n_paths; ++pp) {
        san::LoadEvent load;
        load.volume = w.volume;
        load.interval = pipeline_span[pi];
        load.profile.read_iops = read_iops / static_cast<double>(n_paths);
        load.profile.seq_fraction = w.seq_fraction;
        load.profile.avg_block_kb = 8.0;
        load.source = ctx_.database;
        if (paths.ok()) {
          load.path_ports = (*paths)[pp].ports;
          load.path_switches = (*paths)[pp].switches;
        }
        DIADS_RETURN_IF_ERROR(ctx_.perf_model->AddLoad(std::move(load)));
      }
    }
    const double cpu_util =
        std::min(1.0, pipeline_cpu[pi] /
                          std::max(1.0, static_cast<double>(
                                            pipeline_span[pi].duration())));
    const int cores =
        std::max(1, ctx_.topology->server(ctx_.db_server).cpu_cores);
    DIADS_RETURN_IF_ERROR(ctx_.perf_model->AddCpuLoad(
        ctx_.db_server, pipeline_span[pi], cpu_util / cores));
  }

  // Build the run record. Spans: ops take their pipeline's span; Sort/
  // Aggregate emission extends to the end of the consumer's pipeline.
  QueryRunRecord record;
  record.query_name = plan->query_name();
  record.plan = plan;
  record.plan_fingerprint = plan->Fingerprint();
  record.interval = run_interval;
  for (const PlanOp& op : plan->ops()) {
    const OpWork& w = work[static_cast<size_t>(op.index)];
    OperatorRunStats stats;
    stats.op_index = op.index;
    stats.op_number = op.op_number;
    const TimeInterval& span = pipeline_span[static_cast<size_t>(w.pipeline)];
    stats.start = span.begin;
    stats.stop = span.end;
    if (SpanExtendsToOutput(op.type)) {
      const int parent = plan->ParentOf(op.index);
      if (parent >= 0) {
        const int parent_pipeline =
            work[static_cast<size_t>(parent)].pipeline;
        stats.stop = std::max(
            stats.stop,
            pipeline_span[static_cast<size_t>(parent_pipeline)].end);
      }
    }
    stats.est_rows = op.est_rows;
    stats.actual_rows = w.actual_rows;
    stats.physical_reads = w.physical_reads;
    stats.buffer_hits = w.buffer_hits;
    stats.io_wait_ms = w.io_wait_ms;
    stats.cpu_ms = w.cpu_ms;
    stats.lock_wait_ms = w.lock_wait_ms;
    record.operators.push_back(stats);
  }

  // Record database-level activity for the collectors.
  {
    const double dur_s =
        std::max(1e-3, static_cast<double>(run_interval.duration()) / 1000.0);
    DbActivityCounters counters;
    int index_scan_count = 0;
    int seq_scan_count = 0;
    for (const PlanOp& op : plan->ops()) {
      const OpWork& w = work[static_cast<size_t>(op.index)];
      if (!op.is_scan()) continue;
      counters.blocks_read_per_sec += w.physical_reads / dur_s;
      counters.buffer_hits_per_sec += w.buffer_hits / dur_s;
      counters.lock_wait_ms_per_sec += w.lock_wait_ms / dur_s;
      if (op.type == OpType::kIndexScan) {
        ++index_scan_count;
        counters.index_reads_per_sec += w.physical_reads / dur_s;
        counters.index_fetches_per_sec += w.actual_rows / dur_s;
      } else {
        ++seq_scan_count;
      }
    }
    counters.index_scans_per_sec = index_scan_count / dur_s;
    counters.seq_scans_per_sec = seq_scan_count / dur_s;
    counters.locks_held = static_cast<double>(index_scan_count + seq_scan_count);
    DIADS_RETURN_IF_ERROR(ctx_.activity->AddActivity(run_interval, counters));
  }

  return record;
}

}  // namespace diads::db
