// The MySQL-ish backend: DbBackend over MysqlOptimizer, the MysqlParams
// vocabulary, and the MakeMysqlQ2Plan fixture.
//
// Statistics semantics differ from PostgreSQL's: an InnoDB-style automatic
// recalculation (innodb_stats_auto_recalc) refreshes a table's optimizer
// statistics from sampled index dives once cumulative DML drift passes 10%
// of the table — so bulk DML through ApplyDml() both moves the actual
// statistics and (eventually, approximately) the optimizer's view, logging
// the kTableStatsChanged event a real deployment would see.
// ApplyDmlSilently() models tables created with STATS_AUTO_RECALC=0, the
// standard big-table opt-out — that is what silent data-drift faults use.
#ifndef DIADS_DB_MYSQL_BACKEND_H_
#define DIADS_DB_MYSQL_BACKEND_H_

#include <string>
#include <unordered_map>

#include "db/backend.h"
#include "db/mysql_optimizer.h"

namespace diads::db {

class MysqlBackend : public DbBackend {
 public:
  explicit MysqlBackend(const BackendInit& init);

  BackendKind kind() const override { return BackendKind::kMysql; }

  Result<Plan> OptimizeQuery(const QuerySpec& spec) const override;
  Result<Plan> OptimizeQueryWithParam(const QuerySpec& spec,
                                      const std::string& param,
                                      double value) const override;
  Result<Plan> MakePaperPlan() const override;

  Status SetParam(const std::string& name, double value) override;
  Result<double> GetParam(const std::string& name) const override;
  std::vector<std::string> ParamNames() const override;
  PlanMisconfigKnob MisconfigKnob() const override;
  StatsDriftSpec AnalyzeDriftSpec() const override;

  DbParams ExecutorParams() const override;

  Status ApplyDml(SimTimeMs t, const std::string& table, double factor,
                  const std::string& description) override;
  Status ApplyDmlSilently(SimTimeMs t, const std::string& table,
                          double factor,
                          const std::string& description) override;
  Status Analyze(SimTimeMs t, const std::string& table) override;

  /// Cumulative drift threshold that triggers an automatic recalculation
  /// (fraction of the table changed; InnoDB's default is 10%).
  static constexpr double kAutoRecalcThreshold = 0.10;

 private:
  Catalog* catalog_;
  MysqlParams params_;
  double scale_factor_;
  /// Per-table multiplicative row drift since the last stats refresh.
  std::unordered_map<std::string, double> drift_since_recalc_;
};

}  // namespace diads::db

#endif  // DIADS_DB_MYSQL_BACKEND_H_
