#include "db/run_record.h"

#include "common/strings.h"

namespace diads::db {

const char* RunLabelName(RunLabel label) {
  switch (label) {
    case RunLabel::kUnlabeled:
      return "unlabeled";
    case RunLabel::kSatisfactory:
      return "satisfactory";
    case RunLabel::kUnsatisfactory:
      return "unsatisfactory";
  }
  return "?";
}

const OperatorRunStats* QueryRunRecord::FindOp(int op_index) const {
  for (const OperatorRunStats& s : operators) {
    if (s.op_index == op_index) return &s;
  }
  return nullptr;
}

int RunCatalog::AddRun(QueryRunRecord record) {
  record.run_id = static_cast<int>(runs_.size());
  runs_.push_back(std::move(record));
  labels_.push_back(RunLabel::kUnlabeled);
  return runs_.back().run_id;
}

Status RunCatalog::SetLabel(int run_id, RunLabel label) {
  if (run_id < 0 || run_id >= static_cast<int>(runs_.size())) {
    return Status::NotFound(StrFormat("no run with id %d", run_id));
  }
  labels_[static_cast<size_t>(run_id)] = label;
  return Status::Ok();
}

Status RunCatalog::LabelByDurationThreshold(const std::string& query,
                                            SimTimeMs threshold_ms) {
  if (threshold_ms <= 0) {
    return Status::InvalidArgument("threshold must be positive");
  }
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].query_name != query) continue;
    labels_[i] = runs_[i].duration_ms() > threshold_ms
                     ? RunLabel::kUnsatisfactory
                     : RunLabel::kSatisfactory;
  }
  return Status::Ok();
}

Status RunCatalog::LabelByTimeWindow(const std::string& query,
                                     const TimeInterval& window,
                                     RunLabel label) {
  if (window.empty()) {
    return Status::InvalidArgument("labeling window is empty");
  }
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].query_name != query) continue;
    if (window.Contains(runs_[i].interval.begin)) labels_[i] = label;
  }
  return Status::Ok();
}

Result<const QueryRunRecord*> RunCatalog::FindRun(int run_id) const {
  if (run_id < 0 || run_id >= static_cast<int>(runs_.size())) {
    return Status::NotFound(StrFormat("no run with id %d", run_id));
  }
  return &runs_[static_cast<size_t>(run_id)];
}

RunLabel RunCatalog::LabelOf(int run_id) const {
  if (run_id < 0 || run_id >= static_cast<int>(labels_.size())) {
    return RunLabel::kUnlabeled;
  }
  return labels_[static_cast<size_t>(run_id)];
}

std::vector<const QueryRunRecord*> RunCatalog::RunsWithLabel(
    const std::string& query, RunLabel label) const {
  std::vector<const QueryRunRecord*> out;
  for (size_t i = 0; i < runs_.size(); ++i) {
    if (runs_[i].query_name == query && labels_[i] == label) {
      out.push_back(&runs_[i]);
    }
  }
  return out;
}

}  // namespace diads::db
