#include "db/columnar_backend.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "db/columnar_plan.h"

namespace diads::db {
namespace {

/// Deterministic estimation error for a reorganization's statistics
/// refresh: the row count is derived from per-segment metadata, which is
/// exact for fully rewritten segments but approximate for the tail segment
/// still accepting inserts. Hashing the table name keeps runs reproducible
/// (and distinct from the MySQL backend's sampled-dive error).
double SegmentMetadataError(const std::string& table) {
  // Map to [-0.015, +0.015].
  return (static_cast<double>(Fnv1a64(table) % 5003) / 5002.0 - 0.5) * 0.03;
}

}  // namespace

ColumnarBackend::ColumnarBackend(const BackendInit& init)
    : catalog_(init.catalog), scale_factor_(init.scale_factor) {
  assert(catalog_ != nullptr);
  params_.buffer_pool_mb = init.buffer_pool_mb;
}

Result<Plan> ColumnarBackend::OptimizeQuery(const QuerySpec& spec) const {
  ColumnarOptimizer optimizer(catalog_, params_);
  return optimizer.Optimize(spec);
}

Result<Plan> ColumnarBackend::OptimizeQueryWithParam(const QuerySpec& spec,
                                                     const std::string& param,
                                                     double value) const {
  ColumnarParams what_if = params_;
  DIADS_RETURN_IF_ERROR(SetColumnarParamByName(&what_if, param, value));
  ColumnarOptimizer optimizer(catalog_, what_if);
  return optimizer.Optimize(spec);
}

Result<Plan> ColumnarBackend::MakePaperPlan() const {
  return MakeColumnarQ2Plan(scale_factor_);
}

Status ColumnarBackend::SetParam(const std::string& name, double value) {
  return SetColumnarParamByName(&params_, name, value);
}

Result<double> ColumnarBackend::GetParam(const std::string& name) const {
  return GetColumnarParamByName(params_, name);
}

std::vector<std::string> ColumnarBackend::ParamNames() const {
  return {"segment_read_cost",      "compression_codec_cost",
          "tuple_reconstruct_cost", "vector_batch_rows",
          "batch_dispatch_cost",    "zone_map_consult_cost",
          "zone_map_refresh_threshold", "buffer_pool_mb"};
}

PlanMisconfigKnob ColumnarBackend::MisconfigKnob() const {
  // No page-cost knob exists on this engine; the corresponding
  // misconfiguration is the zone-map consult cost cranked far above the
  // scan costs, which makes pruning look prohibitive (a large table pays
  // one consult per zone) and flips every zone-pruned scan into a full
  // vector scan of all segments.
  return {"zone_map_consult_cost", 40.0};
}

StatsDriftSpec ColumnarBackend::AnalyzeDriftSpec() const {
  // Hash joins are insensitive to access-path randomness, so the join
  // order survives substantial drift: with every access path a scan,
  // only the build-order arithmetic can move. part must grow ~70x
  // before fresh statistics reorder the main block — the DP stops
  // hash-building part against a partsupp-driven outer and instead
  // drives from nation, deferring the now-huge part build to the top of
  // the left-deep chain. 90x clears the break-even with margin.
  return {"part", 90.0};
}

DbParams ColumnarBackend::ExecutorParams() const {
  // Executor-facing translation of the engine cost model: segment reads
  // serve as both page costs (columnar I/O is sequential segment streaming
  // either way), tuple reconstruction plays cpu_tuple_cost's role,
  // decompression plays the per-index-tuple role on zone-pruned scans, and
  // batch dispatch amortized over a batch is the per-operator cost.
  DbParams out;
  out.seq_page_cost = params_.segment_read_cost;
  out.random_page_cost = params_.segment_read_cost;
  out.cpu_tuple_cost = params_.tuple_reconstruct_cost;
  out.cpu_index_tuple_cost = params_.compression_codec_cost;
  out.cpu_operator_cost =
      params_.batch_dispatch_cost / std::max(1.0, params_.vector_batch_rows);
  out.work_mem_mb = params_.buffer_pool_mb / 8.0;
  out.buffer_pool_mb = params_.buffer_pool_mb;
  out.effective_cache_mb = params_.buffer_pool_mb * 1.5;
  out.cpu_ms_per_cost_unit = params_.cpu_ms_per_cost_unit;
  return out;
}

Status ColumnarBackend::Reorganize(SimTimeMs t, const std::string& table) {
  // The reorganization rewrites the drifted segments: compression returns
  // to its healthy ratio and the zone maps become exact again, so any
  // physical-layout degradation on the table is healed alongside the
  // statistics refresh.
  DIADS_RETURN_IF_ERROR(catalog_->SetTableStorageBloatSilently(table, 1.0));
  for (const IndexDef* zone_map : catalog_->IndexesOn(table, "")) {
    DIADS_RETURN_IF_ERROR(
        catalog_->SetIndexScanBloatSilently(zone_map->name, 1.0));
  }
  return catalog_->RefreshOptimizerStats(
      t + Seconds(45), table, SegmentMetadataError(table),
      StrFormat("segment reorganization on '%s' (recompress, zone map "
                "rebuild, stats from segment metadata)",
                table.c_str()));
}

Status ColumnarBackend::ApplyDml(SimTimeMs t, const std::string& table,
                                 double factor,
                                 const std::string& description) {
  DIADS_RETURN_IF_ERROR(catalog_->ApplyDml(t, table, factor, description));
  double& drift = drift_since_reorg_.try_emplace(table, 1.0).first->second;
  drift *= factor;
  if (std::fabs(drift - 1.0) < params_.zone_map_refresh_threshold) {
    return Status::Ok();
  }
  drift = 1.0;
  return Reorganize(t, table);
}

Status ColumnarBackend::ApplyDmlSilently(SimTimeMs t, const std::string& table,
                                         double factor,
                                         const std::string& description) {
  // Append-only ingest below the reorganization radar: the data lands, the
  // optimizer stays blind, no segments are rewritten.
  return catalog_->ApplyDml(t, table, factor, description);
}

Status ColumnarBackend::Analyze(SimTimeMs t, const std::string& table) {
  // Explicit statistics refresh (modelled as exact). Statistics only: an
  // ANALYZE does not rewrite segments, so compression drift and stale zone
  // maps survive it — only a reorganization heals those. Like the
  // reorganization, it resets the churn counter.
  drift_since_reorg_.erase(table);
  return catalog_->Analyze(t, table);
}

}  // namespace diads::db
