// TPC-H-like schema and layout factory.
//
// The paper's testbed "runs TPC-H queries on a PostgreSQL database server
// configured to access tables using two Ext3 file system volumes V1 and V2"
// (Section 5). This factory creates the TPC-H tables (minus lineitem/orders/
// customer, which Q2 does not touch) with scale-factor-derived statistics
// and the paper's volume layout:
//
//   * V1 hosts the partsupp tablespace — partsupp is scanned by both the
//     main query block and the correlated subquery, giving the two V1 leaf
//     operators (O8, O22) of the Figure 1 narrative;
//   * V2 hosts everything else (part, supplier, nation, region and all
//     indexes) — the remaining seven leaf operators, and "most of the data".
#ifndef DIADS_DB_TPCH_H_
#define DIADS_DB_TPCH_H_

#include "common/ids.h"
#include "common/status.h"
#include "db/catalog.h"

namespace diads::db {

/// Options for the TPC-H layout.
struct TpchOptions {
  double scale_factor = 1.0;
  /// SAN volume for the partsupp tablespace ("V1" in the paper).
  ComponentId volume_v1;
  /// SAN volume for all other tablespaces ("V2").
  ComponentId volume_v2;
  StorageMode storage_mode = StorageMode::kSystemManaged;
};

/// Populates `catalog` with the TPC-H Q2 working set: region, nation,
/// supplier, part, partsupp, their primary/foreign-key indexes, and the
/// tablespace->volume mapping described above.
Status BuildTpchCatalog(const TpchOptions& options, Catalog* catalog);

}  // namespace diads::db

#endif  // DIADS_DB_TPCH_H_
