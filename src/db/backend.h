// Database-backend abstraction.
//
// The paper claims the Annotated Plan Graph abstraction is backend-neutral:
// an APG ties *any* engine's plan operators to the SAN components they
// depend on. To make that claim testable the testbed must be able to run
// the same scenarios against more than one engine. DbBackend factors the
// engine-specific third of the simulation out of workload/testbed.*:
//
//   * plan production — the cost model and plan-operator vocabulary the
//     optimizer uses (PostgreSQL: random-vs-sequential page costs, hash
//     joins; MySQL: one io_block_read_cost, nested-loop joins only;
//     columnar: vectorized scans with zone-map pruning, hash joins only);
//   * configuration parameters — each engine's knob vocabulary, including
//     the "misconfiguration knob" scenario S7 flips. The vocabularies are
//     pairwise disjoint except buffer_pool_mb, and every Set/GetParam
//     rejects the other engines' names: random_page_cost exists only on
//     PostgreSQL, io_block_read_cost only on MySQL, and the zone-map /
//     batch knobs (vector_batch_rows, zone_map_consult_cost, ...) only on
//     the columnar engine;
//   * DML / ANALYZE statistics semantics — PostgreSQL leaves optimizer
//     statistics stale until an explicit ANALYZE; MySQL-style engines
//     auto-recalculate from sampled dives once ~10% of the rows change;
//     the columnar engine reorganizes segments (recompress + zone-map
//     rebuild + stats refresh) once churn passes its 30% threshold;
//   * run recording — the executor's cost-to-milliseconds translation
//     parameters.
//
// Everything downstream of plan production (the shared OpType taxonomy,
// QueryRunRecord, the monitoring vocabulary, the APG, the diagnosis
// workflow) is backend-neutral by construction; the conformance tests in
// tests/backend_conformance_test.cc hold every backend to that contract.
#ifndef DIADS_DB_BACKEND_H_
#define DIADS_DB_BACKEND_H_

#include <memory>
#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"
#include "db/catalog.h"
#include "db/optimizer.h"
#include "db/plan.h"
#include "db/query.h"

namespace diads::db {

/// The synthetic engines the testbed can run.
enum class BackendKind {
  kPostgres,  ///< The original PostgreSQL-ish engine.
  kMysql,     ///< MySQL-ish: single I/O cost, index-nested-loop bias.
  kColumnar,  ///< Column-store-ish: vectorized scans, zone maps, hash joins.
};

/// Stable lowercase name ("postgres", "mysql", "columnar").
const char* BackendKindName(BackendKind kind);
Result<BackendKind> BackendKindFromName(const std::string& name);
std::vector<BackendKind> AllBackendKinds();

/// The engine-appropriate S7 fault: a cost-parameter misconfiguration that
/// flips the optimizer onto a worse plan.
struct PlanMisconfigKnob {
  std::string param;
  double bad_value = 0;
};

/// The engine-appropriate S8 fault: a silent data drift large enough that
/// the post-hoc ANALYZE flips this engine's plan. The threshold is a cost-
/// model property — PostgreSQL's random-page penalty abandons index plans
/// after moderate growth, while the MySQL model's flat I/O cost and the
/// columnar model's hash-join insensitivity to access-path randomness keep
/// their join orders optimal until the driving side has grown far past it.
struct StatsDriftSpec {
  std::string table;
  double factor = 0;
};

/// One engine. Owns the engine's live parameter state; reads and mutates
/// the shared Catalog (which must outlive the backend).
class DbBackend {
 public:
  virtual ~DbBackend() = default;

  virtual BackendKind kind() const = 0;
  const char* name() const { return BackendKindName(kind()); }

  /// Registry name of the database instance, e.g. "postgres@dbserver".
  virtual std::string DatabaseComponentName(const std::string& host) const;

  // --- Plan production ------------------------------------------------------
  /// Plans a query with the engine's cost model and current parameters.
  virtual Result<Plan> OptimizeQuery(const QuerySpec& spec) const = 0;

  /// Re-plans with `param` temporarily set to `value` — Module PD's what-if
  /// probe for kDbParamChanged events. Never mutates the live parameters.
  virtual Result<Plan> OptimizeQueryWithParam(const QuerySpec& spec,
                                              const std::string& param,
                                              double value) const = 0;

  /// The engine's Figure-1-style fixture plan for TPC-H Q2: same query,
  /// same nine leaf scans with both partsupp leaves on V1, in the engine's
  /// native operator vocabulary mapped onto the shared OpType taxonomy.
  virtual Result<Plan> MakePaperPlan() const = 0;

  // --- Configuration parameters ---------------------------------------------
  virtual Status SetParam(const std::string& name, double value) = 0;
  virtual Result<double> GetParam(const std::string& name) const = 0;
  /// The engine's parameter vocabulary, in a stable order.
  virtual std::vector<std::string> ParamNames() const = 0;
  virtual PlanMisconfigKnob MisconfigKnob() const = 0;
  virtual StatsDriftSpec AnalyzeDriftSpec() const = 0;

  // --- Run recording --------------------------------------------------------
  /// Executor-facing translation of the engine's current parameters (CPU
  /// cost units to milliseconds, buffer pool size, ...).
  virtual DbParams ExecutorParams() const = 0;

  // --- DML / ANALYZE statistics semantics -----------------------------------
  /// Bulk DML under the engine's statistics-maintenance semantics.
  /// PostgreSQL: actual stats move, optimizer stats stay stale until
  /// ANALYZE. MySQL: an InnoDB-style automatic recalculation refreshes
  /// optimizer stats from sampled dives once cumulative drift passes 10%.
  virtual Status ApplyDml(SimTimeMs t, const std::string& table,
                          double factor, const std::string& description) = 0;

  /// Bulk DML that evades statistics maintenance on every engine
  /// (PostgreSQL: the default; MySQL: STATS_AUTO_RECALC=0 for the table).
  /// This is what the data-drift faults use — their whole point is a
  /// plan/data gap the optimizer does not know about.
  virtual Status ApplyDmlSilently(SimTimeMs t, const std::string& table,
                                  double factor,
                                  const std::string& description) = 0;

  /// Explicit statistics refresh (ANALYZE / ANALYZE TABLE).
  virtual Status Analyze(SimTimeMs t, const std::string& table) = 0;
};

/// Everything a backend needs at construction. The cross-engine knobs are
/// scale_factor and buffer_pool_mb; engine-specific parameters are set
/// after construction through SetParam, in the engine's own vocabulary.
struct BackendInit {
  Catalog* catalog = nullptr;      ///< Must outlive the backend.
  double scale_factor = 1.0;       ///< For fixture-plan estimate calibration.
  double buffer_pool_mb = 512.0;   ///< Threaded into ExecutorParams().
  /// PostgreSQL parameter seed. Other engines ignore it entirely — their
  /// parameters have different names and defaults (see MysqlParams and
  /// ColumnarParams).
  DbParams postgres_params;
};

std::unique_ptr<DbBackend> MakeDbBackend(BackendKind kind,
                                         const BackendInit& init);

}  // namespace diads::db

#endif  // DIADS_DB_BACKEND_H_
