// The PostgreSQL-ish backend: DbBackend over the original Optimizer,
// DbParams vocabulary, and Figure-1 paper plan. Statistics semantics are
// the classic ones — DML leaves optimizer statistics stale until an
// explicit ANALYZE refreshes them.
#ifndef DIADS_DB_POSTGRES_BACKEND_H_
#define DIADS_DB_POSTGRES_BACKEND_H_

#include "db/backend.h"

namespace diads::db {

class PostgresBackend : public DbBackend {
 public:
  explicit PostgresBackend(const BackendInit& init);

  BackendKind kind() const override { return BackendKind::kPostgres; }

  Result<Plan> OptimizeQuery(const QuerySpec& spec) const override;
  Result<Plan> OptimizeQueryWithParam(const QuerySpec& spec,
                                      const std::string& param,
                                      double value) const override;
  Result<Plan> MakePaperPlan() const override;

  Status SetParam(const std::string& name, double value) override;
  Result<double> GetParam(const std::string& name) const override;
  std::vector<std::string> ParamNames() const override;
  PlanMisconfigKnob MisconfigKnob() const override;
  StatsDriftSpec AnalyzeDriftSpec() const override;

  DbParams ExecutorParams() const override { return params_; }

  Status ApplyDml(SimTimeMs t, const std::string& table, double factor,
                  const std::string& description) override;
  Status ApplyDmlSilently(SimTimeMs t, const std::string& table,
                          double factor,
                          const std::string& description) override;
  Status Analyze(SimTimeMs t, const std::string& table) override;

 private:
  Catalog* catalog_;
  DbParams params_;
  double scale_factor_;
};

}  // namespace diads::db

#endif  // DIADS_DB_POSTGRES_BACKEND_H_
