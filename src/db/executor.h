// Query executor — a pipelined execution timing model.
//
// Executes a Plan against the simulated testbed and produces the per-
// operator start/stop times and record counts DIADS consumes. The model
// follows single-backend PostgreSQL semantics:
//
//   * The plan is decomposed into pipelines at blocking operators (Sort,
//     Aggregate, Hash build, Materialize). Pipelines execute sequentially
//     in dependency order (hash builds before probes, sort inputs before
//     consumers) on the single backend process.
//
//   * Every operator in a pipeline runs interleaved with its pipeline
//     peers, so each op's measured span [tb, te] equals the pipeline's
//     span. This is the physical mechanism behind the paper's "event
//     propagation" observation in Module CO: when a leaf scan on a
//     contended volume stalls, the spans of all operators in its pipeline
//     stretch with it, while operators in other pipelines (separated by
//     blocking boundaries) keep their durations.
//
//   * Scan I/O waits come from the SAN performance model: physical reads x
//     the volume's current latency, with a two-step fixed point so the
//     query's own load contributes to the latency it experiences. The
//     executor then registers its I/O as SAN load events, so the
//     monitoring collectors see the query's traffic on V1/V2.
//
//   * Actual record counts derive from the plan's estimates scaled by the
//     catalog's actual-vs-planned statistics ratios (exact for this
//     multiplicative cardinality model; the one approximation — nested-loop
//     inner scans do not rescale with *outer* data growth — is documented
//     at ComputeActualRows).
#ifndef DIADS_DB_EXECUTOR_H_
#define DIADS_DB_EXECUTOR_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/buffer_pool.h"
#include "db/catalog.h"
#include "db/db_activity.h"
#include "db/lock_manager.h"
#include "db/optimizer.h"
#include "db/plan.h"
#include "db/run_record.h"
#include "san/perf_model.h"
#include "san/topology.h"

namespace diads::db {

/// Everything the executor needs. All pointers must outlive the executor.
struct ExecutorContext {
  const Catalog* catalog = nullptr;
  const san::SanTopology* topology = nullptr;
  san::SanPerfModel* perf_model = nullptr;  ///< Mutated: load registration.
  BufferPool* buffer_pool = nullptr;
  const LockManager* locks = nullptr;
  DbActivityModel* activity = nullptr;      ///< Mutated: DB counters.
  ComponentId db_server;                    ///< SAN server hosting the DB.
  ComponentId database;                     ///< kDatabase component.
  DbParams params;
};

/// Executes plans and produces run records.
class Executor {
 public:
  /// `rng` drives per-run jitter (row-count and CPU noise); fork a child
  /// stream per executor.
  Executor(ExecutorContext ctx, SeededRng rng);

  /// Executes `plan` starting at `start_time`. Registers the run's I/O and
  /// CPU load with the SAN model and its counters with the activity model.
  Result<QueryRunRecord> Execute(std::shared_ptr<const Plan> plan,
                                 SimTimeMs start_time);

  const ExecutorContext& context() const { return ctx_; }

 private:
  struct OpWork {
    double actual_rows = 0;
    double physical_reads = 0;
    double buffer_hits = 0;
    double cpu_ms = 0;
    double io_wait_ms = 0;    ///< Filled during scheduling.
    double lock_wait_ms = 0;  ///< Filled during scheduling.
    ComponentId volume;       ///< Scan target volume (invalid otherwise).
    double seq_fraction = 0;
    int pipeline = -1;
  };

  /// Phase A: actual rows/pages per op (see header comment).
  Result<std::vector<OpWork>> ComputeActualRows(const Plan& plan);
  /// Phase B: CPU work per op from actual rows.
  void ComputeCpuWork(const Plan& plan, std::vector<OpWork>* work);
  /// Phase C: pipeline decomposition; returns pipeline count.
  int AssignPipelines(const Plan& plan, std::vector<OpWork>* work) const;

  ExecutorContext ctx_;
  SeededRng rng_;
};

}  // namespace diads::db

#endif  // DIADS_DB_EXECUTOR_H_
