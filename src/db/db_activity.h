// Database activity model and collector.
//
// The executor records database-level activity (blocks read, buffer hits,
// scan counts, lock waits) as piecewise-constant demand, exactly like the
// SAN side's load events; the DbCollector then samples it onto the
// monitoring grid, producing the database column of Figure 4. Keeping the
// DB metrics on the same noisy, interval-averaged path as the SAN metrics
// matters: DIADS sees both layers through the same imperfect telescope.
#ifndef DIADS_DB_DB_ACTIVITY_H_
#define DIADS_DB_DB_ACTIVITY_H_

#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/catalog.h"
#include "db/lock_manager.h"
#include "monitor/noise.h"
#include "monitor/timeseries.h"

namespace diads::db {

/// Aggregate DB counters over one window, expressed as rates (per second).
struct DbActivityCounters {
  double blocks_read_per_sec = 0;
  double buffer_hits_per_sec = 0;
  double index_scans_per_sec = 0;
  double index_reads_per_sec = 0;
  double index_fetches_per_sec = 0;
  double seq_scans_per_sec = 0;
  double lock_wait_ms_per_sec = 0;
  double locks_held = 0;

  DbActivityCounters& Add(const DbActivityCounters& other);
};

/// Piecewise-constant record of database activity.
class DbActivityModel {
 public:
  /// Registers `counters` as active during `window`.
  Status AddActivity(const TimeInterval& window, DbActivityCounters counters);

  /// Average counters over an interval (time-weighted).
  DbActivityCounters AverageOver(const TimeInterval& interval) const;

 private:
  struct Entry {
    TimeInterval window;
    DbActivityCounters counters;
  };
  std::vector<Entry> entries_;
};

/// Samples DB activity (plus lock-manager state and catalog space usage)
/// into the time-series store on the monitoring grid.
class DbCollector {
 public:
  DbCollector(const DbActivityModel* activity, const LockManager* locks,
              const Catalog* catalog, ComponentId database,
              monitor::TimeSeriesStore* store, monitor::NoiseModel* noise,
              SimTimeMs sampling_interval = Minutes(5));

  /// Collects every interval [t, t+dt) with t in [from, to).
  Status CollectRange(SimTimeMs from, SimTimeMs to);

 private:
  Status EmitSample(monitor::MetricId metric, SimTimeMs t, double value);

  const DbActivityModel* activity_;
  const LockManager* locks_;
  const Catalog* catalog_;
  ComponentId database_;
  monitor::TimeSeriesStore* store_;
  monitor::NoiseModel* noise_;
  SimTimeMs sampling_interval_;
};

}  // namespace diads::db

#endif  // DIADS_DB_DB_ACTIVITY_H_
