#include "db/mysql_plan.h"

#include "common/status.h"

namespace diads::db {

Result<Plan> MakeMysqlQ2Plan(double scale_factor) {
  if (scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  const double sf = scale_factor;
  PlanBuilder b("Q2");

  // --- Main block: one nested-loop chain driven by part --------------------
  // O8: part, range access on p_size (plus the BRASS residual filter).
  const int part =
      b.AddScan(OpType::kIndexScan, "p", "part", "part_size_idx");
  b.SetDetail(part, "p_size = 15 and p_type like '%BRASS'");
  b.SetEngineOp(part, "range");
  b.SetEstimates(part, 800 * sf, 800.0 * sf, 600 * sf);

  // O9: partsupp ref access per qualifying part (V1 leaf #1).
  const int ps =
      b.AddScan(OpType::kIndexScan, "ps", "partsupp", "partsupp_partkey_idx");
  b.SetDetail(ps, "ps_partkey = p.p_partkey, ~4 rows/probe");
  b.SetEngineOp(ps, "ref");
  b.SetEstimates(ps, 3200 * sf, 3600.0 * sf, 2000 * sf);

  // O7: nested loop part x partsupp.
  const int nl_part_ps = b.AddOp(OpType::kNestLoopJoin, {part, ps},
                                 "ps_partkey = p_partkey");
  b.SetEngineOp(nl_part_ps, "nested loop");
  b.SetEstimates(nl_part_ps, 3200 * sf, 4800.0 * sf);

  // O10: supplier primary-key lookup per partsupp row.
  const int supplier =
      b.AddScan(OpType::kIndexScan, "s", "supplier", "supplier_pkey");
  b.SetDetail(supplier, "s_suppkey = ps.ps_suppkey");
  b.SetEngineOp(supplier, "eq_ref");
  b.SetEstimates(supplier, 3200 * sf, 7200.0 * sf, 2100 * sf);

  // O6: nested loop with supplier.
  const int nl_s = b.AddOp(OpType::kNestLoopJoin, {nl_part_ps, supplier},
                           "ps.ps_suppkey = s.s_suppkey");
  b.SetEngineOp(nl_s, "nested loop");
  b.SetEstimates(nl_s, 3200 * sf, 12400.0 * sf);

  // O11: nation primary-key lookup per supplier.
  const int nation =
      b.AddScan(OpType::kIndexScan, "n", "nation", "nation_pkey");
  b.SetDetail(nation, "n_nationkey = s.s_nationkey");
  b.SetEngineOp(nation, "eq_ref");
  b.SetEstimates(nation, 3200 * sf, 13000.0 * sf, 3);

  // O5: nested loop with nation.
  const int nl_n = b.AddOp(OpType::kNestLoopJoin, {nl_s, nation},
                           "s.s_nationkey = n.n_nationkey");
  b.SetEngineOp(nl_n, "nested loop");
  b.SetEstimates(nl_n, 3200 * sf, 13400.0 * sf);

  // O12: region primary-key lookup, EUROPE filter drops 4 of 5 rows.
  const int region =
      b.AddScan(OpType::kIndexScan, "r", "region", "region_pkey");
  b.SetDetail(region, "r_regionkey = n.n_regionkey and r_name = 'EUROPE'");
  b.SetEngineOp(region, "eq_ref");
  b.SetEstimates(region, 640 * sf, 13900.0 * sf, 1);

  // O4: main-block root.
  const int nl_r = b.AddOp(OpType::kNestLoopJoin, {nl_n, region},
                           "n.n_regionkey = r.r_regionkey");
  b.SetEngineOp(nl_r, "nested loop");
  b.SetEstimates(nl_r, 640 * sf, 14100.0 * sf);

  // --- Subquery block: materialised derived table --------------------------
  // O18: supplier2 full scan drives the partsupp2 probes.
  const int supplier2 = b.AddScan(OpType::kSeqScan, "s2", "supplier");
  b.SetEngineOp(supplier2, "ALL");
  b.SetEstimates(supplier2, 10000 * sf, 1300.0 * sf, 194 * sf);

  // O19: partsupp2 ref access per supplier (V1 leaf #2; the heavy reader).
  const int ps2 =
      b.AddScan(OpType::kIndexScan, "ps2", "partsupp", "partsupp_suppkey_idx");
  b.SetDetail(ps2, "ps2.ps_suppkey = s2.s_suppkey, ~80 rows/probe");
  b.SetEngineOp(ps2, "ref");
  b.SetEstimates(ps2, 800000 * sf, 92000.0 * sf, 20000 * sf);

  // O17: nested loop supplier2 x partsupp2.
  const int nl_s2_ps2 = b.AddOp(OpType::kNestLoopJoin, {supplier2, ps2},
                                "ps2.ps_suppkey = s2.s_suppkey");
  b.SetEngineOp(nl_s2_ps2, "nested loop");
  b.SetEstimates(nl_s2_ps2, 800000 * sf, 173000.0 * sf);

  // O20: nation2 primary-key lookup per joined row (cached descent).
  const int nation2 =
      b.AddScan(OpType::kIndexScan, "n2", "nation", "nation_pkey");
  b.SetDetail(nation2, "n2.n_nationkey = s2.s_nationkey");
  b.SetEngineOp(nation2, "eq_ref");
  b.SetEstimates(nation2, 800000 * sf, 177000.0 * sf, 3);

  // O16: nested loop with nation2.
  const int nl_n2 = b.AddOp(OpType::kNestLoopJoin, {nl_s2_ps2, nation2},
                            "n2.n_nationkey = s2.s_nationkey");
  b.SetEngineOp(nl_n2, "nested loop");
  b.SetEstimates(nl_n2, 800000 * sf, 181000.0 * sf);

  // O21: region2 lookup, EUROPE only.
  const int region2 =
      b.AddScan(OpType::kIndexScan, "r2", "region", "region_pkey");
  b.SetDetail(region2, "r2.r_regionkey = n2.n_regionkey and r2.r_name = "
                       "'EUROPE'");
  b.SetEngineOp(region2, "eq_ref");
  b.SetEstimates(region2, 160000 * sf, 185000.0 * sf, 1);

  // O15: subquery join chain root.
  const int nl_r2 = b.AddOp(OpType::kNestLoopJoin, {nl_n2, region2},
                            "n2.n_regionkey = r2.r_regionkey");
  b.SetEngineOp(nl_r2, "nested loop");
  b.SetEstimates(nl_r2, 160000 * sf, 186000.0 * sf);

  // O14: min(ps_supplycost) per part, grouped through a tmp table.
  const int agg = b.AddOp(OpType::kAggregate, {nl_r2},
                          "min(ps_supplycost) group by ps2.ps_partkey");
  b.SetEngineOp(agg, "tmp table");
  b.SetEstimates(agg, 120000 * sf, 188000.0 * sf);

  // O13: the derived table the main block probes through auto_key0.
  const int mat = b.AddOp(OpType::kMaterialize, {agg},
                          "temp table with auto_key0");
  b.SetEngineOp(mat, "materialize derived");
  b.SetEstimates(mat, 120000 * sf, 189000.0 * sf);

  // --- Top of the plan ------------------------------------------------------
  // O3: main block probes the derived table per row.
  const int nl_top = b.AddOp(
      OpType::kNestLoopJoin, {nl_r, mat},
      "ps.ps_partkey = ps2.ps_partkey and ps_supplycost = min_cost");
  b.SetEngineOp(nl_top, "ref<auto_key0>");
  b.SetEstimates(nl_top, 160 * sf, 203300.0 * sf);

  // O2: filesort for the ORDER BY.
  const int sort = b.AddOp(OpType::kSort, {nl_top},
                           "s_acctbal desc, n_name, s_name, p_partkey");
  b.SetEngineOp(sort, "filesort");
  b.SetEstimates(sort, 160 * sf, 203400.0 * sf);

  // O1: Result (top 100).
  const int result = b.AddOp(OpType::kResult, {sort}, "top 100");
  b.SetEstimates(result, 100, 203400.0 * sf);

  return b.Build(result);
}

}  // namespace diads::db
