#include "db/backend.h"

#include "db/columnar_backend.h"
#include "db/mysql_backend.h"
#include "db/postgres_backend.h"

namespace diads::db {

const char* BackendKindName(BackendKind kind) {
  switch (kind) {
    case BackendKind::kPostgres:
      return "postgres";
    case BackendKind::kMysql:
      return "mysql";
    case BackendKind::kColumnar:
      return "columnar";
  }
  return "?";
}

Result<BackendKind> BackendKindFromName(const std::string& name) {
  for (BackendKind kind : AllBackendKinds()) {
    if (name == BackendKindName(kind)) return kind;
  }
  return Status::InvalidArgument("unknown backend: " + name);
}

std::vector<BackendKind> AllBackendKinds() {
  return {BackendKind::kPostgres, BackendKind::kMysql,
          BackendKind::kColumnar};
}

std::string DbBackend::DatabaseComponentName(const std::string& host) const {
  return std::string(name()) + "@" + host;
}

std::unique_ptr<DbBackend> MakeDbBackend(BackendKind kind,
                                         const BackendInit& init) {
  switch (kind) {
    case BackendKind::kPostgres:
      return std::make_unique<PostgresBackend>(init);
    case BackendKind::kMysql:
      return std::make_unique<MysqlBackend>(init);
    case BackendKind::kColumnar:
      return std::make_unique<ColumnarBackend>(init);
  }
  return nullptr;
}

}  // namespace diads::db
