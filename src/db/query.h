// Logical query specifications.
//
// DIADS never parses SQL — its inputs are executed plans and their
// statistics (Section 3). A QuerySpec is the logical description the
// optimizer consumes: base tables with local-predicate selectivities, an
// equi-join graph, optional aggregation/sort, and an optional decorrelated
// subquery block (TPC-H Q2's "min supplycost" subquery becomes a separate
// block whose aggregated output joins back into the main block — the
// standard unnesting PostgreSQL applies to that query shape).
#ifndef DIADS_DB_QUERY_H_
#define DIADS_DB_QUERY_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace diads::db {

/// One base-table occurrence in a query block. The same catalog table may
/// appear under different aliases (partsupp appears in both Q2 blocks).
struct TableRef {
  std::string alias;
  std::string table;
  /// Combined selectivity of local predicates on this table (1.0 = none).
  double filter_selectivity = 1.0;
  /// Column a sargable local predicate restricts; empty if none. An index
  /// on this column enables an index-scan access path for the filter.
  std::string filter_column;
};

/// Equi-join predicate between two aliases.
struct JoinPredicate {
  std::string left_alias;
  std::string left_column;
  std::string right_alias;
  std::string right_column;
};

/// A query block (and optionally one nested subquery block).
struct QuerySpec {
  std::string name;
  std::vector<TableRef> tables;
  std::vector<JoinPredicate> joins;

  /// Group-by aggregation over the block's join result.
  bool aggregate = false;
  /// Alias.column the aggregation groups on (determines output rows).
  std::string agg_group_alias;
  std::string agg_group_column;

  /// ORDER BY on the final result.
  bool sort = false;
  /// LIMIT (0 = none). Q2 returns the top 100 suppliers.
  int limit = 0;

  /// Decorrelated subquery block, joined to the main block's output.
  std::unique_ptr<QuerySpec> subplan;
  /// Join predicate tying the main block to the subplan output:
  /// main alias/column vs. the subplan's group column.
  JoinPredicate subplan_join;
  /// Selectivity of the residual correlated predicate (Q2:
  /// ps_supplycost = min(...) keeps ~1/avg-suppliers-per-part rows).
  double subplan_join_selectivity = 1.0;

  const TableRef* FindAlias(const std::string& alias) const;
};

/// TPC-H Q2 ("minimum cost supplier") over the BuildTpchCatalog schema,
/// shaped to produce the paper's Figure-1 plan: nine leaf scans, two of
/// which (main-block partsupp and subquery partsupp) hit volume V1.
QuerySpec MakeTpchQ2Spec();

/// A simpler single-block reporting query (supplier x nation x region roll-
/// up) used by examples and tests that do not need Q2's full shape.
QuerySpec MakeSupplierRollupSpec();

}  // namespace diads::db

#endif  // DIADS_DB_QUERY_H_
