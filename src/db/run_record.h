// Query run records — the per-execution data DIADS consumes.
//
// Section 3: "For each execution of plan P, DIADS collects some low-overhead
// monitoring data per operator O in P ... O's start time, stop time, and
// record-counts (estimated and actual number of records in O's output)."
// A QueryRunRecord is one such execution; the RunCatalog holds the run
// history with the administrator's satisfactory/unsatisfactory labels
// (Figure 3's screen, including the declarative labelling rule).
#ifndef DIADS_DB_RUN_RECORD_H_
#define DIADS_DB_RUN_RECORD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/sim_time.h"
#include "common/status.h"
#include "db/plan.h"

namespace diads::db {

/// Per-operator observations for one run.
struct OperatorRunStats {
  int op_index = -1;    ///< Index into the plan's ops().
  int op_number = 0;    ///< Paper label O<k>.
  SimTimeMs start = 0;  ///< tb: absolute start time of this operator.
  SimTimeMs stop = 0;   ///< te.
  double est_rows = 0;
  double actual_rows = 0;
  double physical_reads = 0;  ///< Pages fetched from the SAN.
  double buffer_hits = 0;
  double io_wait_ms = 0;      ///< Self time spent waiting on storage.
  double cpu_ms = 0;          ///< Self compute time.
  double lock_wait_ms = 0;

  /// Measured running time t(O) = stop - start (the span the paper's
  /// Module CO feeds to KDE).
  SimTimeMs span_ms() const { return stop - start; }
  /// Self work (used by Module IA's impact attribution).
  double self_ms() const { return io_wait_ms + cpu_ms + lock_wait_ms; }
};

/// One execution of a query plan.
struct QueryRunRecord {
  int run_id = -1;
  std::string query_name;
  std::shared_ptr<const Plan> plan;
  uint64_t plan_fingerprint = 0;
  TimeInterval interval;  ///< Plan start/stop times.
  std::vector<OperatorRunStats> operators;

  SimTimeMs duration_ms() const { return interval.duration(); }
  /// Operator stats by plan op index; nullptr if missing.
  const OperatorRunStats* FindOp(int op_index) const;
};

/// Label of a run (set by the administrator, Figure 3).
enum class RunLabel { kUnlabeled, kSatisfactory, kUnsatisfactory };

const char* RunLabelName(RunLabel label);

/// The run history with labels — DIADS's primary input.
class RunCatalog {
 public:
  /// Adds a run; assigns and returns its run_id.
  int AddRun(QueryRunRecord record);

  Status SetLabel(int run_id, RunLabel label);

  /// Declarative rule (Figure 3): runs with duration > threshold are
  /// unsatisfactory, the rest satisfactory. Applies to all runs of `query`.
  Status LabelByDurationThreshold(const std::string& query,
                                  SimTimeMs threshold_ms);

  /// Declarative rule: runs starting within `window` get `label`.
  Status LabelByTimeWindow(const std::string& query, const TimeInterval& window,
                           RunLabel label);

  const std::vector<QueryRunRecord>& runs() const { return runs_; }
  Result<const QueryRunRecord*> FindRun(int run_id) const;
  RunLabel LabelOf(int run_id) const;

  /// Runs of `query` carrying the given label, in time order.
  std::vector<const QueryRunRecord*> RunsWithLabel(const std::string& query,
                                                   RunLabel label) const;

  size_t size() const { return runs_.size(); }

 private:
  std::vector<QueryRunRecord> runs_;
  std::vector<RunLabel> labels_;
};

}  // namespace diads::db

#endif  // DIADS_DB_RUN_RECORD_H_
