#include "db/columnar_plan.h"

#include "common/status.h"

namespace diads::db {

Result<Plan> MakeColumnarQ2Plan(double scale_factor) {
  if (scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  const double sf = scale_factor;
  PlanBuilder b("Q2");

  // --- Main block: hash-join chain driven by part --------------------------
  // O8: part, zone-pruned on the p_size zone maps (clustering 0.3 leaves
  // ~70% of the segments alive — columnar pruning on a weakly clustered
  // column is real but modest).
  const int part =
      b.AddScan(OpType::kIndexScan, "p", "part", "part_size_idx");
  b.SetDetail(part, "p_size zones prune to ~70% of segments; p_type like "
                    "'%BRASS'");
  b.SetEngineOp(part, "zone-pruned scan");
  b.SetEstimates(part, 800 * sf, 1550.0 * sf, 930 * sf);

  // O10: partsupp, zone-pruned through the ps_partkey zone maps to ~10% of
  // segments (V1 leaf #1). Emits every row of the surviving segments; the
  // join does the rest.
  const int ps =
      b.AddScan(OpType::kIndexScan, "ps", "partsupp", "partsupp_partkey_idx");
  b.SetDetail(ps, "ps_partkey join zones prune to ~10% of segments");
  b.SetEngineOp(ps, "zone-pruned scan");
  b.SetEstimates(ps, 80000 * sf, 940.0 * sf, 492 * sf);

  // O9: hash build over the pruned partsupp block.
  const int ps_hash = b.AddOp(OpType::kHash, {ps}, "");
  b.SetEngineOp(ps_hash, "hash build");
  b.SetEstimates(ps_hash, 80000 * sf, 2540.0 * sf);

  // O7: part probes the partsupp hash in batches.
  const int hj_p_ps = b.AddOp(OpType::kHashJoin, {part, ps_hash},
                              "p.p_partkey = ps.ps_partkey");
  b.SetEngineOp(hj_p_ps, "vectorized hash join");
  b.SetEstimates(hj_p_ps, 3200 * sf, 4220.0 * sf);

  // O12: supplier full vector scan (its only non-unique zone map is on
  // s_nationkey, which this block does not constrain tightly enough to
  // beat a straight scan of so small a table).
  const int supplier = b.AddScan(OpType::kSeqScan, "s", "supplier");
  b.SetEngineOp(supplier, "vector scan");
  b.SetEstimates(supplier, 10000 * sf, 310.0 * sf, 68 * sf);

  // O11: hash build over supplier.
  const int s_hash = b.AddOp(OpType::kHash, {supplier}, "");
  b.SetEngineOp(s_hash, "hash build");
  b.SetEstimates(s_hash, 10000 * sf, 510.0 * sf);

  // O6: join with supplier.
  const int hj_s = b.AddOp(OpType::kHashJoin, {hj_p_ps, s_hash},
                           "ps.ps_suppkey = s.s_suppkey");
  b.SetEngineOp(hj_s, "vectorized hash join");
  b.SetEstimates(hj_s, 3200 * sf, 4900.0 * sf);

  // O14: nation vector scan (25 rows; one batch).
  const int nation = b.AddScan(OpType::kSeqScan, "n", "nation");
  b.SetEngineOp(nation, "vector scan");
  b.SetEstimates(nation, 25, 2.0, 1);

  // O13: hash build over nation.
  const int n_hash = b.AddOp(OpType::kHash, {nation}, "");
  b.SetEngineOp(n_hash, "hash build");
  b.SetEstimates(n_hash, 25, 3.0);

  // O5: join with nation.
  const int hj_n = b.AddOp(OpType::kHashJoin, {hj_s, n_hash},
                           "s.s_nationkey = n.n_nationkey");
  b.SetEngineOp(hj_n, "vectorized hash join");
  b.SetEstimates(hj_n, 3200 * sf, 4990.0 * sf);

  // O16: region vector scan, EUROPE filter leaves one row.
  const int region = b.AddScan(OpType::kSeqScan, "r", "region");
  b.SetDetail(region, "r_name = 'EUROPE'");
  b.SetEngineOp(region, "vector scan");
  b.SetEstimates(region, 1, 2.0, 1);

  // O15: hash build over region.
  const int r_hash = b.AddOp(OpType::kHash, {region}, "");
  b.SetEngineOp(r_hash, "hash build");
  b.SetEstimates(r_hash, 1, 3.0);

  // O4: main-block root.
  const int hj_r = b.AddOp(OpType::kHashJoin, {hj_n, r_hash},
                           "n.n_regionkey = r.r_regionkey");
  b.SetEngineOp(hj_r, "vectorized hash join");
  b.SetEstimates(hj_r, 640 * sf, 5080.0 * sf);

  // --- Subquery block: late-materialized column block ----------------------
  // O23: partsupp2, zone-pruned through the ps_suppkey zone maps — the
  // weakly clustered column leaves ~60% of the segments alive, so this is
  // the engine's heavy V1 reader (V1 leaf #2).
  const int ps2 =
      b.AddScan(OpType::kIndexScan, "ps2", "partsupp", "partsupp_suppkey_idx");
  b.SetDetail(ps2, "ps_suppkey join zones prune to ~60% of segments");
  b.SetEngineOp(ps2, "zone-pruned scan");
  b.SetEstimates(ps2, 480000 * sf, 5040.0 * sf, 2950 * sf);

  // O25: supplier2 vector scan drives the build side.
  const int supplier2 = b.AddScan(OpType::kSeqScan, "s2", "supplier");
  b.SetEngineOp(supplier2, "vector scan");
  b.SetEstimates(supplier2, 10000 * sf, 310.0 * sf, 68 * sf);

  // O24: hash build over supplier2.
  const int s2_hash = b.AddOp(OpType::kHash, {supplier2}, "");
  b.SetEngineOp(s2_hash, "hash build");
  b.SetEstimates(s2_hash, 10000 * sf, 510.0 * sf);

  // O22: partsupp2 probes the supplier2 hash in batches.
  const int hj_ps2_s2 = b.AddOp(OpType::kHashJoin, {ps2, s2_hash},
                                "ps2.ps_suppkey = s2.s_suppkey");
  b.SetEngineOp(hj_ps2_s2, "vectorized hash join");
  b.SetEstimates(hj_ps2_s2, 480000 * sf, 17600.0 * sf);

  // O27: nation2 vector scan.
  const int nation2 = b.AddScan(OpType::kSeqScan, "n2", "nation");
  b.SetEngineOp(nation2, "vector scan");
  b.SetEstimates(nation2, 25, 2.0, 1);

  // O26: hash build over nation2.
  const int n2_hash = b.AddOp(OpType::kHash, {nation2}, "");
  b.SetEngineOp(n2_hash, "hash build");
  b.SetEstimates(n2_hash, 25, 3.0);

  // O21: join with nation2.
  const int hj_n2 = b.AddOp(OpType::kHashJoin, {hj_ps2_s2, n2_hash},
                            "s2.s_nationkey = n2.n_nationkey");
  b.SetEngineOp(hj_n2, "vectorized hash join");
  b.SetEstimates(hj_n2, 480000 * sf, 29700.0 * sf);

  // O29: region2 vector scan, EUROPE only.
  const int region2 = b.AddScan(OpType::kSeqScan, "r2", "region");
  b.SetDetail(region2, "r2.r_name = 'EUROPE'");
  b.SetEngineOp(region2, "vector scan");
  b.SetEstimates(region2, 1, 2.0, 1);

  // O28: hash build over region2.
  const int r2_hash = b.AddOp(OpType::kHash, {region2}, "");
  b.SetEngineOp(r2_hash, "hash build");
  b.SetEstimates(r2_hash, 1, 3.0);

  // O20: subquery join chain root.
  const int hj_r2 = b.AddOp(OpType::kHashJoin, {hj_n2, r2_hash},
                            "n2.n_regionkey = r2.r_regionkey");
  b.SetEngineOp(hj_r2, "vectorized hash join");
  b.SetEstimates(hj_r2, 96000 * sf, 34100.0 * sf);

  // O19: min(ps_supplycost) per part through a vectorized hash aggregate.
  const int agg = b.AddOp(OpType::kAggregate, {hj_r2},
                          "min(ps_supplycost) group by ps2.ps_partkey");
  b.SetEngineOp(agg, "vectorized hash agg");
  b.SetEstimates(agg, 96000 * sf, 37000.0 * sf);

  // O18: the late-materialized column block the main block joins against.
  const int mat = b.AddOp(OpType::kMaterialize, {agg}, "column block buffer");
  b.SetEngineOp(mat, "late materialize");
  b.SetEstimates(mat, 96000 * sf, 38000.0 * sf);

  // O17: hash build over the subquery block.
  const int mat_hash = b.AddOp(OpType::kHash, {mat}, "");
  b.SetEngineOp(mat_hash, "hash build");
  b.SetEstimates(mat_hash, 96000 * sf, 39900.0 * sf);

  // --- Top of the plan ------------------------------------------------------
  // O3: main block probes the subquery block.
  const int hj_top = b.AddOp(
      OpType::kHashJoin, {hj_r, mat_hash},
      "ps.ps_partkey = ps2.ps_partkey and ps_supplycost = min_cost");
  b.SetEngineOp(hj_top, "vectorized hash join");
  b.SetEstimates(hj_top, 160 * sf, 45200.0 * sf);

  // O2: vectorized merge sort for the ORDER BY.
  const int sort = b.AddOp(OpType::kSort, {hj_top},
                           "s_acctbal desc, n_name, s_name, p_partkey");
  b.SetEngineOp(sort, "vectorized merge sort");
  b.SetEstimates(sort, 160 * sf, 45250.0 * sf);

  // O1: Result (top 100).
  const int result = b.AddOp(OpType::kResult, {sort}, "top 100");
  b.SetEstimates(result, 100, 45250.0 * sf);

  return b.Build(result);
}

}  // namespace diads::db
