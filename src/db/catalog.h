// Database catalog: tablespaces, tables, indexes, and statistics.
//
// Models the PostgreSQL-side state DIADS consumes. Two points matter for
// diagnosis fidelity:
//
//   * Tablespace -> volume mapping. Section 3.1.2: APG construction "begins
//     with the parsing of the database configuration file that defines the
//     mapping of the database tablespaces to the storage volumes in the
//     SAN", in either System Managed Storage (file system on a volume) or
//     Database Managed Storage (raw volume) mode. The catalog stores this
//     mapping; it is the bridge between plan operators and SAN components.
//
//   * Dual statistics. Each table carries *optimizer* statistics (what
//     ANALYZE last recorded — the optimizer plans with these) and *actual*
//     statistics (ground truth — execution cardinality follows these).
//     Scenario 3's fault ("SQL DML causes a subtle change in data
//     properties") widens the gap: actual stats move, plans stay, record
//     counts drift, and Module CR picks up the drift.
#ifndef DIADS_DB_CATALOG_H_
#define DIADS_DB_CATALOG_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/event_log.h"
#include "common/ids.h"
#include "common/status.h"

namespace diads::db {

/// How a tablespace maps to SAN storage (Section 3.1.2).
enum class StorageMode {
  kSystemManaged,    ///< SMS: file system created on a SAN volume.
  kDatabaseManaged,  ///< DMS: raw SAN volume managed by the database.
};

const char* StorageModeName(StorageMode mode);

constexpr double kPageSizeBytes = 8192.0;

/// Per-column statistics (enough for selectivity estimation).
struct ColumnStats {
  std::string name;
  double ndv = 1000;      ///< Number of distinct values.
  double width_bytes = 8;
};

/// Statistics snapshot for a table.
struct TableStats {
  double row_count = 0;
  double row_width_bytes = 100;

  double pages() const {
    return row_count * row_width_bytes / kPageSizeBytes;
  }
};

struct TablespaceDef {
  ComponentId id;
  std::string name;
  ComponentId volume;  ///< SAN volume backing this tablespace.
  StorageMode mode = StorageMode::kSystemManaged;
};

struct TableDef {
  ComponentId id;
  std::string name;
  std::string tablespace;
  TableStats optimizer_stats;  ///< What ANALYZE last saw.
  TableStats actual_stats;     ///< Ground truth.
  std::vector<ColumnStats> columns;
  /// Physical-read multiplier on every scan of this table, invisible to the
  /// optimizer (which plans from row counts). 1.0 = healthy. Column-store
  /// compression-ratio drift raises it: the same logical rows occupy more
  /// on-disk segment pages than the stored statistics assume, so the
  /// executor reads est_pages x storage_bloat without any row-count change.
  double storage_bloat = 1.0;

  const ColumnStats* FindColumn(const std::string& column) const;
};

struct IndexDef {
  ComponentId id;
  std::string name;
  std::string table;
  std::string column;
  bool unique = false;
  int height = 3;            ///< B-tree height (root-to-leaf page reads).
  double leaf_pages = 1000;
  /// Correlation between index order and heap order, in [0, 1]; high
  /// clustering means an index range scan touches few heap pages.
  double clustering = 0.8;
  bool dropped = false;
  /// Physical-read multiplier on scans *through this index* (kIndexScan
  /// only), invisible to the optimizer. 1.0 = healthy. Column-store zone-map
  /// staleness raises it: stale min/max summaries stop excluding segments,
  /// so a "pruned" scan touches far more pages than planned — without
  /// changing the plan or any row count.
  double scan_bloat = 1.0;
};

/// The catalog. Registers every tablespace/table/index as a component so
/// that the event log and APG can reference them.
class Catalog {
 public:
  /// `registry` is shared with the SAN topology and must outlive the
  /// catalog. `event_log` may be null (schema changes then go unlogged).
  Catalog(ComponentRegistry* registry, EventLog* event_log);

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;

  // --- Definition ---------------------------------------------------------
  Status AddTablespace(const std::string& name, ComponentId volume,
                       StorageMode mode);
  Status AddTable(const std::string& name, const std::string& tablespace,
                  TableStats stats, std::vector<ColumnStats> columns);
  Status AddIndex(const std::string& index_name, const std::string& table,
                  const std::string& column, bool unique, double clustering);

  // --- Schema / statistics changes (logged as events) ---------------------
  /// Drops an index; logs kIndexDropped.
  Status DropIndex(SimTimeMs t, const std::string& index_name);
  /// Re-creates a dropped index; logs kIndexCreated.
  Status RecreateIndex(SimTimeMs t, const std::string& index_name);
  /// Applies a bulk DML: actual row count scales by `factor`; logs
  /// kDmlBatch. Optimizer stats are NOT updated (that is Analyze's job).
  Status ApplyDml(SimTimeMs t, const std::string& table, double factor,
                  const std::string& description);
  /// Refreshes optimizer stats from actual stats; logs kTableStatsChanged.
  Status Analyze(SimTimeMs t, const std::string& table);
  /// Refreshes optimizer stats from actual stats scaled by (1 + rel_error)
  /// — the sampled-dive estimate a MySQL-style automatic recalculation
  /// produces — and logs kTableStatsChanged with `reason`. Analyze() is
  /// RefreshOptimizerStats with rel_error 0.
  Status RefreshOptimizerStats(SimTimeMs t, const std::string& table,
                               double rel_error, const std::string& reason);

  // --- Silent what-if mutators --------------------------------------------
  // Used by Module PD's what-if probe, which must temporarily revert a
  // schema change, re-optimize, and restore — without polluting the event
  // log with synthetic events.
  Status SetIndexDroppedSilently(const std::string& index_name, bool dropped);
  Status SetOptimizerStatsSilently(const std::string& table, TableStats stats);
  /// Physical-layout degradation state (see TableDef::storage_bloat /
  /// IndexDef::scan_bloat). Silent for the same reason: the fault injectors
  /// that use these log their own observable events — the state change
  /// itself is exactly what a real system would *not* log.
  Status SetTableStorageBloatSilently(const std::string& table, double bloat);
  Status SetIndexScanBloatSilently(const std::string& index_name, double bloat);

  // --- Lookup -------------------------------------------------------------
  Result<const TablespaceDef*> FindTablespace(const std::string& name) const;
  Result<const TableDef*> FindTable(const std::string& name) const;
  Result<const IndexDef*> FindIndex(const std::string& name) const;
  /// Non-dropped indexes on `table` (optionally restricted to `column`).
  std::vector<const IndexDef*> IndexesOn(
      const std::string& table,
      const std::string& column = std::string()) const;

  /// The SAN volume backing a table (through its tablespace).
  Result<ComponentId> VolumeOfTable(const std::string& table) const;

  std::vector<std::string> TableNames() const;
  std::vector<std::string> TablespaceNames() const;

  /// Total size of all tables (actual stats), in MB.
  double TotalSizeMb() const;

  const ComponentRegistry& registry() const { return *registry_; }

 private:
  Status LogEvent(SimTimeMs t, EventType type, ComponentId subject,
                  std::string description,
                  std::map<std::string, std::string> attrs = {});

  ComponentRegistry* registry_;
  EventLog* event_log_;
  std::unordered_map<std::string, TablespaceDef> tablespaces_;
  std::unordered_map<std::string, TableDef> tables_;
  std::unordered_map<std::string, IndexDef> indexes_;
  std::vector<std::string> table_order_;       ///< Definition order.
  std::vector<std::string> tablespace_order_;
};

}  // namespace diads::db

#endif  // DIADS_DB_CATALOG_H_
