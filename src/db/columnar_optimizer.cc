#include "db/columnar_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/strings.h"

namespace diads::db {

Status SetColumnarParamByName(ColumnarParams* params, const std::string& name,
                              double value) {
  if (name == "segment_read_cost") params->segment_read_cost = value;
  else if (name == "compression_codec_cost")
    params->compression_codec_cost = value;
  else if (name == "tuple_reconstruct_cost")
    params->tuple_reconstruct_cost = value;
  else if (name == "vector_batch_rows") params->vector_batch_rows = value;
  else if (name == "batch_dispatch_cost") params->batch_dispatch_cost = value;
  else if (name == "zone_map_consult_cost")
    params->zone_map_consult_cost = value;
  else if (name == "zone_map_refresh_threshold")
    params->zone_map_refresh_threshold = value;
  else if (name == "buffer_pool_mb") params->buffer_pool_mb = value;
  else return Status::InvalidArgument("unknown parameter: " + name);
  return Status::Ok();
}

Result<double> GetColumnarParamByName(const ColumnarParams& params,
                                      const std::string& name) {
  if (name == "segment_read_cost") return params.segment_read_cost;
  if (name == "compression_codec_cost") return params.compression_codec_cost;
  if (name == "tuple_reconstruct_cost") return params.tuple_reconstruct_cost;
  if (name == "vector_batch_rows") return params.vector_batch_rows;
  if (name == "batch_dispatch_cost") return params.batch_dispatch_cost;
  if (name == "zone_map_consult_cost") return params.zone_map_consult_cost;
  if (name == "zone_map_refresh_threshold")
    return params.zone_map_refresh_threshold;
  if (name == "buffer_pool_mb") return params.buffer_pool_mb;
  return Status::InvalidArgument("unknown parameter: " + name);
}

/// Internal plan node built during enumeration; flattened into a Plan at
/// the end. Shared pointers let DP states share subtrees cheaply.
struct ColumnarOptimizer::Node {
  OpType type = OpType::kSeqScan;
  std::vector<std::shared_ptr<const Node>> children;
  std::string alias;
  std::string table;
  std::string index_name;
  std::string detail;
  std::string engine_op;   ///< "vector scan", "zone-pruned scan", ...
  double rows = 0;
  double cost = 0;         ///< Cumulative.
  double pages = 0;        ///< Segment pages attributable to this op itself.
  double width = 64;       ///< Bytes per output row (projected columns).
};

namespace {

using NodePtr = std::shared_ptr<const ColumnarOptimizer::Node>;

struct PlannerCtx {
  const Catalog* catalog;
  const ColumnarParams* params;
};

/// Fraction of a table's pages a scan actually touches: only the columns
/// the query references are decompressed (Q2 projects a handful of the
/// TPC-H columns), so page math is scaled down uniformly.
constexpr double kColumnProjection = 0.35;

double ColumnNdv(const PlannerCtx& ctx, const QuerySpec& spec,
                 const std::string& alias, const std::string& column) {
  const TableRef* ref = spec.FindAlias(alias);
  if (ref == nullptr) return 1000;
  Result<const TableDef*> table = ctx.catalog->FindTable(ref->table);
  if (!table.ok()) return 1000;
  const ColumnStats* col = (*table)->FindColumn(column);
  return col != nullptr ? std::max(1.0, col->ndv) : 1000;
}

double Batches(const ColumnarParams& p, double rows) {
  return std::ceil(std::max(1.0, rows) / std::max(1.0, p.vector_batch_rows));
}

/// Columns of `alias` used in any join predicate — candidates for
/// semi-join zone pruning.
std::vector<std::string> JoinColumnsOf(const QuerySpec& spec,
                                       const std::string& alias) {
  std::vector<std::string> out;
  for (const JoinPredicate& j : spec.joins) {
    if (j.left_alias == alias) out.push_back(j.left_column);
    if (j.right_alias == alias) out.push_back(j.right_column);
  }
  return out;
}

/// Best access path for one table reference: a full vector scan vs a
/// zone-pruned scan through the best available zone map. Both paths are
/// decompression-dominated; pruning trades per-zone min/max consults for
/// skipped segments, and pays off in proportion to the column's physical
/// clustering.
Result<NodePtr> ScanPath(const PlannerCtx& ctx, const QuerySpec& spec,
                         const TableRef& ref) {
  Result<const TableDef*> table_r = ctx.catalog->FindTable(ref.table);
  DIADS_RETURN_IF_ERROR(table_r.status());
  const TableDef& table = **table_r;
  const TableStats& stats = table.optimizer_stats;
  const ColumnarParams& p = *ctx.params;

  const double out_rows =
      std::max(1.0, stats.row_count * ref.filter_selectivity);
  const double zones = Batches(p, stats.row_count);
  const double full_pages = std::max(1.0, stats.pages() * kColumnProjection);

  auto full = std::make_shared<ColumnarOptimizer::Node>();
  full->type = OpType::kSeqScan;
  full->engine_op = "vector scan";
  full->alias = ref.alias;
  full->table = ref.table;
  full->rows = out_rows;
  full->pages = full_pages;
  full->cost = full_pages * p.segment_read_cost +
               stats.row_count * p.compression_codec_cost +
               zones * p.batch_dispatch_cost +
               out_rows * p.tuple_reconstruct_cost;
  full->width = stats.row_width_bytes * kColumnProjection;
  if (ref.filter_selectivity < 1.0) {
    full->detail = StrFormat("where %s, sel=%.4f",
                             ref.filter_column.empty()
                                 ? "<non-indexed predicate>"
                                 : ref.filter_column.c_str(),
                             ref.filter_selectivity);
  }

  // Zone-pruned candidates: (zone map, surviving segment fraction, why).
  struct PruneOption {
    const IndexDef* zone_map;
    double fraction;
    std::string why;
  };
  std::vector<PruneOption> options;
  if (!ref.filter_column.empty()) {
    for (const IndexDef* zm : ctx.catalog->IndexesOn(ref.table,
                                                     ref.filter_column)) {
      // A predicate gives explicit value bounds, so zone min/max pruning
      // approaches the selectivity on a well-clustered column and decays
      // to nothing on a shuffled one.
      const double fraction = std::max(
          0.05, 1.0 - zm->clustering * (1.0 - ref.filter_selectivity));
      options.push_back({zm, fraction,
                         StrFormat("%s zones", ref.filter_column.c_str())});
    }
  }
  for (const std::string& column : JoinColumnsOf(spec, ref.alias)) {
    for (const IndexDef* zm : ctx.catalog->IndexesOn(ref.table, column)) {
      // Semi-join pushdown. Unique-key zone maps never prune: the key
      // values spread across every segment, so each zone's min/max spans
      // the whole domain.
      if (zm->unique) continue;
      const double fraction = std::max(0.05, 1.0 - zm->clustering);
      options.push_back(
          {zm, fraction, StrFormat("%s join zones", column.c_str())});
    }
  }

  NodePtr best = full;
  for (const PruneOption& option : options) {
    const double scanned_rows = option.fraction * stats.row_count;
    auto pruned = std::make_shared<ColumnarOptimizer::Node>();
    pruned->type = OpType::kIndexScan;
    pruned->engine_op = "zone-pruned scan";
    pruned->alias = ref.alias;
    pruned->table = ref.table;
    pruned->index_name = option.zone_map->name;
    pruned->rows = out_rows;
    pruned->pages =
        std::max(1.0, option.fraction * stats.pages() * kColumnProjection);
    pruned->cost = zones * p.zone_map_consult_cost +
                   pruned->pages * p.segment_read_cost +
                   scanned_rows * p.compression_codec_cost +
                   Batches(p, scanned_rows) * p.batch_dispatch_cost +
                   out_rows * p.tuple_reconstruct_cost;
    pruned->width = stats.row_width_bytes * kColumnProjection;
    pruned->detail = StrFormat("%s prune to ~%.0f%% of segments",
                               option.why.c_str(), option.fraction * 100.0);
    if (pruned->cost < best->cost) best = pruned;
  }
  return best;
}

/// The join predicate (if any) connecting `alias` to any alias in `joined`.
const JoinPredicate* FindConnection(const QuerySpec& spec,
                                    const std::vector<std::string>& joined,
                                    const std::string& alias) {
  for (const JoinPredicate& j : spec.joins) {
    for (const std::string& a : joined) {
      if ((j.left_alias == a && j.right_alias == alias) ||
          (j.right_alias == a && j.left_alias == alias)) {
        return &j;
      }
    }
  }
  return nullptr;
}

double JoinOutputRows(const PlannerCtx& ctx, const QuerySpec& spec,
                      double outer_rows, double inner_rows,
                      const JoinPredicate& pred) {
  const double ndv_l =
      ColumnNdv(ctx, spec, pred.left_alias, pred.left_column);
  const double ndv_r =
      ColumnNdv(ctx, spec, pred.right_alias, pred.right_column);
  return std::max(1.0, outer_rows * inner_rows / std::max(ndv_l, ndv_r));
}

/// Vectorized hash join, the engine's only join: a blocking hash build
/// over the newly joined side, probed in batches by the outer.
NodePtr MakeHashJoin(const PlannerCtx& ctx, const NodePtr& outer,
                     const NodePtr& inner, const std::string& detail,
                     double out_rows) {
  const ColumnarParams& p = *ctx.params;

  auto build = std::make_shared<ColumnarOptimizer::Node>();
  build->type = OpType::kHash;
  build->engine_op = "hash build";
  build->children = {inner};
  build->rows = inner->rows;
  build->width = inner->width;
  build->cost = inner->cost + inner->rows * p.tuple_reconstruct_cost;

  auto join = std::make_shared<ColumnarOptimizer::Node>();
  join->type = OpType::kHashJoin;
  join->engine_op = "vectorized hash join";
  join->children = {outer, build};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + build->cost +
               Batches(p, outer->rows) * p.batch_dispatch_cost +
               outer->rows * 0.25 * p.tuple_reconstruct_cost +
               out_rows * p.tuple_reconstruct_cost;
  join->detail = detail;
  return join;
}

/// Plans one query block (no subquery handling) with left-deep DP over
/// hash-join orders.
Result<NodePtr> PlanBlock(const PlannerCtx& ctx, const QuerySpec& spec) {
  if (spec.tables.empty()) {
    return Status::InvalidArgument("query block has no tables");
  }
  if (spec.tables.size() > 16) {
    return Status::InvalidArgument("too many tables in block (max 16)");
  }
  const size_t n = spec.tables.size();

  struct DpState {
    NodePtr node;
    std::vector<std::string> aliases;
  };
  std::map<uint32_t, DpState> dp;

  for (size_t i = 0; i < n; ++i) {
    Result<NodePtr> scan = ScanPath(ctx, spec, spec.tables[i]);
    DIADS_RETURN_IF_ERROR(scan.status());
    dp[1u << i] = DpState{*scan, {spec.tables[i].alias}};
  }

  for (size_t size = 1; size < n; ++size) {
    std::vector<uint32_t> masks;
    for (const auto& [mask, state] : dp) {
      if (static_cast<size_t>(__builtin_popcount(mask)) == size) {
        masks.push_back(mask);
      }
    }
    for (uint32_t mask : masks) {
      const DpState& outer_state = dp[mask];
      // A cartesian extension is allowed only when nothing better exists:
      // no remaining table joins this subset (disconnected join graph, or
      // no predicates at all).
      bool any_connected = false;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        if (FindConnection(spec, outer_state.aliases,
                           spec.tables[i].alias) != nullptr) {
          any_connected = true;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        const TableRef& inner_ref = spec.tables[i];
        // The singleton states already hold each table's best access path.
        const NodePtr& inner_scan = dp[1u << i].node;
        const JoinPredicate* pred =
            FindConnection(spec, outer_state.aliases, inner_ref.alias);
        NodePtr candidate;
        if (pred != nullptr) {
          const double out_rows =
              JoinOutputRows(ctx, spec, outer_state.node->rows,
                             inner_scan->rows, *pred);
          candidate = MakeHashJoin(
              ctx, outer_state.node, inner_scan,
              StrFormat("%s.%s = %s.%s", pred->left_alias.c_str(),
                        pred->left_column.c_str(), pred->right_alias.c_str(),
                        pred->right_column.c_str()),
              out_rows);
        } else if (!any_connected) {
          candidate = MakeHashJoin(ctx, outer_state.node, inner_scan,
                                   "cartesian",
                                   outer_state.node->rows * inner_scan->rows);
        } else {
          continue;
        }
        const uint32_t new_mask = mask | (1u << i);
        auto it = dp.find(new_mask);
        if (it == dp.end() || candidate->cost < it->second.node->cost) {
          DpState state;
          state.node = candidate;
          state.aliases = outer_state.aliases;
          state.aliases.push_back(inner_ref.alias);
          dp[new_mask] = std::move(state);
        }
      }
    }
  }

  const uint32_t full = n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
  auto it = dp.find(full);
  if (it == dp.end()) {
    return Status::Internal("join enumeration failed to cover all tables");
  }
  NodePtr result = it->second.node;

  if (spec.aggregate) {
    const ColumnarParams& p = *ctx.params;
    auto agg = std::make_shared<ColumnarOptimizer::Node>();
    agg->type = OpType::kAggregate;
    agg->engine_op = "vectorized hash agg";
    agg->children = {result};
    const double groups = std::min(
        result->rows,
        ColumnNdv(ctx, spec, spec.agg_group_alias, spec.agg_group_column));
    agg->rows = std::max(1.0, groups);
    agg->width = result->width;
    agg->cost = result->cost +
                Batches(p, result->rows) * p.batch_dispatch_cost +
                result->rows * 0.5 * p.tuple_reconstruct_cost +
                agg->rows * p.tuple_reconstruct_cost;
    agg->detail = StrFormat("group by %s.%s", spec.agg_group_alias.c_str(),
                            spec.agg_group_column.c_str());
    result = agg;
  }
  return result;
}

}  // namespace

ColumnarOptimizer::ColumnarOptimizer(const Catalog* catalog,
                                     ColumnarParams params)
    : catalog_(catalog), params_(params) {
  assert(catalog != nullptr);
}

Result<Plan> ColumnarOptimizer::Optimize(const QuerySpec& spec) const {
  PlannerCtx ctx{catalog_, &params_};

  Result<NodePtr> main_r = PlanBlock(ctx, spec);
  DIADS_RETURN_IF_ERROR(main_r.status());
  NodePtr root = *main_r;

  if (spec.subplan != nullptr) {
    // Late materialization of the decorrelated block: the subquery's
    // result is buffered as a column block and hash-joined back into the
    // main block — there is no per-row probing machinery to do anything
    // else with it.
    Result<NodePtr> sub_r = PlanBlock(ctx, *spec.subplan);
    DIADS_RETURN_IF_ERROR(sub_r.status());
    const ColumnarParams& p = params_;

    auto mat = std::make_shared<Node>();
    mat->type = OpType::kMaterialize;
    mat->engine_op = "late materialize";
    mat->children = {*sub_r};
    mat->rows = (*sub_r)->rows;
    mat->width = (*sub_r)->width;
    mat->cost = (*sub_r)->cost +
                (*sub_r)->rows * 0.5 * p.tuple_reconstruct_cost;
    mat->detail = "column block buffer";

    const double out_rows =
        std::max(1.0, root->rows * spec.subplan_join_selectivity);
    root = MakeHashJoin(
        ctx, root, mat,
        StrFormat("%s.%s = %s.%s", spec.subplan_join.left_alias.c_str(),
                  spec.subplan_join.left_column.c_str(),
                  spec.subplan_join.right_alias.c_str(),
                  spec.subplan_join.right_column.c_str()),
        out_rows);
  }

  if (spec.sort) {
    const ColumnarParams& p = params_;
    auto sort = std::make_shared<Node>();
    sort->type = OpType::kSort;
    sort->engine_op = "vectorized merge sort";
    sort->children = {root};
    sort->rows = root->rows;
    sort->width = root->width;
    const double n = std::max(2.0, root->rows);
    sort->cost =
        root->cost + n * std::log2(n) * 0.5 * p.tuple_reconstruct_cost;
    sort->detail = "order by result keys";
    root = sort;
  }
  if (spec.limit > 0) {
    auto limit = std::make_shared<Node>();
    limit->type = OpType::kLimit;
    limit->engine_op = "limit";
    limit->children = {root};
    limit->rows = std::min<double>(spec.limit, root->rows);
    limit->width = root->width;
    limit->cost = root->cost;
    limit->detail = StrFormat("limit %d", spec.limit);
    root = limit;
  }
  auto result_node = std::make_shared<Node>();
  result_node->type = OpType::kResult;
  result_node->children = {root};
  result_node->rows = root->rows;
  result_node->width = root->width;
  result_node->cost = root->cost;
  root = result_node;

  // Flatten the node tree into a Plan (children added before parents).
  PlanBuilder builder(spec.name);
  std::function<int(const NodePtr&)> emit = [&](const NodePtr& node) -> int {
    std::vector<int> children;
    children.reserve(node->children.size());
    for (const NodePtr& child : node->children) children.push_back(emit(child));
    int index;
    if (node->type == OpType::kSeqScan || node->type == OpType::kIndexScan) {
      assert(children.empty());
      index = builder.AddScan(node->type, node->alias, node->table,
                              node->index_name);
      builder.SetDetail(index, node->detail);
    } else {
      index = builder.AddOp(node->type, children, node->detail);
    }
    builder.SetEstimates(index, node->rows, node->cost, node->pages);
    builder.SetEngineOp(index, node->engine_op);
    return index;
  };
  const int root_index = emit(root);
  return builder.Build(root_index);
}

}  // namespace diads::db
