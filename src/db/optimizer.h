// Cost-based query optimizer.
//
// A System-R-style optimizer in the PostgreSQL tradition: per-table access
// path selection (sequential vs. index scan), left-deep dynamic-programming
// join enumeration with nested-loop/hash/merge join methods, and blocks
// (the decorrelated subquery is planned independently, aggregated, and
// joined into the main block).
//
// Why the reproduction needs a real optimizer: Module PD diagnoses *plan
// changes* by checking, for every schema/configuration event between a good
// and a bad run, "whether this change could have caused the plan change"
// (Section 4.1) — which DIADS answers by re-optimizing under the
// hypothetical pre-change state. Index drops, ANALYZE-refreshed statistics,
// and cost-parameter changes (random_page_cost, work_mem) must therefore
// actually flip plans here, the same way reference [18]'s storage-cost-model
// sensitivity results say they do.
#ifndef DIADS_DB_OPTIMIZER_H_
#define DIADS_DB_OPTIMIZER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "db/query.h"

namespace diads::db {

/// Optimizer / executor configuration parameters (the PostgreSQL GUC subset
/// the paper's plan-change analysis cares about).
struct DbParams {
  double seq_page_cost = 1.0;
  double random_page_cost = 4.0;
  double cpu_tuple_cost = 0.01;
  double cpu_index_tuple_cost = 0.005;
  double cpu_operator_cost = 0.0025;
  double work_mem_mb = 16.0;
  double buffer_pool_mb = 512.0;
  double effective_cache_mb = 1024.0;
  /// Executor translation: milliseconds of CPU per optimizer cost unit of
  /// CPU-type cost (calibrates simulated compute speed).
  double cpu_ms_per_cost_unit = 0.06;
};

/// Names usable with kDbParamChanged events, e.g. "random_page_cost".
/// Applies `value` to the named parameter; InvalidArgument for unknown names.
Status SetParamByName(DbParams* params, const std::string& name, double value);
Result<double> GetParamByName(const DbParams& params, const std::string& name);

/// The optimizer. Stateless besides catalog/params references; Optimize()
/// is deterministic.
class Optimizer {
 public:
  /// `catalog` must outlive the optimizer.
  Optimizer(const Catalog* catalog, DbParams params);

  /// Plans a query using the catalog's *optimizer* statistics.
  Result<Plan> Optimize(const QuerySpec& spec) const;

  const DbParams& params() const { return params_; }
  void set_params(DbParams params) { params_ = params; }

  /// Internal plan-tree node (defined in the .cc; public so the planner's
  /// free helper functions can build candidate subtrees).
  struct Node;

 private:
  const Catalog* catalog_;
  DbParams params_;
};

}  // namespace diads::db

#endif  // DIADS_DB_OPTIMIZER_H_
