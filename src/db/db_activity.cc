#include "db/db_activity.h"

#include <algorithm>
#include <cassert>

namespace diads::db {

DbActivityCounters& DbActivityCounters::Add(const DbActivityCounters& other) {
  blocks_read_per_sec += other.blocks_read_per_sec;
  buffer_hits_per_sec += other.buffer_hits_per_sec;
  index_scans_per_sec += other.index_scans_per_sec;
  index_reads_per_sec += other.index_reads_per_sec;
  index_fetches_per_sec += other.index_fetches_per_sec;
  seq_scans_per_sec += other.seq_scans_per_sec;
  lock_wait_ms_per_sec += other.lock_wait_ms_per_sec;
  locks_held += other.locks_held;
  return *this;
}

Status DbActivityModel::AddActivity(const TimeInterval& window,
                                    DbActivityCounters counters) {
  if (window.empty()) {
    return Status::InvalidArgument("activity window is empty");
  }
  entries_.push_back(Entry{window, counters});
  return Status::Ok();
}

DbActivityCounters DbActivityModel::AverageOver(
    const TimeInterval& interval) const {
  DbActivityCounters out;
  if (interval.empty()) return out;
  for (const Entry& e : entries_) {
    const double frac = [&] {
      const TimeInterval inter = e.window.Intersect(interval);
      return static_cast<double>(inter.duration()) /
             static_cast<double>(interval.duration());
    }();
    if (frac <= 0) continue;
    DbActivityCounters scaled = e.counters;
    scaled.blocks_read_per_sec *= frac;
    scaled.buffer_hits_per_sec *= frac;
    scaled.index_scans_per_sec *= frac;
    scaled.index_reads_per_sec *= frac;
    scaled.index_fetches_per_sec *= frac;
    scaled.seq_scans_per_sec *= frac;
    scaled.lock_wait_ms_per_sec *= frac;
    scaled.locks_held *= frac;
    out.Add(scaled);
  }
  return out;
}

DbCollector::DbCollector(const DbActivityModel* activity,
                         const LockManager* locks, const Catalog* catalog,
                         ComponentId database,
                         monitor::TimeSeriesStore* store,
                         monitor::NoiseModel* noise,
                         SimTimeMs sampling_interval)
    : activity_(activity),
      locks_(locks),
      catalog_(catalog),
      database_(database),
      store_(store),
      noise_(noise),
      sampling_interval_(sampling_interval) {
  assert(activity_ && locks_ && catalog_ && store_ && noise_);
}

Status DbCollector::EmitSample(monitor::MetricId metric, SimTimeMs t,
                               double value) {
  std::optional<double> noisy = noise_->Apply(database_, metric, t, value);
  if (!noisy.has_value()) return Status::Ok();
  return store_->Append(database_, metric, t, *noisy);
}

Status DbCollector::CollectRange(SimTimeMs from, SimTimeMs to) {
  if (to <= from) {
    return Status::InvalidArgument("collection range must be non-empty");
  }
  using monitor::MetricId;
  for (SimTimeMs t0 = from; t0 < to; t0 += sampling_interval_) {
    const TimeInterval interval{t0, std::min(t0 + sampling_interval_, to)};
    const SimTimeMs t = interval.end;
    const DbActivityCounters c = activity_->AverageOver(interval);

    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbBlocksRead, t, c.blocks_read_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbBufferHits, t, c.buffer_hits_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbIndexScans, t, c.index_scans_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbIndexReads, t, c.index_reads_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbIndexFetches, t, c.index_fetches_per_sec));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbSequentialScans, t, c.seq_scans_per_sec));

    // Lock metrics: executor-recorded waits plus injector-held locks
    // sampled at the interval midpoint.
    const SimTimeMs mid = interval.begin + interval.duration() / 2;
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbLockWaitMs, t, c.lock_wait_ms_per_sec));
    DIADS_RETURN_IF_ERROR(EmitSample(
        MetricId::kDbLocksHeld, t,
        4.0 + c.locks_held + locks_->ExtraLocksHeldAt(mid)));
    DIADS_RETURN_IF_ERROR(
        EmitSample(MetricId::kDbSpaceUsageMb, t, catalog_->TotalSizeMb()));
  }
  return Status::Ok();
}

}  // namespace diads::db
