// Column-store-ish cost-based optimizer.
//
// The third synthetic engine's planner, deliberately different from both
// row-store planners along the axes real column stores differ:
//
//   * Vectorized scans whose cost is CPU-shaped, not I/O-shaped. Columns
//     are stored compressed in large segments; a scan decompresses batches
//     of vector_batch_rows values at a time, so its cost is dominated by
//     decompression (compression_codec_cost per value) and per-batch
//     dispatch, with segment I/O a comparatively small term — the inverse
//     of the row stores, where page fetches dominate.
//
//   * No secondary-index probes. The engine has no B-tree access path at
//     all: the only alternative to a full vector scan is a *zone-pruned*
//     scan, which consults per-segment min/max zone maps to skip segments
//     that cannot contain qualifying rows. Zone maps exist wherever the
//     row stores have an index (the catalog's IndexDef doubles as the
//     zone-map metadata for that column), and how well they prune is the
//     column's physical clustering: sorted columns prune to the
//     predicate's selectivity, shuffled columns prune almost nothing.
//     Pruning also fires on *join* columns (semi-join pushdown, the
//     "invisible join"), but never through unique-key zone maps — a key
//     column's values spread across every segment, so each zone's min/max
//     spans the whole domain.
//
//   * Hash joins only. Every join is a vectorized hash join (build on the
//     newly joined side); there is no nested-loop machinery because there
//     is nothing to probe per row.
//
//   * Late materialization. Scans emit compressed column vectors; full
//     rows are reconstructed (tuple_reconstruct_cost) only where an
//     operator needs them, and the decorrelated subquery is buffered as a
//     column block and hash-joined back.
//
// Plans come out in the shared db::Plan operator taxonomy — zone-pruned
// scans surface as kIndexScan with the zone map's IndexDef name (which is
// what makes plan fingerprints sensitive to pruning changes), full vector
// scans as kSeqScan — with each node's engine-native name in
// PlanOp::engine_op.
#ifndef DIADS_DB_COLUMNAR_OPTIMIZER_H_
#define DIADS_DB_COLUMNAR_OPTIMIZER_H_

#include <string>

#include "common/status.h"
#include "db/catalog.h"
#include "db/plan.h"
#include "db/query.h"

namespace diads::db {

/// Column-store-flavoured optimizer/executor parameters. Note the absence
/// of any page-cost split and of every row-store knob: this engine's
/// vocabulary is batches, codecs, and zone maps.
struct ColumnarParams {
  double segment_read_cost = 1.0;        ///< Per compressed segment page read.
  double compression_codec_cost = 0.004; ///< Per value decompressed.
  double tuple_reconstruct_cost = 0.02;  ///< Per row materialised.
  double vector_batch_rows = 4096.0;     ///< Values per vectorized batch.
  double batch_dispatch_cost = 0.35;     ///< Per batch handed downstream.
  double zone_map_consult_cost = 0.6;    ///< Per zone min/max consulted.
  /// Fraction of a table changed by DML before the engine reorganizes the
  /// segments (recompress + zone map rebuild + stats refresh).
  double zone_map_refresh_threshold = 0.30;
  double buffer_pool_mb = 512.0;         ///< Segment cache size.
  /// Executor translation: milliseconds of CPU per optimizer cost unit.
  double cpu_ms_per_cost_unit = 0.012;
};

/// Parameter vocabulary for kDbParamChanged events ("vector_batch_rows",
/// ...). InvalidArgument for unknown names — including row-store-only
/// names like "random_page_cost" or "io_block_read_cost", which do not
/// exist on this engine.
Status SetColumnarParamByName(ColumnarParams* params, const std::string& name,
                              double value);
Result<double> GetColumnarParamByName(const ColumnarParams& params,
                                      const std::string& name);

/// The column-store-ish planner. Stateless besides catalog/params
/// references; Optimize() is deterministic.
class ColumnarOptimizer {
 public:
  /// `catalog` must outlive the optimizer.
  ColumnarOptimizer(const Catalog* catalog, ColumnarParams params);

  Result<Plan> Optimize(const QuerySpec& spec) const;

  const ColumnarParams& params() const { return params_; }
  void set_params(ColumnarParams params) { params_ = params; }

  /// Internal plan-tree node (defined in the .cc; public so the planner's
  /// free helper functions can build candidate subtrees).
  struct Node;

 private:
  const Catalog* catalog_;
  ColumnarParams params_;
};

}  // namespace diads::db

#endif  // DIADS_DB_COLUMNAR_OPTIMIZER_H_
