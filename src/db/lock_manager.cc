#include "db/lock_manager.h"

namespace diads::db {

Status LockManager::AddContention(LockContentionWindow window) {
  if (window.window.empty()) {
    return Status::InvalidArgument("contention window is empty");
  }
  if (window.wait_ms < 0) {
    return Status::InvalidArgument("wait must be non-negative");
  }
  windows_.push_back(std::move(window));
  return Status::Ok();
}

SimTimeMs LockManager::WaitFor(const std::string& table, SimTimeMs t) const {
  SimTimeMs wait = 0;
  for (const LockContentionWindow& w : windows_) {
    if (w.table == table && w.window.Contains(t)) wait += w.wait_ms;
  }
  return wait;
}

double LockManager::ExtraLocksHeldAt(SimTimeMs t) const {
  double locks = 0;
  for (const LockContentionWindow& w : windows_) {
    if (w.window.Contains(t)) locks += w.extra_locks_held;
  }
  return locks;
}

}  // namespace diads::db
