#include "db/tpch.h"

namespace diads::db {

Status BuildTpchCatalog(const TpchOptions& options, Catalog* catalog) {
  if (options.scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  const double sf = options.scale_factor;

  DIADS_RETURN_IF_ERROR(catalog->AddTablespace("ts_partsupp",
                                               options.volume_v1,
                                               options.storage_mode));
  DIADS_RETURN_IF_ERROR(catalog->AddTablespace("ts_main", options.volume_v2,
                                               options.storage_mode));

  // Row widths follow the TPC-H specification's average tuple sizes.
  DIADS_RETURN_IF_ERROR(catalog->AddTable(
      "region", "ts_main", TableStats{5, 124},
      {{"r_regionkey", 5, 4}, {"r_name", 5, 32}}));
  DIADS_RETURN_IF_ERROR(catalog->AddTable(
      "nation", "ts_main", TableStats{25, 128},
      {{"n_nationkey", 25, 4}, {"n_regionkey", 5, 4}, {"n_name", 25, 32}}));
  DIADS_RETURN_IF_ERROR(catalog->AddTable(
      "supplier", "ts_main", TableStats{10000 * sf, 159},
      {{"s_suppkey", 10000 * sf, 4},
       {"s_nationkey", 25, 4},
       {"s_acctbal", 9000, 8}}));
  DIADS_RETURN_IF_ERROR(catalog->AddTable(
      "part", "ts_main", TableStats{200000 * sf, 155},
      {{"p_partkey", 200000 * sf, 4},
       {"p_size", 50, 4},
       {"p_type", 150, 25},
       {"p_mfgr", 5, 25}}));
  DIADS_RETURN_IF_ERROR(catalog->AddTable(
      "partsupp", "ts_partsupp", TableStats{800000 * sf, 144},
      {{"ps_partkey", 200000 * sf, 4},
       {"ps_suppkey", 10000 * sf, 4},
       {"ps_supplycost", 100000, 8}}));

  // Primary-key and join-path indexes (all on V2's tablespace conceptually;
  // index I/O is charged to the indexed table's volume, matching how
  // PostgreSQL co-locates indexes with their tablespace by default — the
  // paper's layout keeps partsupp and its indexes on V1).
  DIADS_RETURN_IF_ERROR(
      catalog->AddIndex("region_pkey", "region", "r_regionkey", true, 1.0));
  DIADS_RETURN_IF_ERROR(
      catalog->AddIndex("nation_pkey", "nation", "n_nationkey", true, 1.0));
  DIADS_RETURN_IF_ERROR(catalog->AddIndex("nation_regionkey_idx", "nation",
                                          "n_regionkey", false, 0.6));
  DIADS_RETURN_IF_ERROR(
      catalog->AddIndex("supplier_pkey", "supplier", "s_suppkey", true, 1.0));
  DIADS_RETURN_IF_ERROR(catalog->AddIndex("supplier_nationkey_idx", "supplier",
                                          "s_nationkey", false, 0.5));
  DIADS_RETURN_IF_ERROR(
      catalog->AddIndex("part_pkey", "part", "p_partkey", true, 1.0));
  DIADS_RETURN_IF_ERROR(
      catalog->AddIndex("part_size_idx", "part", "p_size", false, 0.3));
  DIADS_RETURN_IF_ERROR(catalog->AddIndex("partsupp_partkey_idx", "partsupp",
                                          "ps_partkey", false, 0.9));
  DIADS_RETURN_IF_ERROR(catalog->AddIndex("partsupp_suppkey_idx", "partsupp",
                                          "ps_suppkey", false, 0.4));
  return Status::Ok();
}

}  // namespace diads::db
