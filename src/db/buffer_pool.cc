#include "db/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace diads::db {

BufferPool::BufferPool(const Catalog* catalog, double size_mb)
    : catalog_(catalog), size_mb_(size_mb) {
  assert(catalog != nullptr);
}

double BufferPool::HitRate(const std::string& table) const {
  auto it = overrides_.find(table);
  if (it != overrides_.end()) return it->second;

  Result<const TableDef*> def = catalog_->FindTable(table);
  if (!def.ok()) return 0.5;
  const double table_mb =
      (*def)->actual_stats.pages() * kPageSizeBytes / (1024.0 * 1024.0);
  if (table_mb <= 0.5) return 0.995;  // Tiny tables live in cache.

  // Working-set model: the buffer pool is shared across the database in
  // proportion to size; re-scans of a table hit with probability roughly
  // min(1, cache_share / table_size). Repeated report-generation runs keep
  // the working set warm, hence the generous share.
  const double total_mb = std::max(1.0, catalog_->TotalSizeMb());
  const double share_mb = size_mb_ * std::min(1.0, table_mb / total_mb) +
                          0.15 * size_mb_;
  return std::clamp(share_mb / table_mb, 0.02, 0.995);
}

void BufferPool::OverrideHitRate(const std::string& table, double hit_rate) {
  overrides_[table] = std::clamp(hit_rate, 0.0, 1.0);
}

}  // namespace diads::db
