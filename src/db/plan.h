// Physical query plans.
//
// A Plan is an operator tree in the PostgreSQL style: explicit Hash build
// nodes under hash joins, Sort/Aggregate/Materialize as blocking operators,
// scans at the leaves. Operators carry the optimizer's row/cost estimates;
// Figure 1's APG hangs SAN dependency paths off exactly this tree, and the
// paper identifies operators by plan-order numbers O1..On, which
// AssignOperatorNumbers() reproduces (preorder, root = O1).
//
// Plan fingerprints (structural hashes) implement Module PD's "look for
// changes in the plan used to execute Q": two runs used the same plan iff
// their fingerprints match.
#ifndef DIADS_DB_PLAN_H_
#define DIADS_DB_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace diads::db {

/// Physical operator kinds.
enum class OpType {
  kResult,        ///< Plan root; returns rows to the client.
  kLimit,
  kSort,          ///< Blocking; emission spans the consumer pipeline.
  kAggregate,     ///< Blocking (hash/group aggregate).
  kHashJoin,      ///< Pipelined on the probe (first) child.
  kHash,          ///< Blocking hash-table build under a HashJoin.
  kMergeJoin,
  kNestLoopJoin,  ///< Pipelined on both children.
  kMaterialize,   ///< Blocking buffer of the inner relation.
  kFilter,
  kSeqScan,
  kIndexScan,
};

const char* OpTypeName(OpType type);

/// True for operators that consume their entire input before producing any
/// output (pipeline breakers).
bool IsBlockingOutput(OpType type);

/// True for blocking operators whose *emission* phase runs inside the
/// consumer pipeline, so their measured span stretches from the start of
/// the input pipeline to the end of the consumer pipeline (Sort, Aggregate).
/// Hash/Materialize builds finish when their input does.
bool SpanExtendsToOutput(OpType type);

/// True for leaf scans.
bool IsScan(OpType type);

/// One operator node.
struct PlanOp {
  int index = -1;       ///< Position in Plan::ops().
  int op_number = 0;    ///< Paper-style label: O<op_number>, preorder.
  OpType type = OpType::kResult;
  std::vector<int> children;   ///< Indices into Plan::ops().

  // Scan details (empty unless the op is a scan).
  std::string table_alias;
  std::string table;
  std::string index_name;

  /// Engine-native operator name ("ref", "ALL", "filesort", ...) for
  /// backends whose EXPLAIN vocabulary differs from the shared OpType
  /// taxonomy. Purely descriptive: not part of the fingerprint, so the
  /// same physical plan shape hashes identically across vocabularies.
  std::string engine_op;

  // Optimizer annotations.
  double est_rows = 0;
  double est_cost = 0;      ///< Cumulative cost in optimizer cost units.
  double est_pages = 0;     ///< Estimated page fetches (scans).

  std::string detail;       ///< Human-readable condition/keys.

  bool is_scan() const { return IsScan(type); }
};

/// Immutable operator tree.
class Plan {
 public:
  Plan() = default;

  const std::vector<PlanOp>& ops() const { return ops_; }
  const PlanOp& op(int index) const { return ops_[static_cast<size_t>(index)]; }
  int root_index() const { return root_; }
  size_t size() const { return ops_.size(); }
  const std::string& query_name() const { return query_name_; }

  /// Indices of leaf (scan) operators.
  std::vector<int> LeafIndexes() const;

  /// Parent index of an op (-1 for the root).
  int ParentOf(int index) const;

  /// Ancestor indices from parent up to the root.
  std::vector<int> AncestorsOf(int index) const;

  /// Op index for a paper-style operator number; NotFound if out of range.
  Result<int> IndexOfOpNumber(int op_number) const;

  /// Structural fingerprint: hashes types, scan targets, and tree shape —
  /// not estimates, so a stats refresh alone does not change the
  /// fingerprint unless it changes the plan structure.
  uint64_t Fingerprint() const;
  std::string FingerprintHex() const;

  /// EXPLAIN-style indented rendering.
  std::string Render(bool with_estimates = true) const;

 private:
  friend class PlanBuilder;
  std::vector<PlanOp> ops_;
  int root_ = -1;
  std::string query_name_;
};

/// Builds plans bottom-up. Children must be added before their parent.
class PlanBuilder {
 public:
  explicit PlanBuilder(std::string query_name)
      : query_name_(std::move(query_name)) {}

  /// Adds an operator; returns its index.
  int AddOp(OpType type, std::vector<int> children,
            std::string detail = std::string());

  /// Adds a scan leaf.
  int AddScan(OpType type, const std::string& alias, const std::string& table,
              const std::string& index_name = std::string());

  /// Sets estimates on an op.
  void SetEstimates(int index, double rows, double cost, double pages = 0);

  /// Sets the human-readable condition/keys text on an op.
  void SetDetail(int index, std::string detail);

  /// Sets the engine-native operator name on an op (see PlanOp::engine_op).
  void SetEngineOp(int index, std::string engine_op);

  /// Finalizes: validates single-rootedness, assigns preorder operator
  /// numbers (root = O1, children visited in order).
  Result<Plan> Build(int root_index);

 private:
  std::string query_name_;
  std::vector<PlanOp> ops_;
};

}  // namespace diads::db

#endif  // DIADS_DB_PLAN_H_
