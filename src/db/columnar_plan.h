// The column-store-ish Q2 plan fixture.
//
// The columnar analogue of MakePaperQ2Plan(): TPC-H Q2 as the third engine
// executes it — vectorized hash joins only (build on the newly joined
// side), zone-pruned or full vector scans at the leaves, a vectorized hash
// aggregate, and the subquery late-materialized into a column block that
// is hash-joined back. Same nine leaf scans as the Figure-1 plan, and the
// same load-bearing structural property: exactly two leaves — the main
// block's partsupp scan and the subquery block's partsupp scan — read
// volume V1. The tree (probe-side child first, preorder = O-number;
// engine access type in brackets):
//
//   O1  Result
//   O2   Sort [vectorized merge sort]       (top-100 suppliers)
//   O3    Hash Join [vectorized hash join]  (ps_supplycost = min(...))
//   O4     Hash Join                        (n_regionkey = r_regionkey)
//   O5      Hash Join                       (s_nationkey = n_nationkey)
//   O6       Hash Join                      (ps_suppkey = s_suppkey)
//   O7        Hash Join                     (p_partkey = ps_partkey)
//   O8         Index Scan part     [zone-pruned, V2]  (p_size zones)
//   O9         Hash [hash build]
//   O10         Index Scan partsupp [zone-pruned, V1] (ps_partkey zones)
//   O11       Hash [hash build]
//   O12        Seq Scan supplier   [vector scan, V2]
//   O13      Hash [hash build]
//   O14       Seq Scan nation      [vector scan, V2]
//   O15     Hash [hash build]
//   O16      Seq Scan region       [vector scan, V2]  (r_name = 'EUROPE')
//   O17    Hash [hash build]
//   O18     Materialize [late materialize]  (subquery column block)
//   O19      Aggregate [vectorized hash agg] (min cost by ps2.ps_partkey)
//   O20       Hash Join                     (n2_regionkey = r2_regionkey)
//   O21        Hash Join                    (s2_nationkey = n2_nationkey)
//   O22         Hash Join                   (ps2_suppkey = s2_suppkey)
//   O23          Index Scan partsupp2 [zone-pruned, V1] (ps_suppkey zones)
//   O24          Hash [hash build]
//   O25           Seq Scan supplier2 [vector scan, V2]
//   O26        Hash [hash build]
//   O27         Seq Scan nation2    [vector scan, V2]
//   O28      Hash [hash build]
//   O29       Seq Scan region2     [vector scan, V2]  (r2_name = 'EUROPE')
//
// Under the shared pipelined execution model the blocking operators (every
// Hash build, the Sort, the Materialize/Aggregate pair) split this into
// the same event-propagation shape as the other fixtures: V1 contention
// stretches the pipelines holding O10 and O23 while the build boundaries
// keep them separable.
#ifndef DIADS_DB_COLUMNAR_PLAN_H_
#define DIADS_DB_COLUMNAR_PLAN_H_

#include "common/status.h"
#include "db/plan.h"

namespace diads::db {

/// Builds the column-store-ish Q2 plan with row/page estimates calibrated
/// for the BuildTpchCatalog statistics at `scale_factor`.
Result<Plan> MakeColumnarQ2Plan(double scale_factor = 1.0);

}  // namespace diads::db

#endif  // DIADS_DB_COLUMNAR_PLAN_H_
