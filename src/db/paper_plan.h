// The Figure-1 plan fixture.
//
// Figure 1 of the paper shows the APG for TPC-H Q2: a 25-operator plan
// (O1-O25) with 9 leaf operators, where exactly two leaves — the main
// block's partsupp scan and the subquery block's partsupp scan — read
// volume V1, and the remaining seven leaves read V2.
//
// MakePaperQ2Plan() hand-builds that plan so the preorder numbering lands
// the two V1 leaves at O8 and O22, matching the ids the paper's Section 5
// narrative uses ("the leaf operators (O8 and O22) connected to volume
// V1"). The tree (children listed probe-side first, preorder = O-number):
//
//   O1  Result
//   O2   Sort                              (top-100 suppliers)
//   O3    Hash Join                        (ps_supplycost = min(...))
//   O4     Hash Join                       (s_nationkey = n_nationkey)
//   O5      Hash Join                      (ps_suppkey = s_suppkey)
//   O6       Nested Loop                   (partsupp probe per part)
//   O7        Index Scan part       [V2]   (p_size = 15, p_type like BRASS)
//   O8        Index Scan partsupp   [V1]   (ps_partkey = p_partkey)
//   O9       Hash
//   O10       Seq Scan supplier     [V2]
//   O11      Hash
//   O12       Hash Join                    (n_regionkey = r_regionkey)
//   O13        Seq Scan nation      [V2]
//   O14        Hash
//   O15         Seq Scan region     [V2]   (r_name = 'EUROPE')
//   O16     Hash                           (subquery result build)
//   O17      Aggregate                     (min cost group by ps_partkey)
//   O18       Hash Join                    (n2_regionkey = r2_regionkey)
//   O19        Nested Loop                 (n2 lookup per row)
//   O20         Nested Loop                (partsupp2 probe per supplier)
//   O21          Seq Scan supplier2 [V2]
//   O22          Index Scan partsupp2 [V1] (ps_suppkey = s_suppkey)
//   O23         Index Scan nation2  [V2]   (n_nationkey = s_nationkey)
//   O24        Hash
//   O25         Seq Scan region2    [V2]   (r_name = 'EUROPE')
//
// Under the pipelined execution model this yields the paper's event-
// propagation shape: contention on V1 stretches the two pipelines holding
// O8 and O22 — {O2..O8} and {O17..O23} — while the root Result (O1), the
// hash-build pipelines ({O9,O10}, {O11..O15}, {O24,O25}) and the build
// node O16 keep their durations.
#ifndef DIADS_DB_PAPER_PLAN_H_
#define DIADS_DB_PAPER_PLAN_H_

#include "common/status.h"
#include "db/plan.h"

namespace diads::db {

/// Builds the Figure-1 Q2 plan with row/page estimates calibrated for the
/// BuildTpchCatalog statistics at `scale_factor` (row and page estimates of
/// the scale-dependent tables — everything but nation/region — scale
/// linearly, so the executor's actual-vs-planned ratios stay meaningful at
/// any testbed scale).
Result<Plan> MakePaperQ2Plan(double scale_factor = 1.0);

}  // namespace diads::db

#endif  // DIADS_DB_PAPER_PLAN_H_
