// The MySQL-ish Q2 plan fixture.
//
// The MySQL analogue of MakePaperQ2Plan(): TPC-H Q2 as the second engine
// executes it — one left-deep nested-loop chain per block (no hash joins),
// the subquery materialised into a temp table with an auto-generated key,
// and a top-level filesort. Same nine leaf scans as the Figure-1 plan, and
// the same load-bearing structural property: exactly two leaves — the main
// block's partsupp ref access and the subquery block's partsupp ref access
// — read volume V1. The tree (children probe-side first, preorder =
// O-number; engine access type in brackets):
//
//   O1  Result
//   O2   Sort [filesort]                    (top-100 suppliers)
//   O3    Nested Loop [ref<auto_key0>]      (ps_supplycost = min(...))
//   O4     Nested Loop [eq_ref]             (n_regionkey = r_regionkey)
//   O5      Nested Loop [eq_ref]            (s_nationkey = n_nationkey)
//   O6       Nested Loop [eq_ref]           (ps_suppkey = s_suppkey)
//   O7        Nested Loop [ref]             (partsupp probe per part)
//   O8         Index Scan part      [range, V2]  (p_size = 15, BRASS)
//   O9         Index Scan partsupp  [ref,   V1]  (ps_partkey = p_partkey)
//   O10       Index Scan supplier   [eq_ref, V2]
//   O11      Index Scan nation      [eq_ref, V2]
//   O12     Index Scan region       [eq_ref, V2] (r_name = 'EUROPE')
//   O13    Materialize [derived]            (subquery temp table)
//   O14     Aggregate [tmp table]           (min cost group by ps_partkey)
//   O15      Nested Loop [eq_ref]           (n2_regionkey = r2_regionkey)
//   O16       Nested Loop [eq_ref]          (s2_nationkey = n2_nationkey)
//   O17        Nested Loop [ref]            (partsupp2 probe per supplier)
//   O18         Seq Scan supplier2  [ALL,   V2]
//   O19         Index Scan partsupp2 [ref,  V1]  (ps_suppkey = s_suppkey)
//   O20        Index Scan nation2   [eq_ref, V2]
//   O21       Index Scan region2    [eq_ref, V2] (r_name = 'EUROPE')
//
// Under the shared pipelined execution model the blocking operators (Sort,
// Materialize, Aggregate) split this into the same event-propagation shape
// as the PostgreSQL fixture: V1 contention stretches the two pipelines
// holding O9 and O19 — {O2..O12} and {O14..O21} — while the materialise
// boundary keeps them separable.
#ifndef DIADS_DB_MYSQL_PLAN_H_
#define DIADS_DB_MYSQL_PLAN_H_

#include "common/status.h"
#include "db/plan.h"

namespace diads::db {

/// Builds the MySQL-ish Q2 plan with row/page estimates calibrated for the
/// BuildTpchCatalog statistics at `scale_factor`.
Result<Plan> MakeMysqlQ2Plan(double scale_factor = 1.0);

}  // namespace diads::db

#endif  // DIADS_DB_MYSQL_PLAN_H_
