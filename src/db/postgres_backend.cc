#include "db/postgres_backend.h"

#include <cassert>

#include "db/optimizer.h"
#include "db/paper_plan.h"

namespace diads::db {

PostgresBackend::PostgresBackend(const BackendInit& init)
    : catalog_(init.catalog),
      params_(init.postgres_params),
      scale_factor_(init.scale_factor) {
  assert(catalog_ != nullptr);
  params_.buffer_pool_mb = init.buffer_pool_mb;
}

Result<Plan> PostgresBackend::OptimizeQuery(const QuerySpec& spec) const {
  Optimizer optimizer(catalog_, params_);
  return optimizer.Optimize(spec);
}

Result<Plan> PostgresBackend::OptimizeQueryWithParam(
    const QuerySpec& spec, const std::string& param, double value) const {
  DbParams what_if = params_;
  DIADS_RETURN_IF_ERROR(SetParamByName(&what_if, param, value));
  Optimizer optimizer(catalog_, what_if);
  return optimizer.Optimize(spec);
}

Result<Plan> PostgresBackend::MakePaperPlan() const {
  return MakePaperQ2Plan(scale_factor_);
}

Status PostgresBackend::SetParam(const std::string& name, double value) {
  return SetParamByName(&params_, name, value);
}

Result<double> PostgresBackend::GetParam(const std::string& name) const {
  return GetParamByName(params_, name);
}

std::vector<std::string> PostgresBackend::ParamNames() const {
  return {"seq_page_cost",     "random_page_cost",  "cpu_tuple_cost",
          "cpu_index_tuple_cost", "cpu_operator_cost", "work_mem_mb",
          "buffer_pool_mb",    "effective_cache_mb"};
}

PlanMisconfigKnob PostgresBackend::MisconfigKnob() const {
  // The paper's S7 fault: random_page_cost cranked to 40 makes every index
  // access look prohibitively expensive and flips the plan.
  return {"random_page_cost", 40.0};
}

StatsDriftSpec PostgresBackend::AnalyzeDriftSpec() const {
  // part grown 8x is enough: with fresh statistics the random-page
  // penalty on the index-nested-loop probes flips the join strategy.
  return {"part", 8.0};
}

Status PostgresBackend::ApplyDml(SimTimeMs t, const std::string& table,
                                 double factor,
                                 const std::string& description) {
  // PostgreSQL semantics: optimizer statistics stay stale until ANALYZE.
  return catalog_->ApplyDml(t, table, factor, description);
}

Status PostgresBackend::ApplyDmlSilently(SimTimeMs t,
                                         const std::string& table,
                                         double factor,
                                         const std::string& description) {
  return catalog_->ApplyDml(t, table, factor, description);
}

Status PostgresBackend::Analyze(SimTimeMs t, const std::string& table) {
  return catalog_->Analyze(t, table);
}

}  // namespace diads::db
