// The column-store-ish backend: DbBackend over ColumnarOptimizer, the
// ColumnarParams vocabulary, and the MakeColumnarQ2Plan fixture.
//
// Statistics semantics differ from both row stores: the engine watches
// cumulative DML churn per table and, once it passes
// zone_map_refresh_threshold (default 30% of the table), runs a *segment
// reorganization* — it recompresses the drifted segments, rebuilds their
// zone maps, and refreshes the optimizer statistics from the segment
// metadata it just rewrote. That is heavier and rarer than InnoDB's
// sampled-dive auto-recalc (10% threshold, stats only): between
// reorganizations the data drifts freely, but a reorganization also heals
// physical-layout damage (compression-ratio drift, stale zone maps) as a
// side effect. ApplyDmlSilently() models append-only ingest below the
// reorganization radar — that is what silent data-drift faults use.
#ifndef DIADS_DB_COLUMNAR_BACKEND_H_
#define DIADS_DB_COLUMNAR_BACKEND_H_

#include <string>
#include <unordered_map>

#include "db/backend.h"
#include "db/columnar_optimizer.h"

namespace diads::db {

class ColumnarBackend : public DbBackend {
 public:
  explicit ColumnarBackend(const BackendInit& init);

  BackendKind kind() const override { return BackendKind::kColumnar; }

  Result<Plan> OptimizeQuery(const QuerySpec& spec) const override;
  Result<Plan> OptimizeQueryWithParam(const QuerySpec& spec,
                                      const std::string& param,
                                      double value) const override;
  Result<Plan> MakePaperPlan() const override;

  Status SetParam(const std::string& name, double value) override;
  Result<double> GetParam(const std::string& name) const override;
  std::vector<std::string> ParamNames() const override;
  PlanMisconfigKnob MisconfigKnob() const override;
  StatsDriftSpec AnalyzeDriftSpec() const override;

  DbParams ExecutorParams() const override;

  Status ApplyDml(SimTimeMs t, const std::string& table, double factor,
                  const std::string& description) override;
  Status ApplyDmlSilently(SimTimeMs t, const std::string& table,
                          double factor,
                          const std::string& description) override;
  Status Analyze(SimTimeMs t, const std::string& table) override;

 private:
  /// Segment reorganization: recompress, rebuild zone maps, refresh stats.
  Status Reorganize(SimTimeMs t, const std::string& table);

  Catalog* catalog_;
  ColumnarParams params_;
  double scale_factor_;
  /// Per-table multiplicative row drift since the last reorganization.
  std::unordered_map<std::string, double> drift_since_reorg_;
};

}  // namespace diads::db

#endif  // DIADS_DB_COLUMNAR_BACKEND_H_
