// Buffer pool hit-rate model.
//
// The executor charges physical I/O only for buffer misses. The model is a
// working-set approximation: a table's hit rate grows with the fraction of
// the table that fits in its share of the buffer pool, with small hot
// tables (nation, region) pinned near 100%. This is what makes the paper's
// scenario 2 behave correctly: V2 hosts small, well-cached tables, so
// external contention on V2 barely moves query operators even though V2's
// SAN metrics look anomalous — Module DA then prunes V2.
#ifndef DIADS_DB_BUFFER_POOL_H_
#define DIADS_DB_BUFFER_POOL_H_

#include <string>
#include <unordered_map>

#include "db/catalog.h"

namespace diads::db {

/// Estimates per-table buffer hit rates for a given pool size.
class BufferPool {
 public:
  /// `catalog` must outlive the pool.
  BufferPool(const Catalog* catalog, double size_mb);

  /// Hit probability for page reads of `table`, in [0, 0.995].
  double HitRate(const std::string& table) const;

  /// Overrides the hit rate of one table (used by fault injection to model
  /// cache-unfriendly access patterns).
  void OverrideHitRate(const std::string& table, double hit_rate);

  void set_size_mb(double size_mb) { size_mb_ = size_mb; }
  double size_mb() const { return size_mb_; }

 private:
  const Catalog* catalog_;
  double size_mb_;
  std::unordered_map<std::string, double> overrides_;
};

}  // namespace diads::db

#endif  // DIADS_DB_BUFFER_POOL_H_
