#include "db/paper_plan.h"

namespace diads::db {

Result<Plan> MakePaperQ2Plan(double scale_factor) {
  if (scale_factor <= 0) {
    return Status::InvalidArgument("scale factor must be positive");
  }
  // Scale-dependent estimates grow linearly with the TPC-H scale factor;
  // nation and region are fixed-size dimension tables.
  const double sf = scale_factor;
  PlanBuilder b("Q2");

  // --- Main block (probe side of the top hash join) -----------------------
  // O7: part, filtered by p_size = 15 AND p_type LIKE '%BRASS'.
  const int part = b.AddScan(OpType::kIndexScan, "p", "part", "part_size_idx");
  b.SetDetail(part, "p_size = 15 and p_type like '%BRASS'");
  b.SetEstimates(part, 800 * sf, 620.0 * sf, 600 * sf);

  // O8: partsupp probed per qualifying part (V1 leaf #1).
  const int ps =
      b.AddScan(OpType::kIndexScan, "ps", "partsupp", "partsupp_partkey_idx");
  b.SetDetail(ps, "ps_partkey = p.p_partkey");
  b.SetEstimates(ps, 3200 * sf, 5200.0 * sf, 2000 * sf);

  // O6: nested loop part x partsupp.
  const int nl_part_ps = b.AddOp(OpType::kNestLoopJoin, {part, ps},
                                 "ps_partkey = p_partkey");
  b.SetEstimates(nl_part_ps, 3200 * sf, 6100.0 * sf);

  // O10/O9: supplier hash build.
  const int supplier = b.AddScan(OpType::kSeqScan, "s", "supplier");
  b.SetEstimates(supplier, 10000 * sf, 294.0 * sf, 194 * sf);
  const int hash_s = b.AddOp(OpType::kHash, {supplier}, "build s");
  b.SetEstimates(hash_s, 10000 * sf, 394.0 * sf);

  // O5: join partsupp side with supplier.
  const int hj_s = b.AddOp(OpType::kHashJoin, {nl_part_ps, hash_s},
                           "ps.ps_suppkey = s.s_suppkey");
  b.SetEstimates(hj_s, 3200 * sf, 6700.0 * sf);

  // O13..O15 / O12 / O11: (nation x region) hash build.
  const int nation = b.AddScan(OpType::kSeqScan, "n", "nation");
  b.SetEstimates(nation, 25, 1.3, 1);
  const int region = b.AddScan(OpType::kSeqScan, "r", "region");
  b.SetDetail(region, "r_name = 'EUROPE'");
  b.SetEstimates(region, 1, 1.1, 1);
  const int hash_r = b.AddOp(OpType::kHash, {region}, "build r");
  b.SetEstimates(hash_r, 1, 1.2);
  const int hj_nr = b.AddOp(OpType::kHashJoin, {nation, hash_r},
                            "n.n_regionkey = r.r_regionkey");
  b.SetEstimates(hj_nr, 5, 2.8);
  const int hash_nr = b.AddOp(OpType::kHash, {hj_nr}, "build n x r");
  b.SetEstimates(hash_nr, 5, 3.0);

  // O4: main block root.
  const int hj_main = b.AddOp(OpType::kHashJoin, {hj_s, hash_nr},
                              "s.s_nationkey = n.n_nationkey");
  b.SetEstimates(hj_main, 640 * sf, 7000.0 * sf);

  // --- Subquery block (build side of the top hash join) -------------------
  // O21: supplier2 drives the partsupp2 probes.
  const int supplier2 = b.AddScan(OpType::kSeqScan, "s2", "supplier");
  b.SetEstimates(supplier2, 10000 * sf, 294.0 * sf, 194 * sf);

  // O22: partsupp2 probed per supplier (V1 leaf #2; the heavy V1 reader).
  const int ps2 =
      b.AddScan(OpType::kIndexScan, "ps2", "partsupp", "partsupp_suppkey_idx");
  b.SetDetail(ps2, "ps2.ps_suppkey = s2.s_suppkey");
  b.SetEstimates(ps2, 800000 * sf, 92000.0 * sf, 20000 * sf);

  // O20: nested loop supplier2 x partsupp2.
  const int nl_s2_ps2 = b.AddOp(OpType::kNestLoopJoin, {supplier2, ps2},
                                "ps2.ps_suppkey = s2.s_suppkey");
  b.SetEstimates(nl_s2_ps2, 800000 * sf, 101000.0 * sf);

  // O23: nation2 looked up per joined row (primary-key probe, cached).
  const int nation2 =
      b.AddScan(OpType::kIndexScan, "n2", "nation", "nation_pkey");
  b.SetDetail(nation2, "n2.n_nationkey = s2.s_nationkey");
  b.SetEstimates(nation2, 800000 * sf, 4000.0 * sf, 3);

  // O19: nested loop with nation2.
  const int nl_n2 = b.AddOp(OpType::kNestLoopJoin, {nl_s2_ps2, nation2},
                            "n2.n_nationkey = s2.s_nationkey");
  b.SetEstimates(nl_n2, 800000 * sf, 108000.0 * sf);

  // O25/O24: region2 hash build.
  const int region2 = b.AddScan(OpType::kSeqScan, "r2", "region");
  b.SetDetail(region2, "r2.r_name = 'EUROPE'");
  b.SetEstimates(region2, 1, 1.1, 1);
  const int hash_r2 = b.AddOp(OpType::kHash, {region2}, "build r2");
  b.SetEstimates(hash_r2, 1, 1.2);

  // O18: restrict the subquery to EUROPE suppliers.
  const int hj_sub = b.AddOp(OpType::kHashJoin, {nl_n2, hash_r2},
                             "n2.n_regionkey = r2.r_regionkey");
  b.SetEstimates(hj_sub, 160000 * sf, 112000.0 * sf);

  // O17: min(ps_supplycost) per part.
  const int agg = b.AddOp(OpType::kAggregate, {hj_sub},
                          "min(ps_supplycost) group by ps2.ps_partkey");
  b.SetEstimates(agg, 120000 * sf, 114000.0 * sf);

  // O16: hash build of the subquery result.
  const int hash_sub = b.AddOp(OpType::kHash, {agg}, "build subquery result");
  b.SetEstimates(hash_sub, 120000 * sf, 115000.0 * sf);

  // --- Top of the plan -----------------------------------------------------
  // O3: main x subquery on partkey + supplycost = min.
  const int hj_top = b.AddOp(
      OpType::kHashJoin, {hj_main, hash_sub},
      "ps.ps_partkey = ps2.ps_partkey and ps_supplycost = min_cost");
  b.SetEstimates(hj_top, 160 * sf, 123000.0 * sf);

  // O2: order by s_acctbal desc, n_name, s_name, p_partkey (top 100).
  const int sort = b.AddOp(OpType::kSort, {hj_top},
                           "s_acctbal desc, n_name, s_name, p_partkey");
  b.SetEstimates(sort, 160 * sf, 123100.0 * sf);

  // O1: Result.
  const int result = b.AddOp(OpType::kResult, {sort}, "top 100");
  b.SetEstimates(result, 100, 123100.0 * sf);

  return b.Build(result);
}

}  // namespace diads::db
