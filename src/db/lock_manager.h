// Table lock contention model.
//
// Scenario 5 of the paper injects a "DB problem (locking-based)": a
// competing transaction holds table locks, stalling the report query's
// scans. The lock manager records contention windows; during execution,
// a scan of a contended table pays the configured wait before its I/O
// starts. The injector also raises the database's Locks Held / Lock Wait
// metrics so Module SD's locking symptoms can fire.
#ifndef DIADS_DB_LOCK_MANAGER_H_
#define DIADS_DB_LOCK_MANAGER_H_

#include <string>
#include <vector>

#include "common/sim_time.h"
#include "common/status.h"

namespace diads::db {

/// One contention window on a table.
struct LockContentionWindow {
  std::string table;
  TimeInterval window;
  /// Wait imposed on a scan that starts inside the window.
  SimTimeMs wait_ms = 0;
  /// Average extra locks held during the window (for the metric feed).
  double extra_locks_held = 0;
};

/// Registry of lock contention windows.
class LockManager {
 public:
  Status AddContention(LockContentionWindow window);

  /// Total wait a scan of `table` starting at time `t` must pay.
  SimTimeMs WaitFor(const std::string& table, SimTimeMs t) const;

  /// Extra locks held across all tables at time `t`.
  double ExtraLocksHeldAt(SimTimeMs t) const;

  const std::vector<LockContentionWindow>& windows() const { return windows_; }

 private:
  std::vector<LockContentionWindow> windows_;
};

}  // namespace diads::db

#endif  // DIADS_DB_LOCK_MANAGER_H_
