#include "db/mysql_backend.h"

#include <cassert>
#include <cmath>

#include "common/strings.h"
#include "db/mysql_plan.h"

namespace diads::db {
namespace {

/// Deterministic sampled-dive estimation error for a table: automatic
/// recalculation samples a handful of index pages (20 by default in
/// InnoDB), so the refreshed row count is close to — but not exactly —
/// the truth. Hashing the table name keeps runs reproducible.
double SampledDiveError(const std::string& table) {
  // Map to [-0.02, +0.02].
  return (static_cast<double>(Fnv1a64(table) % 4001) / 4000.0 - 0.5) * 0.04;
}

}  // namespace

MysqlBackend::MysqlBackend(const BackendInit& init)
    : catalog_(init.catalog), scale_factor_(init.scale_factor) {
  assert(catalog_ != nullptr);
  params_.buffer_pool_mb = init.buffer_pool_mb;
}

Result<Plan> MysqlBackend::OptimizeQuery(const QuerySpec& spec) const {
  MysqlOptimizer optimizer(catalog_, params_);
  return optimizer.Optimize(spec);
}

Result<Plan> MysqlBackend::OptimizeQueryWithParam(const QuerySpec& spec,
                                                  const std::string& param,
                                                  double value) const {
  MysqlParams what_if = params_;
  DIADS_RETURN_IF_ERROR(SetMysqlParamByName(&what_if, param, value));
  MysqlOptimizer optimizer(catalog_, what_if);
  return optimizer.Optimize(spec);
}

Result<Plan> MysqlBackend::MakePaperPlan() const {
  return MakeMysqlQ2Plan(scale_factor_);
}

Status MysqlBackend::SetParam(const std::string& name, double value) {
  return SetMysqlParamByName(&params_, name, value);
}

Result<double> MysqlBackend::GetParam(const std::string& name) const {
  return GetMysqlParamByName(params_, name);
}

std::vector<std::string> MysqlBackend::ParamNames() const {
  return {"io_block_read_cost", "memory_block_read_cost",
          "row_evaluate_cost",  "key_compare_cost",
          "join_buffer_mb",     "sort_buffer_mb",
          "tmp_table_mb",       "buffer_pool_mb"};
}

PlanMisconfigKnob MysqlBackend::MisconfigKnob() const {
  // No random_page_cost analogue exists on this engine; the corresponding
  // misconfiguration is the single I/O cost cranked far above the CPU
  // costs, which makes per-probe index page reads look prohibitive and
  // flips ref-access joins into join-buffer plans.
  return {"io_block_read_cost", 25.0};
}

StatsDriftSpec MysqlBackend::AnalyzeDriftSpec() const {
  // The flat io_block_read_cost never penalises the part-driven
  // index-nested-loop chain the way random_page_cost does, so the join
  // order survives far more drift: part must grow ~48x before fresh
  // statistics flip the optimizer onto the supplier-driven order.
  return {"part", 48.0};
}

DbParams MysqlBackend::ExecutorParams() const {
  // Executor-facing translation of the engine cost model: the flat
  // io_block_read_cost serves as both page costs, row_evaluate_cost plays
  // cpu_tuple_cost's role, and the cost-unit-to-milliseconds factor
  // compensates for the ~10x scale difference between the vocabularies.
  DbParams out;
  out.seq_page_cost = params_.io_block_read_cost;
  out.random_page_cost = params_.io_block_read_cost;
  out.cpu_tuple_cost = params_.row_evaluate_cost;
  out.cpu_index_tuple_cost = params_.key_compare_cost;
  out.cpu_operator_cost = params_.key_compare_cost;
  out.work_mem_mb = params_.sort_buffer_mb;
  out.buffer_pool_mb = params_.buffer_pool_mb;
  out.effective_cache_mb = params_.buffer_pool_mb * 1.5;
  out.cpu_ms_per_cost_unit = params_.cpu_ms_per_cost_unit;
  return out;
}

Status MysqlBackend::ApplyDml(SimTimeMs t, const std::string& table,
                              double factor,
                              const std::string& description) {
  DIADS_RETURN_IF_ERROR(catalog_->ApplyDml(t, table, factor, description));
  double& drift = drift_since_recalc_.try_emplace(table, 1.0).first->second;
  drift *= factor;
  if (std::fabs(drift - 1.0) < kAutoRecalcThreshold) return Status::Ok();
  drift = 1.0;
  return catalog_->RefreshOptimizerStats(
      t + Seconds(30), table, SampledDiveError(table),
      StrFormat("automatic statistics recalculation on '%s' "
                "(innodb_stats_auto_recalc, sampled dives)",
                table.c_str()));
}

Status MysqlBackend::ApplyDmlSilently(SimTimeMs t, const std::string& table,
                                      double factor,
                                      const std::string& description) {
  // STATS_AUTO_RECALC=0 table: the DML lands, the optimizer stays blind.
  return catalog_->ApplyDml(t, table, factor, description);
}

Status MysqlBackend::Analyze(SimTimeMs t, const std::string& table) {
  // ANALYZE TABLE: an explicit full refresh (modelled as exact — the
  // sampling error only matters for the background recalculation). Like
  // InnoDB, it also resets the auto-recalc drift counter: subsequent DML
  // is measured against this refresh.
  drift_since_recalc_.erase(table);
  return catalog_->Analyze(t, table);
}

}  // namespace diads::db
