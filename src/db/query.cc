#include "db/query.h"

namespace diads::db {

const TableRef* QuerySpec::FindAlias(const std::string& alias) const {
  for (const TableRef& t : tables) {
    if (t.alias == alias) return &t;
  }
  return nullptr;
}

QuerySpec MakeTpchQ2Spec() {
  QuerySpec q;
  q.name = "Q2";

  // Main block: part x partsupp x supplier x nation x region with
  // p_size = 15 AND p_type LIKE '%BRASS' (selectivity 1/50 * 1/5) and
  // r_name = 'EUROPE' (1/5).
  q.tables = {
      {"p", "part", 1.0 / 50.0 * 1.0 / 5.0, "p_size"},
      {"ps", "partsupp", 1.0, ""},
      {"s", "supplier", 1.0, ""},
      {"n", "nation", 1.0, ""},
      {"r", "region", 1.0 / 5.0, "r_regionkey"},
  };
  q.joins = {
      {"p", "p_partkey", "ps", "ps_partkey"},
      {"s", "s_suppkey", "ps", "ps_suppkey"},
      {"s", "s_nationkey", "n", "n_nationkey"},
      {"n", "n_regionkey", "r", "r_regionkey"},
  };
  q.sort = true;   // ORDER BY s_acctbal DESC, n_name, s_name, p_partkey.
  q.limit = 100;

  // Subquery block: min(ps_supplycost) per part over partsupp x supplier x
  // nation x region (EUROPE only), unnested into a grouped block.
  auto sub = std::make_unique<QuerySpec>();
  sub->name = "Q2.sub";
  sub->tables = {
      {"ps2", "partsupp", 1.0, ""},
      {"s2", "supplier", 1.0, ""},
      {"n2", "nation", 1.0, ""},
      {"r2", "region", 1.0 / 5.0, "r_regionkey"},
  };
  sub->joins = {
      {"s2", "s_suppkey", "ps2", "ps_suppkey"},
      {"s2", "s_nationkey", "n2", "n_nationkey"},
      {"n2", "n_regionkey", "r2", "r_regionkey"},
  };
  sub->aggregate = true;
  sub->agg_group_alias = "ps2";
  sub->agg_group_column = "ps_partkey";

  q.subplan = std::move(sub);
  q.subplan_join = {"ps", "ps_partkey", "ps2", "ps_partkey"};
  // ps_supplycost = min(...): on average one of the four suppliers per part
  // survives.
  q.subplan_join_selectivity = 0.25;
  return q;
}

QuerySpec MakeSupplierRollupSpec() {
  QuerySpec q;
  q.name = "SupplierRollup";
  q.tables = {
      {"s", "supplier", 1.0, ""},
      {"n", "nation", 1.0, ""},
      {"r", "region", 1.0 / 5.0, "r_regionkey"},
  };
  q.joins = {
      {"s", "s_nationkey", "n", "n_nationkey"},
      {"n", "n_regionkey", "r", "r_regionkey"},
  };
  q.aggregate = true;
  q.agg_group_alias = "n";
  q.agg_group_column = "n_name";
  q.sort = true;
  return q;
}

}  // namespace diads::db
