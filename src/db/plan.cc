#include "db/plan.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "common/strings.h"

namespace diads::db {

const char* OpTypeName(OpType type) {
  switch (type) {
    case OpType::kResult:
      return "Result";
    case OpType::kLimit:
      return "Limit";
    case OpType::kSort:
      return "Sort";
    case OpType::kAggregate:
      return "Aggregate";
    case OpType::kHashJoin:
      return "Hash Join";
    case OpType::kHash:
      return "Hash";
    case OpType::kMergeJoin:
      return "Merge Join";
    case OpType::kNestLoopJoin:
      return "Nested Loop";
    case OpType::kMaterialize:
      return "Materialize";
    case OpType::kFilter:
      return "Filter";
    case OpType::kSeqScan:
      return "Seq Scan";
    case OpType::kIndexScan:
      return "Index Scan";
  }
  return "?";
}

bool IsBlockingOutput(OpType type) {
  switch (type) {
    case OpType::kSort:
    case OpType::kAggregate:
    case OpType::kHash:
    case OpType::kMaterialize:
      return true;
    default:
      return false;
  }
}

bool SpanExtendsToOutput(OpType type) {
  return type == OpType::kSort || type == OpType::kAggregate;
}

bool IsScan(OpType type) {
  return type == OpType::kSeqScan || type == OpType::kIndexScan;
}

std::vector<int> Plan::LeafIndexes() const {
  std::vector<int> out;
  for (const PlanOp& op : ops_) {
    if (op.children.empty()) out.push_back(op.index);
  }
  return out;
}

int Plan::ParentOf(int index) const {
  for (const PlanOp& op : ops_) {
    for (int c : op.children) {
      if (c == index) return op.index;
    }
  }
  return -1;
}

std::vector<int> Plan::AncestorsOf(int index) const {
  std::vector<int> out;
  int cur = ParentOf(index);
  while (cur >= 0) {
    out.push_back(cur);
    cur = ParentOf(cur);
  }
  return out;
}

Result<int> Plan::IndexOfOpNumber(int op_number) const {
  for (const PlanOp& op : ops_) {
    if (op.op_number == op_number) return op.index;
  }
  return Status::NotFound(StrFormat("no operator O%d in plan", op_number));
}

uint64_t Plan::Fingerprint() const {
  // Post-order structural hash rooted at root_.
  std::function<uint64_t(int)> hash_subtree = [&](int index) -> uint64_t {
    const PlanOp& op = ops_[static_cast<size_t>(index)];
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
      h ^= v;
      h *= 1099511628211ull;
    };
    mix(static_cast<uint64_t>(op.type) + 0x51ull);
    for (char c : op.table) mix(static_cast<uint64_t>(c));
    for (char c : op.table_alias) mix(static_cast<uint64_t>(c));
    for (char c : op.index_name) mix(static_cast<uint64_t>(c));
    for (int child : op.children) mix(hash_subtree(child) * 0x9E3779B97f4A7C15ull);
    return h;
  };
  if (root_ < 0) return 0;
  return hash_subtree(root_);
}

std::string Plan::FingerprintHex() const {
  return StrFormat("%016llx",
                   static_cast<unsigned long long>(Fingerprint()));
}

std::string Plan::Render(bool with_estimates) const {
  std::string out;
  std::function<void(int, int)> walk = [&](int index, int depth) {
    const PlanOp& op = ops_[static_cast<size_t>(index)];
    out += StrFormat("%*sO%-3d %s", depth * 2, "", op.op_number,
                     OpTypeName(op.type));
    if (!op.engine_op.empty()) out += " [" + op.engine_op + "]";
    if (op.is_scan()) {
      out += " on " + op.table;
      if (op.table_alias != op.table && !op.table_alias.empty()) {
        out += " " + op.table_alias;
      }
      if (!op.index_name.empty()) out += " using " + op.index_name;
    }
    if (!op.detail.empty()) out += "  (" + op.detail + ")";
    if (with_estimates) {
      out += StrFormat("  [rows=%.0f cost=%.1f]", op.est_rows, op.est_cost);
    }
    out += '\n';
    for (int child : op.children) walk(child, depth + 1);
  };
  if (root_ >= 0) walk(root_, 0);
  return out;
}

int PlanBuilder::AddOp(OpType type, std::vector<int> children,
                       std::string detail) {
  PlanOp op;
  op.index = static_cast<int>(ops_.size());
  op.type = type;
  op.children = std::move(children);
  op.detail = std::move(detail);
  ops_.push_back(std::move(op));
  return ops_.back().index;
}

int PlanBuilder::AddScan(OpType type, const std::string& alias,
                         const std::string& table,
                         const std::string& index_name) {
  assert(IsScan(type));
  const int index = AddOp(type, {});
  ops_[static_cast<size_t>(index)].table_alias = alias;
  ops_[static_cast<size_t>(index)].table = table;
  ops_[static_cast<size_t>(index)].index_name = index_name;
  return index;
}

void PlanBuilder::SetEstimates(int index, double rows, double cost,
                               double pages) {
  PlanOp& op = ops_[static_cast<size_t>(index)];
  op.est_rows = rows;
  op.est_cost = cost;
  op.est_pages = pages;
}

void PlanBuilder::SetDetail(int index, std::string detail) {
  ops_[static_cast<size_t>(index)].detail = std::move(detail);
}

void PlanBuilder::SetEngineOp(int index, std::string engine_op) {
  ops_[static_cast<size_t>(index)].engine_op = std::move(engine_op);
}

Result<Plan> PlanBuilder::Build(int root_index) {
  if (root_index < 0 || root_index >= static_cast<int>(ops_.size())) {
    return Status::InvalidArgument("root index out of range");
  }
  // Validate: every op except the root has exactly one parent; all ops
  // reachable from the root.
  std::vector<int> parent_count(ops_.size(), 0);
  for (const PlanOp& op : ops_) {
    for (int c : op.children) {
      if (c < 0 || c >= static_cast<int>(ops_.size())) {
        return Status::InvalidArgument("child index out of range");
      }
      ++parent_count[static_cast<size_t>(c)];
    }
  }
  for (const PlanOp& op : ops_) {
    const int expected = (op.index == root_index) ? 0 : 1;
    if (parent_count[static_cast<size_t>(op.index)] != expected) {
      return Status::InvalidArgument(StrFormat(
          "op %d has %d parents, expected %d", op.index,
          parent_count[static_cast<size_t>(op.index)], expected));
    }
  }

  Plan plan;
  plan.query_name_ = query_name_;
  plan.ops_ = std::move(ops_);
  plan.root_ = root_index;

  // Preorder numbering: root = O1.
  int next = 1;
  std::function<void(int)> number = [&](int index) {
    plan.ops_[static_cast<size_t>(index)].op_number = next++;
    for (int c : plan.ops_[static_cast<size_t>(index)].children) number(c);
  };
  number(root_index);
  return plan;
}

}  // namespace diads::db
