#include "db/mysql_optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/strings.h"

namespace diads::db {

Status SetMysqlParamByName(MysqlParams* params, const std::string& name,
                           double value) {
  if (name == "io_block_read_cost") params->io_block_read_cost = value;
  else if (name == "memory_block_read_cost")
    params->memory_block_read_cost = value;
  else if (name == "row_evaluate_cost") params->row_evaluate_cost = value;
  else if (name == "key_compare_cost") params->key_compare_cost = value;
  else if (name == "join_buffer_mb") params->join_buffer_mb = value;
  else if (name == "sort_buffer_mb") params->sort_buffer_mb = value;
  else if (name == "tmp_table_mb") params->tmp_table_mb = value;
  else if (name == "buffer_pool_mb") params->buffer_pool_mb = value;
  else return Status::InvalidArgument("unknown parameter: " + name);
  return Status::Ok();
}

Result<double> GetMysqlParamByName(const MysqlParams& params,
                                   const std::string& name) {
  if (name == "io_block_read_cost") return params.io_block_read_cost;
  if (name == "memory_block_read_cost") return params.memory_block_read_cost;
  if (name == "row_evaluate_cost") return params.row_evaluate_cost;
  if (name == "key_compare_cost") return params.key_compare_cost;
  if (name == "join_buffer_mb") return params.join_buffer_mb;
  if (name == "sort_buffer_mb") return params.sort_buffer_mb;
  if (name == "tmp_table_mb") return params.tmp_table_mb;
  if (name == "buffer_pool_mb") return params.buffer_pool_mb;
  return Status::InvalidArgument("unknown parameter: " + name);
}

/// Internal plan node built during enumeration; flattened into a Plan at
/// the end. Shared pointers let DP states share subtrees cheaply.
struct MysqlOptimizer::Node {
  OpType type = OpType::kSeqScan;
  std::vector<std::shared_ptr<const Node>> children;
  std::string alias;
  std::string table;
  std::string index_name;
  std::string detail;
  std::string engine_op;   ///< "ALL", "range", "ref", "eq_ref", "BNL", ...
  double rows = 0;
  double cost = 0;         ///< Cumulative.
  double pages = 0;        ///< Page fetches attributable to this op itself.
  double width = 64;       ///< Bytes per output row.
};

namespace {

using NodePtr = std::shared_ptr<const MysqlOptimizer::Node>;

struct PlannerCtx {
  const Catalog* catalog;
  const MysqlParams* params;
};

double ColumnNdv(const PlannerCtx& ctx, const QuerySpec& spec,
                 const std::string& alias, const std::string& column) {
  const TableRef* ref = spec.FindAlias(alias);
  if (ref == nullptr) return 1000;
  Result<const TableDef*> table = ctx.catalog->FindTable(ref->table);
  if (!table.ok()) return 1000;
  const ColumnStats* col = (*table)->FindColumn(column);
  return col != nullptr ? std::max(1.0, col->ndv) : 1000;
}

/// Best access path for one table reference: full table scan ("ALL") vs an
/// index range scan on the filter column. Both pay the same per-page
/// io_block_read_cost — the absence of a random-access penalty is the
/// engine's defining cost-model property.
Result<NodePtr> ScanPath(const PlannerCtx& ctx, const TableRef& ref) {
  Result<const TableDef*> table_r = ctx.catalog->FindTable(ref.table);
  DIADS_RETURN_IF_ERROR(table_r.status());
  const TableDef& table = **table_r;
  const TableStats& stats = table.optimizer_stats;
  const MysqlParams& p = *ctx.params;

  const double out_rows =
      std::max(1.0, stats.row_count * ref.filter_selectivity);

  auto all = std::make_shared<MysqlOptimizer::Node>();
  all->type = OpType::kSeqScan;
  all->engine_op = "ALL";
  all->alias = ref.alias;
  all->table = ref.table;
  all->rows = out_rows;
  all->pages = std::max(1.0, stats.pages());
  all->cost = all->pages * p.io_block_read_cost +
              stats.row_count * p.row_evaluate_cost;
  all->width = stats.row_width_bytes;
  if (ref.filter_selectivity < 1.0) {
    all->detail = StrFormat("where %s, sel=%.4f",
                            ref.filter_column.empty()
                                ? "<non-indexed predicate>"
                                : ref.filter_column.c_str(),
                            ref.filter_selectivity);
  }

  NodePtr best = all;
  if (!ref.filter_column.empty()) {
    for (const IndexDef* index : ctx.catalog->IndexesOn(ref.table,
                                                        ref.filter_column)) {
      const double sel = ref.filter_selectivity;
      const double index_pages = index->height + sel * index->leaf_pages;
      const double heap_pages =
          std::min(stats.pages(),
                   sel * stats.row_count *
                       (index->clustering * 0.1 + (1.0 - index->clustering)));
      auto range = std::make_shared<MysqlOptimizer::Node>();
      range->type = OpType::kIndexScan;
      range->engine_op = "range";
      range->alias = ref.alias;
      range->table = ref.table;
      range->index_name = index->name;
      range->rows = out_rows;
      range->pages = index_pages + heap_pages;
      range->cost = (index_pages + heap_pages) * p.io_block_read_cost +
                    sel * stats.row_count * p.key_compare_cost +
                    out_rows * p.row_evaluate_cost;
      range->width = stats.row_width_bytes;
      range->detail = StrFormat("%s = ?, sel=%.4f", ref.filter_column.c_str(),
                                sel);
      if (range->cost < best->cost) best = range;
    }
  }
  return best;
}

/// The join predicate (if any) connecting `alias` to any alias in `joined`.
const JoinPredicate* FindConnection(const QuerySpec& spec,
                                    const std::vector<std::string>& joined,
                                    const std::string& alias,
                                    bool* alias_is_left) {
  for (const JoinPredicate& j : spec.joins) {
    for (const std::string& a : joined) {
      if (j.left_alias == a && j.right_alias == alias) {
        *alias_is_left = false;
        return &j;
      }
      if (j.right_alias == a && j.left_alias == alias) {
        *alias_is_left = true;
        return &j;
      }
    }
  }
  return nullptr;
}

double JoinOutputRows(const PlannerCtx& ctx, const QuerySpec& spec,
                      double outer_rows, double inner_rows,
                      const JoinPredicate& pred) {
  const double ndv_l =
      ColumnNdv(ctx, spec, pred.left_alias, pred.left_column);
  const double ndv_r =
      ColumnNdv(ctx, spec, pred.right_alias, pred.right_column);
  return std::max(1.0, outer_rows * inner_rows / std::max(ndv_l, ndv_r));
}

/// Index nested loop: the engine's preferred join. "eq_ref" when the inner
/// index is unique (at most one row per probe), "ref" otherwise.
Result<NodePtr> MakeIndexNestLoop(const PlannerCtx& ctx,
                                  const QuerySpec& spec, const NodePtr& outer,
                                  const TableRef& inner_ref,
                                  const JoinPredicate& pred,
                                  const std::string& inner_join_column,
                                  double out_rows) {
  const MysqlParams& p = *ctx.params;
  std::vector<const IndexDef*> indexes =
      ctx.catalog->IndexesOn(inner_ref.table, inner_join_column);
  if (indexes.empty()) {
    return Status::NotFound("no index on " + inner_ref.table + "." +
                            inner_join_column);
  }
  const IndexDef* index = indexes.front();
  Result<const TableDef*> table_r = ctx.catalog->FindTable(inner_ref.table);
  DIADS_RETURN_IF_ERROR(table_r.status());
  const TableStats& stats = (*table_r)->optimizer_stats;

  const double ndv = ColumnNdv(
      ctx, spec, pred.left_alias == inner_ref.alias ? pred.left_alias
                                                    : pred.right_alias,
      inner_join_column);
  const double matches_per_probe =
      index->unique
          ? std::min(1.0, stats.row_count * inner_ref.filter_selectivity /
                              std::max(1.0, ndv))
          : std::max(0.1, stats.row_count * inner_ref.filter_selectivity /
                              std::max(1.0, ndv));
  const double probes = std::max(1.0, outer->rows);

  // Per probe: a partially cached B-tree descent plus heap fetches, all at
  // the flat io_block_read_cost.
  const double pages_per_probe =
      0.5 * index->height +
      matches_per_probe * (index->clustering * 0.15 +
                           (1.0 - index->clustering) * 1.0);
  const double cost_per_probe =
      pages_per_probe * p.io_block_read_cost +
      index->height * p.key_compare_cost +
      matches_per_probe * p.row_evaluate_cost;

  auto inner = std::make_shared<MysqlOptimizer::Node>();
  inner->type = OpType::kIndexScan;
  inner->engine_op = index->unique ? "eq_ref" : "ref";
  inner->alias = inner_ref.alias;
  inner->table = inner_ref.table;
  inner->index_name = index->name;
  // matches_per_probe already reflects the inner table's local filter.
  inner->rows = probes * matches_per_probe;
  inner->pages = probes * pages_per_probe;
  inner->cost = probes * cost_per_probe;
  inner->width = stats.row_width_bytes;
  inner->detail = StrFormat("%s = outer, ~%.1f rows/probe",
                            inner_join_column.c_str(), matches_per_probe);

  auto join = std::make_shared<MysqlOptimizer::Node>();
  join->type = OpType::kNestLoopJoin;
  join->engine_op = "nested loop";
  join->children = {outer, inner};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + inner->cost + out_rows * p.row_evaluate_cost;
  join->detail = StrFormat("%s.%s = %s.%s", pred.left_alias.c_str(),
                           pred.left_column.c_str(), pred.right_alias.c_str(),
                           pred.right_column.c_str());
  return NodePtr(join);
}

/// Block nested loop: the no-usable-index fallback. The inner side is
/// rescanned once per join-buffer chunk of the outer, and every
/// (outer, inner) pair pays a row comparison — the quadratic CPU term that
/// makes BNL a last resort.
NodePtr MakeBlockNestLoop(const PlannerCtx& ctx, const NodePtr& outer,
                          const NodePtr& inner, const std::string& detail,
                          double out_rows) {
  const MysqlParams& p = *ctx.params;
  const double buffer_bytes = std::max(64.0 * 1024.0,
                                       p.join_buffer_mb * 1024.0 * 1024.0);
  const double chunks =
      std::max(1.0, std::ceil(outer->rows * outer->width / buffer_bytes));

  auto buffered = std::make_shared<MysqlOptimizer::Node>();
  buffered->type = OpType::kMaterialize;
  buffered->engine_op = "join buffer";
  buffered->children = {inner};
  buffered->rows = inner->rows;
  buffered->width = inner->width;
  // The rescans: the inner subtree's own cost counts once (in inner->cost);
  // every additional chunk re-reads the inner's pages.
  buffered->pages = (chunks - 1.0) * inner->pages;
  buffered->cost = inner->cost +
                   (chunks - 1.0) * inner->pages * p.io_block_read_cost +
                   inner->rows * p.row_evaluate_cost;
  buffered->detail = StrFormat("%.0f chunk(s)", chunks);

  auto join = std::make_shared<MysqlOptimizer::Node>();
  join->type = OpType::kNestLoopJoin;
  join->engine_op = "BNL";
  join->children = {outer, buffered};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + buffered->cost +
               outer->rows * inner->rows * p.row_evaluate_cost * 0.1 +
               out_rows * p.row_evaluate_cost;
  join->detail = detail;
  return join;
}

NodePtr MakeFilesort(const PlannerCtx& ctx, const NodePtr& input,
                     const std::string& detail) {
  const MysqlParams& p = *ctx.params;
  auto sort = std::make_shared<MysqlOptimizer::Node>();
  sort->type = OpType::kSort;
  sort->engine_op = "filesort";
  sort->children = {input};
  sort->rows = input->rows;
  sort->width = input->width;
  const double n = std::max(2.0, input->rows);
  double cost = n * std::log2(n) * p.key_compare_cost;
  const double bytes = input->rows * input->width;
  if (bytes > p.sort_buffer_mb * 1024 * 1024) {
    // Merge passes over tmp files, charged at the flat I/O cost.
    sort->pages = 2.0 * bytes / kPageSizeBytes;
    cost += sort->pages * p.io_block_read_cost;
  }
  sort->cost = input->cost + cost;
  sort->detail = detail;
  return sort;
}

/// Plans one query block (no subquery handling) with left-deep DP over
/// INL/BNL candidates.
Result<NodePtr> PlanBlock(const PlannerCtx& ctx, const QuerySpec& spec) {
  if (spec.tables.empty()) {
    return Status::InvalidArgument("query block has no tables");
  }
  if (spec.tables.size() > 16) {
    return Status::InvalidArgument("too many tables in block (max 16)");
  }
  const size_t n = spec.tables.size();

  struct DpState {
    NodePtr node;
    std::vector<std::string> aliases;
  };
  std::map<uint32_t, DpState> dp;

  for (size_t i = 0; i < n; ++i) {
    Result<NodePtr> scan = ScanPath(ctx, spec.tables[i]);
    DIADS_RETURN_IF_ERROR(scan.status());
    dp[1u << i] = DpState{*scan, {spec.tables[i].alias}};
  }

  for (size_t size = 1; size < n; ++size) {
    std::vector<uint32_t> masks;
    for (const auto& [mask, state] : dp) {
      if (static_cast<size_t>(__builtin_popcount(mask)) == size) {
        masks.push_back(mask);
      }
    }
    for (uint32_t mask : masks) {
      const DpState& outer_state = dp[mask];
      // A cartesian extension is allowed only when nothing better exists:
      // no remaining table joins this subset (disconnected join graph, or
      // no predicates at all).
      bool any_connected = false;
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        bool unused = false;
        if (FindConnection(spec, outer_state.aliases, spec.tables[i].alias,
                           &unused) != nullptr) {
          any_connected = true;
        }
      }
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        const TableRef& inner_ref = spec.tables[i];
        // The singleton states already hold each table's best access path.
        const NodePtr& inner_scan = dp[1u << i].node;
        bool inner_is_left = false;
        const JoinPredicate* pred = FindConnection(
            spec, outer_state.aliases, inner_ref.alias, &inner_is_left);
        NodePtr candidate;
        if (pred != nullptr) {
          const double out_rows =
              JoinOutputRows(ctx, spec, outer_state.node->rows,
                             inner_scan->rows, *pred);
          const std::string join_detail =
              StrFormat("%s.%s = %s.%s", pred->left_alias.c_str(),
                        pred->left_column.c_str(), pred->right_alias.c_str(),
                        pred->right_column.c_str());
          // Block nested loop is always available...
          candidate = MakeBlockNestLoop(ctx, outer_state.node, inner_scan,
                                        join_detail, out_rows);
          // ...but an index on the inner join column beats it essentially
          // always (the index-nested-loop bias).
          const std::string inner_col =
              inner_is_left ? pred->left_column : pred->right_column;
          Result<NodePtr> inl = MakeIndexNestLoop(
              ctx, spec, outer_state.node, inner_ref, *pred, inner_col,
              out_rows);
          if (inl.ok() && (*inl)->cost < candidate->cost) candidate = *inl;
        } else if (!any_connected) {
          candidate = MakeBlockNestLoop(
              ctx, outer_state.node, inner_scan, "cartesian",
              outer_state.node->rows * inner_scan->rows);
        } else {
          continue;
        }
        const uint32_t new_mask = mask | (1u << i);
        auto it = dp.find(new_mask);
        if (it == dp.end() || candidate->cost < it->second.node->cost) {
          DpState state;
          state.node = candidate;
          state.aliases = outer_state.aliases;
          state.aliases.push_back(inner_ref.alias);
          dp[new_mask] = std::move(state);
        }
      }
    }
  }

  const uint32_t full = n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
  auto it = dp.find(full);
  if (it == dp.end()) {
    return Status::Internal("join enumeration failed to cover all tables");
  }
  NodePtr result = it->second.node;

  if (spec.aggregate) {
    const MysqlParams& p = *ctx.params;
    auto agg = std::make_shared<MysqlOptimizer::Node>();
    agg->type = OpType::kAggregate;
    agg->engine_op = "tmp table";
    agg->children = {result};
    const double groups = std::min(
        result->rows,
        ColumnNdv(ctx, spec, spec.agg_group_alias, spec.agg_group_column));
    agg->rows = std::max(1.0, groups);
    agg->width = result->width;
    double cost = result->rows * p.row_evaluate_cost +
                  agg->rows * p.row_evaluate_cost;
    const double bytes = agg->rows * agg->width;
    if (bytes > p.tmp_table_mb * 1024 * 1024) {
      agg->pages = 2.0 * bytes / kPageSizeBytes;
      cost += agg->pages * p.io_block_read_cost;
    }
    agg->cost = result->cost + cost;
    agg->detail = StrFormat("group by %s.%s", spec.agg_group_alias.c_str(),
                            spec.agg_group_column.c_str());
    result = agg;
  }
  return result;
}

}  // namespace

MysqlOptimizer::MysqlOptimizer(const Catalog* catalog, MysqlParams params)
    : catalog_(catalog), params_(params) {
  assert(catalog != nullptr);
}

Result<Plan> MysqlOptimizer::Optimize(const QuerySpec& spec) const {
  PlannerCtx ctx{catalog_, &params_};

  Result<NodePtr> main_r = PlanBlock(ctx, spec);
  DIADS_RETURN_IF_ERROR(main_r.status());
  NodePtr root = *main_r;

  if (spec.subplan != nullptr) {
    // Derived-table materialisation with an auto-generated lookup key: the
    // subquery block is evaluated once into a temp table, and the main
    // block probes it per row through auto_key0.
    Result<NodePtr> sub_r = PlanBlock(ctx, *spec.subplan);
    DIADS_RETURN_IF_ERROR(sub_r.status());
    const MysqlParams& p = params_;

    auto mat = std::make_shared<Node>();
    mat->type = OpType::kMaterialize;
    mat->engine_op = "materialize derived";
    mat->children = {*sub_r};
    mat->rows = (*sub_r)->rows;
    mat->width = (*sub_r)->width;
    double mat_cost = (*sub_r)->rows * p.row_evaluate_cost;
    const double bytes = mat->rows * mat->width;
    if (bytes > p.tmp_table_mb * 1024 * 1024) {
      mat->pages = 2.0 * bytes / kPageSizeBytes;
      mat_cost += mat->pages * p.io_block_read_cost;
    }
    mat->cost = (*sub_r)->cost + mat_cost;
    mat->detail = "temp table with auto_key0";

    const double out_rows =
        std::max(1.0, root->rows * spec.subplan_join_selectivity);
    auto join = std::make_shared<Node>();
    join->type = OpType::kNestLoopJoin;
    join->engine_op = "ref<auto_key0>";
    join->children = {root, mat};
    join->rows = out_rows;
    join->width = root->width + mat->width;
    join->cost = root->cost + mat->cost +
                 root->rows * (p.key_compare_cost * 2 + p.row_evaluate_cost) +
                 out_rows * p.row_evaluate_cost;
    join->detail = StrFormat(
        "%s.%s = %s.%s", spec.subplan_join.left_alias.c_str(),
        spec.subplan_join.left_column.c_str(),
        spec.subplan_join.right_alias.c_str(),
        spec.subplan_join.right_column.c_str());
    root = join;
  }

  if (spec.sort) {
    root = MakeFilesort(ctx, root, "order by result keys");
  }
  if (spec.limit > 0) {
    auto limit = std::make_shared<Node>();
    limit->type = OpType::kLimit;
    limit->engine_op = "limit";
    limit->children = {root};
    limit->rows = std::min<double>(spec.limit, root->rows);
    limit->width = root->width;
    limit->cost = root->cost;
    limit->detail = StrFormat("limit %d", spec.limit);
    root = limit;
  }
  auto result_node = std::make_shared<Node>();
  result_node->type = OpType::kResult;
  result_node->children = {root};
  result_node->rows = root->rows;
  result_node->width = root->width;
  result_node->cost = root->cost;
  root = result_node;

  // Flatten the node tree into a Plan (children added before parents).
  PlanBuilder builder(spec.name);
  std::function<int(const NodePtr&)> emit = [&](const NodePtr& node) -> int {
    std::vector<int> children;
    children.reserve(node->children.size());
    for (const NodePtr& child : node->children) children.push_back(emit(child));
    int index;
    if (node->type == OpType::kSeqScan || node->type == OpType::kIndexScan) {
      assert(children.empty());
      index = builder.AddScan(node->type, node->alias, node->table,
                              node->index_name);
      builder.SetDetail(index, node->detail);
    } else {
      index = builder.AddOp(node->type, children, node->detail);
    }
    builder.SetEstimates(index, node->rows, node->cost, node->pages);
    builder.SetEngineOp(index, node->engine_op);
    return index;
  };
  const int root_index = emit(root);
  return builder.Build(root_index);
}

}  // namespace diads::db
