#include "db/optimizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <functional>
#include <map>

#include "common/strings.h"

namespace diads::db {

Status SetParamByName(DbParams* params, const std::string& name,
                      double value) {
  if (name == "seq_page_cost") params->seq_page_cost = value;
  else if (name == "random_page_cost") params->random_page_cost = value;
  else if (name == "cpu_tuple_cost") params->cpu_tuple_cost = value;
  else if (name == "cpu_index_tuple_cost") params->cpu_index_tuple_cost = value;
  else if (name == "cpu_operator_cost") params->cpu_operator_cost = value;
  else if (name == "work_mem_mb") params->work_mem_mb = value;
  else if (name == "buffer_pool_mb") params->buffer_pool_mb = value;
  else if (name == "effective_cache_mb") params->effective_cache_mb = value;
  else return Status::InvalidArgument("unknown parameter: " + name);
  return Status::Ok();
}

Result<double> GetParamByName(const DbParams& params, const std::string& name) {
  if (name == "seq_page_cost") return params.seq_page_cost;
  if (name == "random_page_cost") return params.random_page_cost;
  if (name == "cpu_tuple_cost") return params.cpu_tuple_cost;
  if (name == "cpu_index_tuple_cost") return params.cpu_index_tuple_cost;
  if (name == "cpu_operator_cost") return params.cpu_operator_cost;
  if (name == "work_mem_mb") return params.work_mem_mb;
  if (name == "buffer_pool_mb") return params.buffer_pool_mb;
  if (name == "effective_cache_mb") return params.effective_cache_mb;
  return Status::InvalidArgument("unknown parameter: " + name);
}

/// Internal plan node built during enumeration; flattened into a Plan at the
/// end. Shared pointers let DP states share subtrees cheaply.
struct Optimizer::Node {
  OpType type = OpType::kSeqScan;
  std::vector<std::shared_ptr<const Node>> children;
  std::string alias;
  std::string table;
  std::string index_name;
  std::string detail;
  double rows = 0;
  double cost = 0;      ///< Cumulative.
  double pages = 0;     ///< Page fetches attributable to this op itself.
  double width = 64;    ///< Bytes per output row (for memory estimates).
};

namespace {

using NodePtr = std::shared_ptr<const Optimizer::Node>;

struct PlannerCtx {
  const Catalog* catalog;
  const DbParams* params;
};

double ColumnNdv(const PlannerCtx& ctx, const QuerySpec& spec,
                 const std::string& alias, const std::string& column) {
  const TableRef* ref = spec.FindAlias(alias);
  if (ref == nullptr) return 1000;
  Result<const TableDef*> table = ctx.catalog->FindTable(ref->table);
  if (!table.ok()) return 1000;
  const ColumnStats* col = (*table)->FindColumn(column);
  return col != nullptr ? std::max(1.0, col->ndv) : 1000;
}

/// Best access path for one table reference.
Result<NodePtr> ScanPath(const PlannerCtx& ctx, const TableRef& ref) {
  Result<const TableDef*> table_r = ctx.catalog->FindTable(ref.table);
  DIADS_RETURN_IF_ERROR(table_r.status());
  const TableDef& table = **table_r;
  const TableStats& stats = table.optimizer_stats;
  const DbParams& p = *ctx.params;

  const double out_rows =
      std::max(1.0, stats.row_count * ref.filter_selectivity);

  auto seq = std::make_shared<Optimizer::Node>();
  seq->type = OpType::kSeqScan;
  seq->alias = ref.alias;
  seq->table = ref.table;
  seq->rows = out_rows;
  seq->pages = std::max(1.0, stats.pages());
  seq->cost = seq->pages * p.seq_page_cost +
              stats.row_count * p.cpu_tuple_cost;
  seq->width = stats.row_width_bytes;
  if (ref.filter_selectivity < 1.0) {
    seq->detail = StrFormat("filter on %s, sel=%.4f",
                            ref.filter_column.empty()
                                ? "<non-indexed predicate>"
                                : ref.filter_column.c_str(),
                            ref.filter_selectivity);
  }

  NodePtr best = seq;
  if (!ref.filter_column.empty()) {
    for (const IndexDef* index : ctx.catalog->IndexesOn(ref.table,
                                                        ref.filter_column)) {
      const double sel = ref.filter_selectivity;
      const double index_pages = index->height + sel * index->leaf_pages;
      // Heap fetches: clustered index ranges touch few pages; unclustered
      // ones pay a random page per row (capped by the table size).
      const double heap_pages =
          std::min(stats.pages(),
                   sel * stats.row_count *
                       (index->clustering * 0.1 + (1.0 - index->clustering)));
      auto idx = std::make_shared<Optimizer::Node>();
      idx->type = OpType::kIndexScan;
      idx->alias = ref.alias;
      idx->table = ref.table;
      idx->index_name = index->name;
      idx->rows = out_rows;
      idx->pages = index_pages + heap_pages;
      idx->cost = (index_pages + heap_pages) * p.random_page_cost +
                  sel * stats.row_count * p.cpu_index_tuple_cost +
                  out_rows * p.cpu_tuple_cost;
      idx->width = stats.row_width_bytes;
      idx->detail = StrFormat("%s = ?, sel=%.4f", ref.filter_column.c_str(),
                              sel);
      if (idx->cost < best->cost) best = idx;
    }
  }
  return best;
}

/// The join predicate (if any) connecting `alias` to any alias in `joined`.
const JoinPredicate* FindConnection(const QuerySpec& spec,
                                    const std::vector<std::string>& joined,
                                    const std::string& alias,
                                    bool* alias_is_left) {
  for (const JoinPredicate& j : spec.joins) {
    for (const std::string& a : joined) {
      if (j.left_alias == a && j.right_alias == alias) {
        *alias_is_left = false;
        return &j;
      }
      if (j.right_alias == a && j.left_alias == alias) {
        *alias_is_left = true;
        return &j;
      }
    }
  }
  return nullptr;
}

double JoinOutputRows(const PlannerCtx& ctx, const QuerySpec& spec,
                      double outer_rows, double inner_rows,
                      const JoinPredicate& pred) {
  const double ndv_l =
      ColumnNdv(ctx, spec, pred.left_alias, pred.left_column);
  const double ndv_r =
      ColumnNdv(ctx, spec, pred.right_alias, pred.right_column);
  return std::max(1.0, outer_rows * inner_rows / std::max(ndv_l, ndv_r));
}

/// Hash join: HashJoin(outer, Hash(inner)).
NodePtr MakeHashJoin(const PlannerCtx& ctx, const NodePtr& outer,
                     const NodePtr& inner, const JoinPredicate& pred,
                     double out_rows) {
  const DbParams& p = *ctx.params;
  auto hash = std::make_shared<Optimizer::Node>();
  hash->type = OpType::kHash;
  hash->children = {inner};
  hash->rows = inner->rows;
  hash->width = inner->width;
  double build_cost = inner->rows * p.cpu_operator_cost * 1.5;
  // Multi-batch penalty when the build side exceeds work_mem.
  const double build_mb = inner->rows * inner->width / (1024.0 * 1024.0);
  double spill_pages = 0;
  if (build_mb > p.work_mem_mb) {
    spill_pages = 2.0 * build_mb * 1024.0 * 1024.0 / kPageSizeBytes;
    build_cost += spill_pages * p.seq_page_cost;
  }
  hash->cost = inner->cost + build_cost;
  hash->pages = spill_pages;
  hash->detail = StrFormat("build %s", inner->alias.c_str());

  auto join = std::make_shared<Optimizer::Node>();
  join->type = OpType::kHashJoin;
  join->children = {outer, hash};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + hash->cost +
               outer->rows * p.cpu_operator_cost +
               out_rows * p.cpu_tuple_cost;
  join->detail = StrFormat("%s.%s = %s.%s", pred.left_alias.c_str(),
                           pred.left_column.c_str(), pred.right_alias.c_str(),
                           pred.right_column.c_str());
  return join;
}

/// Nested loop with an index probe on the inner table's join column.
Result<NodePtr> MakeIndexNestLoop(const PlannerCtx& ctx, const QuerySpec& spec,
                                  const NodePtr& outer, const TableRef& inner_ref,
                                  const JoinPredicate& pred,
                                  const std::string& inner_join_column,
                                  double out_rows) {
  const DbParams& p = *ctx.params;
  std::vector<const IndexDef*> indexes =
      ctx.catalog->IndexesOn(inner_ref.table, inner_join_column);
  if (indexes.empty()) {
    return Status::NotFound("no index on " + inner_ref.table + "." +
                            inner_join_column);
  }
  const IndexDef* index = indexes.front();
  Result<const TableDef*> table_r = ctx.catalog->FindTable(inner_ref.table);
  DIADS_RETURN_IF_ERROR(table_r.status());
  const TableStats& stats = (*table_r)->optimizer_stats;

  const double ndv = ColumnNdv(
      ctx, spec, pred.left_alias == inner_ref.alias ? pred.left_alias
                                                    : pred.right_alias,
      inner_join_column);
  const double matches_per_probe =
      std::max(0.1, stats.row_count * inner_ref.filter_selectivity / ndv);
  const double probes = std::max(1.0, outer->rows);

  // Per-probe: descend the B-tree, then fetch matching heap rows. Repeated
  // probes hit cached upper levels; charge a fraction of the root-to-leaf
  // descent plus clustered heap fetches.
  const double pages_per_probe =
      0.5 * index->height +
      matches_per_probe * (index->clustering * 0.15 +
                           (1.0 - index->clustering) * 1.0);
  const double cost_per_probe =
      pages_per_probe * p.random_page_cost +
      matches_per_probe * (p.cpu_index_tuple_cost + p.cpu_tuple_cost);

  auto inner = std::make_shared<Optimizer::Node>();
  inner->type = OpType::kIndexScan;
  inner->alias = inner_ref.alias;
  inner->table = inner_ref.table;
  inner->index_name = index->name;
  inner->rows = probes * matches_per_probe * inner_ref.filter_selectivity;
  inner->pages = probes * pages_per_probe;
  inner->cost = probes * cost_per_probe;
  inner->width = stats.row_width_bytes;
  inner->detail = StrFormat("%s = outer, ~%.1f rows/probe",
                            inner_join_column.c_str(), matches_per_probe);

  auto join = std::make_shared<Optimizer::Node>();
  join->type = OpType::kNestLoopJoin;
  join->children = {outer, inner};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + inner->cost + out_rows * p.cpu_tuple_cost;
  join->detail = StrFormat("%s.%s = %s.%s", pred.left_alias.c_str(),
                           pred.left_column.c_str(), pred.right_alias.c_str(),
                           pred.right_column.c_str());
  return NodePtr(join);
}

/// Naive nested loop over a materialized inner (fallback when nothing
/// better exists; rarely wins on cost).
NodePtr MakeMaterializedNestLoop(const PlannerCtx& ctx, const NodePtr& outer,
                                 const NodePtr& inner,
                                 const std::string& detail, double out_rows) {
  const DbParams& p = *ctx.params;
  auto mat = std::make_shared<Optimizer::Node>();
  mat->type = OpType::kMaterialize;
  mat->children = {inner};
  mat->rows = inner->rows;
  mat->width = inner->width;
  mat->cost = inner->cost + inner->rows * p.cpu_operator_cost;

  auto join = std::make_shared<Optimizer::Node>();
  join->type = OpType::kNestLoopJoin;
  join->children = {outer, mat};
  join->rows = out_rows;
  join->width = outer->width + inner->width;
  join->cost = outer->cost + mat->cost +
               outer->rows * inner->rows * p.cpu_operator_cost +
               out_rows * p.cpu_tuple_cost;
  join->detail = detail;
  return join;
}

NodePtr MakeSort(const PlannerCtx& ctx, const NodePtr& input,
                 const std::string& detail) {
  const DbParams& p = *ctx.params;
  auto sort = std::make_shared<Optimizer::Node>();
  sort->type = OpType::kSort;
  sort->children = {input};
  sort->rows = input->rows;
  sort->width = input->width;
  const double n = std::max(2.0, input->rows);
  double cost = 2.0 * n * std::log2(n) * p.cpu_operator_cost;
  const double bytes = input->rows * input->width;
  if (bytes > p.work_mem_mb * 1024 * 1024) {
    // External merge sort: write + read one full pass.
    sort->pages = 2.0 * bytes / kPageSizeBytes;
    cost += sort->pages * p.seq_page_cost;
  }
  sort->cost = input->cost + cost;
  sort->detail = detail;
  return sort;
}

/// Plans one query block (no subplan handling) via left-deep DP.
Result<NodePtr> PlanBlock(const PlannerCtx& ctx, const QuerySpec& spec) {
  if (spec.tables.empty()) {
    return Status::InvalidArgument("query block has no tables");
  }
  if (spec.tables.size() > 16) {
    return Status::InvalidArgument("too many tables in block (max 16)");
  }
  const size_t n = spec.tables.size();

  struct DpState {
    NodePtr node;
    std::vector<std::string> aliases;
  };
  std::map<uint32_t, DpState> dp;

  // Singletons.
  for (size_t i = 0; i < n; ++i) {
    Result<NodePtr> scan = ScanPath(ctx, spec.tables[i]);
    DIADS_RETURN_IF_ERROR(scan.status());
    dp[1u << i] = DpState{*scan, {spec.tables[i].alias}};
  }

  // Left-deep extension in increasing subset-population order.
  for (size_t size = 1; size < n; ++size) {
    // Snapshot keys of states with `size` members.
    std::vector<uint32_t> masks;
    for (const auto& [mask, state] : dp) {
      if (static_cast<size_t>(__builtin_popcount(mask)) == size) {
        masks.push_back(mask);
      }
    }
    for (uint32_t mask : masks) {
      const DpState& outer_state = dp[mask];
      for (size_t i = 0; i < n; ++i) {
        if (mask & (1u << i)) continue;
        const TableRef& inner_ref = spec.tables[i];
        bool inner_is_left = false;
        const JoinPredicate* pred = FindConnection(
            spec, outer_state.aliases, inner_ref.alias, &inner_is_left);
        NodePtr candidate;
        if (pred != nullptr) {
          Result<NodePtr> inner_scan = ScanPath(ctx, inner_ref);
          DIADS_RETURN_IF_ERROR(inner_scan.status());
          const double out_rows =
              JoinOutputRows(ctx, spec, outer_state.node->rows,
                             (*inner_scan)->rows, *pred);
          // Hash join candidate.
          candidate = MakeHashJoin(ctx, outer_state.node, *inner_scan, *pred,
                                   out_rows);
          // Index nested-loop candidate.
          const std::string inner_col =
              inner_is_left ? pred->left_column : pred->right_column;
          Result<NodePtr> inl = MakeIndexNestLoop(
              ctx, spec, outer_state.node, inner_ref, *pred, inner_col,
              out_rows);
          if (inl.ok() && (*inl)->cost < candidate->cost) candidate = *inl;
          // Materialized nested loop candidate.
          NodePtr mnl = MakeMaterializedNestLoop(
              ctx, outer_state.node, *inner_scan,
              StrFormat("%s.%s = %s.%s", pred->left_alias.c_str(),
                        pred->left_column.c_str(), pred->right_alias.c_str(),
                        pred->right_column.c_str()),
              out_rows);
          if (mnl->cost < candidate->cost) candidate = mnl;
        } else if (size == n - 1 ||
                   spec.joins.empty()) {
          // Cartesian fallback only when unavoidable.
          Result<NodePtr> inner_scan = ScanPath(ctx, inner_ref);
          DIADS_RETURN_IF_ERROR(inner_scan.status());
          candidate = MakeMaterializedNestLoop(
              ctx, outer_state.node, *inner_scan, "cartesian",
              outer_state.node->rows * (*inner_scan)->rows);
        } else {
          continue;
        }
        const uint32_t new_mask = mask | (1u << i);
        auto it = dp.find(new_mask);
        if (it == dp.end() || candidate->cost < it->second.node->cost) {
          DpState state;
          state.node = candidate;
          state.aliases = outer_state.aliases;
          state.aliases.push_back(inner_ref.alias);
          dp[new_mask] = std::move(state);
        }
      }
    }
  }

  const uint32_t full = n == 32 ? 0xFFFFFFFFu : ((1u << n) - 1);
  auto it = dp.find(full);
  if (it == dp.end()) {
    return Status::Internal("join enumeration failed to cover all tables");
  }
  NodePtr result = it->second.node;

  if (spec.aggregate) {
    const DbParams& p = *ctx.params;
    auto agg = std::make_shared<Optimizer::Node>();
    agg->type = OpType::kAggregate;
    agg->children = {result};
    const double groups = std::min(
        result->rows,
        ColumnNdv(ctx, spec, spec.agg_group_alias, spec.agg_group_column));
    agg->rows = std::max(1.0, groups);
    agg->width = result->width;
    agg->cost = result->cost + result->rows * p.cpu_operator_cost +
                agg->rows * p.cpu_tuple_cost;
    agg->detail = StrFormat("group by %s.%s", spec.agg_group_alias.c_str(),
                            spec.agg_group_column.c_str());
    result = agg;
  }
  return result;
}

}  // namespace

Optimizer::Optimizer(const Catalog* catalog, DbParams params)
    : catalog_(catalog), params_(params) {
  assert(catalog != nullptr);
}

Result<Plan> Optimizer::Optimize(const QuerySpec& spec) const {
  PlannerCtx ctx{catalog_, &params_};

  Result<NodePtr> main_r = PlanBlock(ctx, spec);
  DIADS_RETURN_IF_ERROR(main_r.status());
  NodePtr root = *main_r;

  if (spec.subplan != nullptr) {
    Result<NodePtr> sub_r = PlanBlock(ctx, *spec.subplan);
    DIADS_RETURN_IF_ERROR(sub_r.status());
    const double out_rows =
        std::max(1.0, root->rows * spec.subplan_join_selectivity);
    root = MakeHashJoin(ctx, root, *sub_r, spec.subplan_join, out_rows);
  }

  if (spec.sort) {
    root = MakeSort(ctx, root, "order by result keys");
  }
  if (spec.limit > 0) {
    auto limit = std::make_shared<Node>();
    limit->type = OpType::kLimit;
    limit->children = {root};
    limit->rows = std::min<double>(spec.limit, root->rows);
    limit->width = root->width;
    limit->cost = root->cost;
    limit->detail = StrFormat("limit %d", spec.limit);
    root = limit;
  }
  auto result_node = std::make_shared<Node>();
  result_node->type = OpType::kResult;
  result_node->children = {root};
  result_node->rows = root->rows;
  result_node->width = root->width;
  result_node->cost = root->cost;
  root = result_node;

  // Flatten the node tree into a Plan (children added before parents).
  PlanBuilder builder(spec.name);
  std::function<int(const NodePtr&)> emit = [&](const NodePtr& node) -> int {
    std::vector<int> children;
    children.reserve(node->children.size());
    for (const NodePtr& child : node->children) children.push_back(emit(child));
    int index;
    if (node->type == OpType::kSeqScan || node->type == OpType::kIndexScan) {
      assert(children.empty());
      index = builder.AddScan(node->type, node->alias, node->table,
                              node->index_name);
      builder.SetDetail(index, node->detail);
    } else {
      index = builder.AddOp(node->type, children, node->detail);
    }
    builder.SetEstimates(index, node->rows, node->cost, node->pages);
    return index;
  };
  const int root_index = emit(root);
  return builder.Build(root_index);
}

}  // namespace diads::db
