#include "db/catalog.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/strings.h"

namespace diads::db {

const char* StorageModeName(StorageMode mode) {
  switch (mode) {
    case StorageMode::kSystemManaged:
      return "SMS";
    case StorageMode::kDatabaseManaged:
      return "DMS";
  }
  return "?";
}

const ColumnStats* TableDef::FindColumn(const std::string& column) const {
  for (const ColumnStats& c : columns) {
    if (c.name == column) return &c;
  }
  return nullptr;
}

Catalog::Catalog(ComponentRegistry* registry, EventLog* event_log)
    : registry_(registry), event_log_(event_log) {
  assert(registry != nullptr);
}

Status Catalog::LogEvent(SimTimeMs t, EventType type, ComponentId subject,
                         std::string description,
                         std::map<std::string, std::string> attrs) {
  if (event_log_ == nullptr) return Status::Ok();
  SystemEvent event;
  event.time = t;
  event.type = type;
  event.subject = subject;
  event.description = std::move(description);
  event.attrs = std::move(attrs);
  return event_log_->Append(std::move(event));
}

Status Catalog::AddTablespace(const std::string& name, ComponentId volume,
                              StorageMode mode) {
  if (tablespaces_.count(name)) {
    return Status::AlreadyExists("tablespace exists: " + name);
  }
  Result<ComponentId> id =
      registry_->Register(ComponentKind::kTablespace, "tablespace:" + name);
  DIADS_RETURN_IF_ERROR(id.status());
  TablespaceDef def;
  def.id = *id;
  def.name = name;
  def.volume = volume;
  def.mode = mode;
  tablespaces_.emplace(name, std::move(def));
  tablespace_order_.push_back(name);
  return Status::Ok();
}

Status Catalog::AddTable(const std::string& name,
                         const std::string& tablespace, TableStats stats,
                         std::vector<ColumnStats> columns) {
  if (tables_.count(name)) {
    return Status::AlreadyExists("table exists: " + name);
  }
  if (!tablespaces_.count(tablespace)) {
    return Status::NotFound("no tablespace named: " + tablespace);
  }
  Result<ComponentId> id =
      registry_->Register(ComponentKind::kTable, "table:" + name);
  DIADS_RETURN_IF_ERROR(id.status());
  TableDef def;
  def.id = *id;
  def.name = name;
  def.tablespace = tablespace;
  def.optimizer_stats = stats;
  def.actual_stats = stats;
  def.columns = std::move(columns);
  tables_.emplace(name, std::move(def));
  table_order_.push_back(name);
  return Status::Ok();
}

Status Catalog::AddIndex(const std::string& index_name,
                         const std::string& table, const std::string& column,
                         bool unique, double clustering) {
  if (indexes_.count(index_name)) {
    return Status::AlreadyExists("index exists: " + index_name);
  }
  auto table_it = tables_.find(table);
  if (table_it == tables_.end()) {
    return Status::NotFound("no table named: " + table);
  }
  if (table_it->second.FindColumn(column) == nullptr) {
    return Status::NotFound(
        StrFormat("table '%s' has no column '%s'", table.c_str(),
                  column.c_str()));
  }
  Result<ComponentId> id =
      registry_->Register(ComponentKind::kIndex, "index:" + index_name);
  DIADS_RETURN_IF_ERROR(id.status());
  IndexDef def;
  def.id = *id;
  def.name = index_name;
  def.table = table;
  def.column = column;
  def.unique = unique;
  def.clustering = clustering;
  // Size the B-tree from the table: ~200 entries per leaf page.
  const double rows = table_it->second.actual_stats.row_count;
  def.leaf_pages = std::max(1.0, rows / 200.0);
  def.height = rows > 0 ? std::max(1, static_cast<int>(
                                          std::ceil(std::log(rows) / std::log(200.0))))
                        : 1;
  indexes_.emplace(index_name, std::move(def));
  return Status::Ok();
}

Status Catalog::DropIndex(SimTimeMs t, const std::string& index_name) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named: " + index_name);
  }
  if (it->second.dropped) {
    return Status::FailedPrecondition("index already dropped: " + index_name);
  }
  it->second.dropped = true;
  return LogEvent(t, EventType::kIndexDropped, it->second.id,
                  StrFormat("index '%s' on %s(%s) dropped", index_name.c_str(),
                            it->second.table.c_str(),
                            it->second.column.c_str()),
                  {{"index", index_name}});
}

Status Catalog::RecreateIndex(SimTimeMs t, const std::string& index_name) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named: " + index_name);
  }
  if (!it->second.dropped) {
    return Status::FailedPrecondition("index not dropped: " + index_name);
  }
  it->second.dropped = false;
  return LogEvent(t, EventType::kIndexCreated, it->second.id,
                  StrFormat("index '%s' re-created", index_name.c_str()),
                  {{"index", index_name}});
}

Status Catalog::ApplyDml(SimTimeMs t, const std::string& table, double factor,
                         const std::string& description) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + table);
  }
  if (factor <= 0) {
    return Status::InvalidArgument("DML factor must be positive");
  }
  it->second.actual_stats.row_count *= factor;
  return LogEvent(t, EventType::kDmlBatch, it->second.id,
                  description.empty()
                      ? StrFormat("bulk DML on '%s' (row count x%.2f)",
                                  table.c_str(), factor)
                      : description,
                  {{"table", table}, {"factor", StrFormat("%.4f", factor)}});
}

Status Catalog::Analyze(SimTimeMs t, const std::string& table) {
  return RefreshOptimizerStats(
      t, table, 0.0,
      StrFormat("ANALYZE refreshed optimizer statistics for '%s'",
                table.c_str()));
}

Status Catalog::RefreshOptimizerStats(SimTimeMs t, const std::string& table,
                                      double rel_error,
                                      const std::string& reason) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + table);
  }
  const double old_rows = it->second.optimizer_stats.row_count;
  it->second.optimizer_stats = it->second.actual_stats;
  it->second.optimizer_stats.row_count *= (1.0 + rel_error);
  return LogEvent(
      t, EventType::kTableStatsChanged, it->second.id,
      StrFormat("%s (row count now %.0f)", reason.c_str(),
                it->second.optimizer_stats.row_count),
      {{"table", table},
       {"old_row_count", StrFormat("%.0f", old_rows)}});
}

Status Catalog::SetIndexDroppedSilently(const std::string& index_name,
                                        bool dropped) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named: " + index_name);
  }
  it->second.dropped = dropped;
  return Status::Ok();
}

Status Catalog::SetOptimizerStatsSilently(const std::string& table,
                                          TableStats stats) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + table);
  }
  it->second.optimizer_stats = stats;
  return Status::Ok();
}

Status Catalog::SetTableStorageBloatSilently(const std::string& table,
                                             double bloat) {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + table);
  }
  if (bloat <= 0) {
    return Status::InvalidArgument("storage bloat must be positive");
  }
  it->second.storage_bloat = bloat;
  return Status::Ok();
}

Status Catalog::SetIndexScanBloatSilently(const std::string& index_name,
                                          double bloat) {
  auto it = indexes_.find(index_name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named: " + index_name);
  }
  if (bloat <= 0) {
    return Status::InvalidArgument("scan bloat must be positive");
  }
  it->second.scan_bloat = bloat;
  return Status::Ok();
}

Result<const TablespaceDef*> Catalog::FindTablespace(
    const std::string& name) const {
  auto it = tablespaces_.find(name);
  if (it == tablespaces_.end()) {
    return Status::NotFound("no tablespace named: " + name);
  }
  return &it->second;
}

Result<const TableDef*> Catalog::FindTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("no table named: " + name);
  }
  return &it->second;
}

Result<const IndexDef*> Catalog::FindIndex(const std::string& name) const {
  auto it = indexes_.find(name);
  if (it == indexes_.end()) {
    return Status::NotFound("no index named: " + name);
  }
  return &it->second;
}

std::vector<const IndexDef*> Catalog::IndexesOn(
    const std::string& table, const std::string& column) const {
  std::vector<const IndexDef*> out;
  for (const auto& [name, def] : indexes_) {
    if (def.dropped || def.table != table) continue;
    if (!column.empty() && def.column != column) continue;
    out.push_back(&def);
  }
  std::sort(out.begin(), out.end(),
            [](const IndexDef* a, const IndexDef* b) {
              return a->name < b->name;
            });
  return out;
}

Result<ComponentId> Catalog::VolumeOfTable(const std::string& table) const {
  Result<const TableDef*> def = FindTable(table);
  DIADS_RETURN_IF_ERROR(def.status());
  Result<const TablespaceDef*> ts = FindTablespace((*def)->tablespace);
  DIADS_RETURN_IF_ERROR(ts.status());
  return (*ts)->volume;
}

std::vector<std::string> Catalog::TableNames() const { return table_order_; }

std::vector<std::string> Catalog::TablespaceNames() const {
  return tablespace_order_;
}

double Catalog::TotalSizeMb() const {
  double mb = 0;
  for (const auto& [name, def] : tables_) {
    mb += def.actual_stats.pages() * kPageSizeBytes / (1024.0 * 1024.0);
  }
  return mb;
}

}  // namespace diads::db
