#include "common/event_log.h"

#include <algorithm>

namespace diads {

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kVolumeCreated:
      return "VolumeCreated";
    case EventType::kVolumeDeleted:
      return "VolumeDeleted";
    case EventType::kZoningChanged:
      return "ZoningChanged";
    case EventType::kLunMappingChanged:
      return "LunMappingChanged";
    case EventType::kDiskFailed:
      return "DiskFailed";
    case EventType::kDiskRecovered:
      return "DiskRecovered";
    case EventType::kRaidRebuildStarted:
      return "RaidRebuildStarted";
    case EventType::kRaidRebuildCompleted:
      return "RaidRebuildCompleted";
    case EventType::kExternalWorkloadStarted:
      return "ExternalWorkloadStarted";
    case EventType::kExternalWorkloadStopped:
      return "ExternalWorkloadStopped";
    case EventType::kVolumePerfDegraded:
      return "VolumePerfDegraded";
    case EventType::kSubsystemHighLoad:
      return "SubsystemHighLoad";
    case EventType::kIndexCreated:
      return "IndexCreated";
    case EventType::kIndexDropped:
      return "IndexDropped";
    case EventType::kDbParamChanged:
      return "DbParamChanged";
    case EventType::kTableStatsChanged:
      return "TableStatsChanged";
    case EventType::kDmlBatch:
      return "DmlBatch";
    case EventType::kTableLockContention:
      return "TableLockContention";
    case EventType::kHbaFailed:
      return "HbaFailed";
    case EventType::kHbaRecovered:
      return "HbaRecovered";
    case EventType::kPortFailed:
      return "PortFailed";
    case EventType::kPortRecovered:
      return "PortRecovered";
    case EventType::kSwitchFailed:
      return "SwitchFailed";
    case EventType::kSwitchRecovered:
      return "SwitchRecovered";
    case EventType::kLinkFailed:
      return "LinkFailed";
    case EventType::kLinkRecovered:
      return "LinkRecovered";
    case EventType::kPortDegraded:
      return "PortDegraded";
    case EventType::kPathFailover:
      return "PathFailover";
    case EventType::kRetryStormDetected:
      return "RetryStormDetected";
    case EventType::kCompressionRatioDrifted:
      return "CompressionRatioDrifted";
    case EventType::kZoneMapStale:
      return "ZoneMapStale";
  }
  return "Unknown";
}

bool IsPlanAffectingEvent(EventType type) {
  switch (type) {
    case EventType::kIndexCreated:
    case EventType::kIndexDropped:
    case EventType::kDbParamChanged:
    case EventType::kTableStatsChanged:
      return true;
    default:
      return false;
  }
}

Status EventLog::Append(SystemEvent event) {
  if (events_.empty() || events_.back().time <= event.time) {
    events_.push_back(std::move(event));
    return Status::Ok();
  }
  auto pos = std::upper_bound(
      events_.begin(), events_.end(), event.time,
      [](SimTimeMs t, const SystemEvent& e) { return t < e.time; });
  events_.insert(pos, std::move(event));
  return Status::Ok();
}

std::vector<SystemEvent> EventLog::EventsIn(
    const TimeInterval& interval) const {
  std::vector<SystemEvent> out;
  // events_ is sorted by time; binary search the window.
  auto lo = std::lower_bound(
      events_.begin(), events_.end(), interval.begin,
      [](const SystemEvent& e, SimTimeMs t) { return e.time < t; });
  for (auto it = lo; it != events_.end() && it->time < interval.end; ++it) {
    out.push_back(*it);
  }
  return out;
}

std::vector<SystemEvent> EventLog::EventsOfTypeIn(
    EventType type, const TimeInterval& interval) const {
  std::vector<SystemEvent> out;
  for (const SystemEvent& e : EventsIn(interval)) {
    if (e.type == type) out.push_back(e);
  }
  return out;
}

std::vector<SystemEvent> EventLog::EventsForComponentIn(
    ComponentId component, const TimeInterval& interval) const {
  std::vector<SystemEvent> out;
  for (const SystemEvent& e : EventsIn(interval)) {
    if (e.subject == component) out.push_back(e);
  }
  return out;
}

}  // namespace diads
