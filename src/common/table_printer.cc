#include "common/table_printer.h"

#include <algorithm>

namespace diads {
namespace {

void AppendPadded(std::string* out, const std::string& s, size_t width) {
  *out += s;
  for (size_t i = s.size(); i < width; ++i) *out += ' ';
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(Row{false, std::move(cells)});
}

void TablePrinter::AddSeparator() { rows_.push_back(Row{true, {}}); }

std::string TablePrinter::Render() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& row : rows_) {
    if (row.separator) continue;
    for (size_t c = 0; c < row.cells.size(); ++c) {
      widths[c] = std::max(widths[c], row.cells[c].size());
    }
  }

  std::string rule = "+";
  for (size_t w : widths) {
    rule += std::string(w + 2, '-');
    rule += '+';
  }
  rule += '\n';

  std::string out = rule;
  out += "|";
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += ' ';
    AppendPadded(&out, headers_[c], widths[c]);
    out += " |";
  }
  out += '\n';
  out += rule;

  for (const Row& row : rows_) {
    if (row.separator) {
      out += rule;
      continue;
    }
    out += "|";
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += ' ';
      AppendPadded(&out, row.cells[c], widths[c]);
      out += " |";
    }
    out += '\n';
  }
  out += rule;
  return out;
}

}  // namespace diads
