// Simulated time.
//
// The whole testbed — query executor, SAN performance model, monitoring
// samplers, fault injector — runs against one simulated clock with
// millisecond resolution. Reproducing the paper's conditions (5-minute
// monitoring intervals, multi-hour run histories) in wall-clock time would be
// impractical; simulated time makes a two-week run history cost microseconds.
#ifndef DIADS_COMMON_SIM_TIME_H_
#define DIADS_COMMON_SIM_TIME_H_

#include <cstdint>
#include <string>

namespace diads {

/// Milliseconds since the simulation epoch (day 0, 00:00:00.000).
using SimTimeMs = int64_t;

constexpr SimTimeMs kMsPerSecond = 1000;
constexpr SimTimeMs kMsPerMinute = 60 * kMsPerSecond;
constexpr SimTimeMs kMsPerHour = 60 * kMsPerMinute;
constexpr SimTimeMs kMsPerDay = 24 * kMsPerHour;

constexpr SimTimeMs Seconds(double s) {
  return static_cast<SimTimeMs>(s * kMsPerSecond);
}
constexpr SimTimeMs Minutes(double m) {
  return static_cast<SimTimeMs>(m * kMsPerMinute);
}
constexpr SimTimeMs Hours(double h) {
  return static_cast<SimTimeMs>(h * kMsPerHour);
}

/// Formats a sim time as "d0 12:05:30" (day, HH:MM:SS).
std::string FormatSimTime(SimTimeMs t);

/// Formats a duration as a compact human string, e.g. "2m 05s" or "430ms".
std::string FormatDuration(SimTimeMs d);

/// Half-open time interval [begin, end).
struct TimeInterval {
  SimTimeMs begin = 0;
  SimTimeMs end = 0;

  SimTimeMs duration() const { return end - begin; }
  bool empty() const { return end <= begin; }
  bool Contains(SimTimeMs t) const { return t >= begin && t < end; }
  bool Overlaps(const TimeInterval& other) const {
    return begin < other.end && other.begin < end;
  }
  /// The intersection with `other`; empty() if disjoint.
  TimeInterval Intersect(const TimeInterval& other) const;
  /// Fraction of this interval covered by `other`, in [0, 1].
  double OverlapFraction(const TimeInterval& other) const;

  std::string ToString() const;

  friend bool operator==(const TimeInterval& a, const TimeInterval& b) {
    return a.begin == b.begin && a.end == b.end;
  }
};

/// The simulation clock. Monotonic; components advance it as simulated work
/// "happens". Not thread-safe (the simulation is single-threaded by design).
class SimClock {
 public:
  explicit SimClock(SimTimeMs start = 0) : now_(start) {}

  SimTimeMs now() const { return now_; }

  /// Advances the clock by `delta` (must be >= 0).
  void Advance(SimTimeMs delta);

  /// Moves the clock to `t`; no-op if `t` is in the past (clock stays
  /// monotonic).
  void AdvanceTo(SimTimeMs t);

 private:
  SimTimeMs now_;
};

}  // namespace diads

#endif  // DIADS_COMMON_SIM_TIME_H_
