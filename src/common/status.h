// Status / Result<T> error handling for the DIADS library.
//
// Library code does not throw exceptions (Google C++ style); fallible
// operations return a Status, or a Result<T> when they also produce a value.
#ifndef DIADS_COMMON_STATUS_H_
#define DIADS_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace diads {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  /// Admission refused: the caller exceeded its resource share (serving-
  /// layer admission control, not a permanent failure — back off, retry).
  kResourceExhausted,
  /// The request's deadline passed before the work ran; it was shed.
  kDeadlineExceeded,
  /// The serving component is shutting down; queued work was failed
  /// explicitly rather than silently drained.
  kShutdown,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation that produces no value.
///
/// A default-constructed Status is OK. Statuses are cheap to copy; the
/// message is only allocated on the error path.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Shutdown(std::string msg) {
    return Status(StatusCode::kShutdown, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error return type.
///
/// Either holds a T (when status().ok()) or an error Status. Accessing
/// value() on an error result is a programming bug and asserts in debug
/// builds.
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirror absl::StatusOr.
  Result(T value) : status_(Status::Ok()), value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace diads

/// Propagates an error Status from an expression; usable inside functions
/// returning Status or Result<T>.
#define DIADS_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::diads::Status _diads_status = (expr);    \
    if (!_diads_status.ok()) return _diads_status; \
  } while (0)

#define DIADS_MACRO_CONCAT_INNER(a, b) a##b
#define DIADS_MACRO_CONCAT(a, b) DIADS_MACRO_CONCAT_INNER(a, b)

#define DIADS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

/// Evaluates a Result<T> expression, propagating the error or assigning the
/// value to `lhs` (which may be a declaration, e.g. `db::Plan plan`).
#define DIADS_ASSIGN_OR_RETURN(lhs, expr) \
  DIADS_ASSIGN_OR_RETURN_IMPL(            \
      DIADS_MACRO_CONCAT(_diads_result_, __LINE__), lhs, expr)

#endif  // DIADS_COMMON_STATUS_H_
