// Deterministic, forkable random number generation.
//
// Every source of randomness in the testbed (noise models, workload jitter,
// fault timing) draws from a SeededRng. Child streams forked by name are
// independent of the order in which sibling streams are consumed, so adding a
// new consumer never perturbs existing benchmark output — a property the
// reproducibility story of EXPERIMENTS.md depends on.
#ifndef DIADS_COMMON_RNG_H_
#define DIADS_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace diads {

/// A named, seeded random stream.
class SeededRng {
 public:
  explicit SeededRng(uint64_t seed) : engine_(seed), seed_(seed) {}

  /// Forks an independent child stream. The child's seed is a hash of this
  /// stream's seed and `name`, so it does not depend on draw order.
  SeededRng Child(const std::string& name) const;

  uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double Uniform();
  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi);
  /// Normal draw with the given mean and standard deviation.
  double Normal(double mean, double stddev);
  /// Log-normal draw parameterised by the mean/stddev of the underlying
  /// normal (natural-log scale).
  double LogNormal(double log_mean, double log_stddev);
  /// Exponential draw with the given rate (lambda).
  double Exponential(double rate);
  /// True with probability p.
  bool Bernoulli(double p);
  /// Poisson draw with the given mean.
  int64_t Poisson(double mean);

  /// Picks an index in [0, weights.size()) proportionally to weights.
  size_t WeightedIndex(const std::vector<double>& weights);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  uint64_t seed_;
};

}  // namespace diads

#endif  // DIADS_COMMON_RNG_H_
