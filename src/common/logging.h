// Minimal leveled logging.
//
// The library is quiet by default (kWarning); examples and the interactive
// workflow raise the level to narrate what DIADS is doing, mirroring the
// module-by-module result panels of the paper's GUI (Figure 7).
#ifndef DIADS_COMMON_LOGGING_H_
#define DIADS_COMMON_LOGGING_H_

#include <string>

namespace diads {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits a log line to stderr if `level` passes the global threshold.
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

}  // namespace diads

#endif  // DIADS_COMMON_LOGGING_H_
