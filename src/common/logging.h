// Structured leveled logging.
//
// The library is quiet by default (kWarning); examples and the interactive
// workflow raise the level to narrate what DIADS is doing, mirroring the
// module-by-module result panels of the paper's GUI (Figure 7).
//
// Every emitted line is a LogRecord — level, component prefix (dotted,
// e.g. "monitor.gather"), optional SimTime stamp, wall-clock stamp, and
// the message — routed through a pluggable LogSink. The default sink
// formats records to stderr; tests install a CaptureLogSink to assert on
// what the library logged (e.g. that a stale-data degradation names the
// affected component), and deployments can forward records to their own
// logging fabric.
#ifndef DIADS_COMMON_LOGGING_H_
#define DIADS_COMMON_LOGGING_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace diads {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

const char* LogLevelName(LogLevel level);

/// One structured log line.
struct LogRecord {
  LogLevel level = LogLevel::kInfo;
  /// Dotted source component, e.g. "monitor.gather", "engine". Empty for
  /// legacy Log() calls that carry no component.
  std::string component;
  std::string message;
  /// Simulated-time stamp of the event being logged; < 0 when the caller
  /// has no sim-time context (most serving-path logs).
  SimTimeMs sim_time = -1;
  /// Wall-clock stamp, nanoseconds since the Unix epoch.
  int64_t wall_ns = 0;

  /// The default sink's line format:
  ///   [WARN monitor.gather d0 02:05:00] message      (with sim time)
  ///   [WARN monitor.gather] message                  (without)
  std::string Format() const;
};

/// Where log records go. Implementations must tolerate concurrent Write
/// calls (the global logger serializes them, but sinks may also be used
/// directly).
class LogSink {
 public:
  virtual ~LogSink() = default;
  virtual void Write(const LogRecord& record) = 0;
};

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Installs `sink` as the global log destination and returns the previous
/// one (nullptr when the default stderr sink was active). Passing nullptr
/// restores the default stderr sink. The caller keeps ownership; the sink
/// must outlive its installation.
LogSink* SetLogSink(LogSink* sink);

/// Emits a structured record if `level` passes the global threshold.
void LogRecordTo(LogLevel level, const std::string& component,
                 const std::string& message, SimTimeMs sim_time = -1);

/// Emits a log line with no component prefix (legacy entry point).
void Log(LogLevel level, const std::string& message);

void LogDebug(const std::string& message);
void LogInfo(const std::string& message);
void LogWarning(const std::string& message);
void LogError(const std::string& message);

/// Component-prefixed conveniences.
void LogDebug(const std::string& component, const std::string& message);
void LogInfo(const std::string& component, const std::string& message);
void LogWarning(const std::string& component, const std::string& message);
void LogError(const std::string& component, const std::string& message);

/// Test sink: records every write for later assertion. Thread-safe.
class CaptureLogSink : public LogSink {
 public:
  void Write(const LogRecord& record) override;

  /// Snapshot of everything captured so far.
  std::vector<LogRecord> Records() const;
  /// Records whose component matches exactly.
  std::vector<LogRecord> RecordsFor(const std::string& component) const;
  /// True if any captured message contains `needle`.
  bool ContainsMessage(const std::string& needle) const;
  size_t size() const;
  void Clear();

 private:
  mutable std::mutex mu_;
  std::vector<LogRecord> records_;
};

/// RAII: installs a sink for the current scope, restores the previous one
/// on destruction (tests).
class ScopedLogSink {
 public:
  explicit ScopedLogSink(LogSink* sink) : previous_(SetLogSink(sink)) {}
  ~ScopedLogSink() { SetLogSink(previous_); }

  ScopedLogSink(const ScopedLogSink&) = delete;
  ScopedLogSink& operator=(const ScopedLogSink&) = delete;

 private:
  LogSink* previous_;
};

}  // namespace diads

#endif  // DIADS_COMMON_LOGGING_H_
