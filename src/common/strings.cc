#include "common/strings.h"

#include <cstdarg>
#include <cstdio>

namespace diads {

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return {};
  }
  std::string out(static_cast<size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::vector<std::string> Split(const std::string& s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

std::string FormatDouble(double v, int digits) {
  return StrFormat("%.*f", digits, v);
}

std::string FormatPercent(double fraction, int digits) {
  return StrFormat("%.*f%%", digits, fraction * 100.0);
}

uint64_t Fnv1a64(const std::string& data) {
  return Fnv1a64Fold(kFnv1a64OffsetBasis, data);
}

uint64_t Fnv1a64Fold(uint64_t h, const std::string& data) {
  for (char c : data) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t Fnv1a64FoldWord(uint64_t h, uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    h ^= (word >> (i * 8)) & 0xFF;
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t SplitMix64Finish(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

}  // namespace diads
