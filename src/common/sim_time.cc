#include "common/sim_time.h"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace diads {

std::string FormatSimTime(SimTimeMs t) {
  const int64_t day = t / kMsPerDay;
  int64_t rem = t % kMsPerDay;
  if (rem < 0) rem += kMsPerDay;
  const int hh = static_cast<int>(rem / kMsPerHour);
  const int mm = static_cast<int>((rem % kMsPerHour) / kMsPerMinute);
  const int ss = static_cast<int>((rem % kMsPerMinute) / kMsPerSecond);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "d%lld %02d:%02d:%02d",
                static_cast<long long>(day), hh, mm, ss);
  return buf;
}

std::string FormatDuration(SimTimeMs d) {
  char buf[48];
  if (d < kMsPerSecond) {
    std::snprintf(buf, sizeof(buf), "%lldms", static_cast<long long>(d));
  } else if (d < kMsPerMinute) {
    std::snprintf(buf, sizeof(buf), "%.1fs",
                  static_cast<double>(d) / kMsPerSecond);
  } else if (d < kMsPerHour) {
    std::snprintf(buf, sizeof(buf), "%lldm %02llds",
                  static_cast<long long>(d / kMsPerMinute),
                  static_cast<long long>((d % kMsPerMinute) / kMsPerSecond));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldh %02lldm",
                  static_cast<long long>(d / kMsPerHour),
                  static_cast<long long>((d % kMsPerHour) / kMsPerMinute));
  }
  return buf;
}

TimeInterval TimeInterval::Intersect(const TimeInterval& other) const {
  TimeInterval out;
  out.begin = std::max(begin, other.begin);
  out.end = std::min(end, other.end);
  if (out.end < out.begin) out.end = out.begin;
  return out;
}

double TimeInterval::OverlapFraction(const TimeInterval& other) const {
  if (empty()) return 0.0;
  const TimeInterval inter = Intersect(other);
  return static_cast<double>(inter.duration()) /
         static_cast<double>(duration());
}

std::string TimeInterval::ToString() const {
  return "[" + FormatSimTime(begin) + ", " + FormatSimTime(end) + ")";
}

void SimClock::Advance(SimTimeMs delta) {
  assert(delta >= 0);
  now_ += delta;
}

void SimClock::AdvanceTo(SimTimeMs t) { now_ = std::max(now_, t); }

}  // namespace diads
