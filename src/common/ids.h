// Component identity shared across the database, SAN, monitoring, and APG
// layers.
//
// Every monitored entity in a DIADS deployment — a physical disk, a storage
// volume, a plan operator, the database server — registers once in a
// ComponentRegistry and is referred to everywhere else by its ComponentId.
// This gives the time-series store, the event log, and the Annotated Plan
// Graph a single uniform key space, which is exactly the property the paper's
// APG abstraction relies on ("ties together the execution path of queries in
// the database and the SAN").
#ifndef DIADS_COMMON_IDS_H_
#define DIADS_COMMON_IDS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace diads {

/// The kind of a monitored component. Spans both layers: SAN hardware and
/// logical entities, plus database-layer entities (tablespaces, operators).
enum class ComponentKind {
  // SAN layer — physical.
  kServer,
  kHba,
  kFcPort,
  kFcSwitch,
  kStorageSubsystem,
  kDisk,
  // SAN layer — logical.
  kStoragePool,
  kVolume,
  // Database layer.
  kDatabase,
  kTablespace,
  kTable,
  kIndex,
  kPlanOperator,
  kQuery,
  // Workload layer (e.g., a competing application stream).
  kWorkload,
};

/// Returns a stable display name, e.g. "Volume" for kVolume.
const char* ComponentKindName(ComponentKind kind);

/// Opaque handle for a registered component. Valid ids are dense indices
/// into the owning ComponentRegistry.
struct ComponentId {
  uint32_t value = kInvalidValue;

  static constexpr uint32_t kInvalidValue = 0xFFFFFFFFu;

  bool valid() const { return value != kInvalidValue; }
  friend bool operator==(ComponentId a, ComponentId b) {
    return a.value == b.value;
  }
  friend bool operator!=(ComponentId a, ComponentId b) {
    return a.value != b.value;
  }
  friend bool operator<(ComponentId a, ComponentId b) {
    return a.value < b.value;
  }
};

/// Registry of every monitored component in a deployment.
///
/// Names are unique within the registry; registering a duplicate name is an
/// error (configuration bugs surface early rather than aliasing time series).
class ComponentRegistry {
 public:
  ComponentRegistry() = default;

  // Movable, not copyable: ids are identities, silently forking the registry
  // would alias them.
  ComponentRegistry(const ComponentRegistry&) = delete;
  ComponentRegistry& operator=(const ComponentRegistry&) = delete;
  ComponentRegistry(ComponentRegistry&&) = default;
  ComponentRegistry& operator=(ComponentRegistry&&) = default;

  /// Registers a component; returns its id or kAlreadyExists.
  Result<ComponentId> Register(ComponentKind kind, std::string name);

  /// Registers, asserting the name is fresh. Convenience for builders whose
  /// names are generated and therefore unique by construction.
  ComponentId MustRegister(ComponentKind kind, std::string name);

  /// Returns the existing id for `name` (kind must match) or registers it.
  /// Used for entities that are re-derived deterministically, e.g. plan
  /// operators named "Q2/P<fingerprint>/O7" recreated on re-optimization.
  Result<ComponentId> GetOrRegister(ComponentKind kind, std::string name);

  /// Looks up a component id by its unique name.
  Result<ComponentId> FindByName(const std::string& name) const;

  bool Contains(ComponentId id) const { return id.value < entries_.size(); }
  const std::string& NameOf(ComponentId id) const;
  ComponentKind KindOf(ComponentId id) const;

  /// All ids of a given kind, in registration order.
  std::vector<ComponentId> AllOfKind(ComponentKind kind) const;

  size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    ComponentKind kind;
    std::string name;
  };
  std::vector<Entry> entries_;
  std::unordered_map<std::string, uint32_t> by_name_;
};

}  // namespace diads

template <>
struct std::hash<diads::ComponentId> {
  size_t operator()(diads::ComponentId id) const noexcept {
    return std::hash<uint32_t>()(id.value);
  }
};

#endif  // DIADS_COMMON_IDS_H_
