#include "common/crc32.h"

namespace diads {
namespace {

struct Crc32Table {
  uint32_t entries[256];
  Crc32Table() {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      entries[i] = c;
    }
  }
};

const Crc32Table& Table() {
  static const Crc32Table table;
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const Crc32Table& table = Table();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t c = crc ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    c = table.entries[(c ^ bytes[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace diads
