// CRC-32 (IEEE 802.3) checksums for on-disk record framing.
//
// The fleet segment log frames every appended record with a CRC over its
// payload so replay can tell a valid record from a torn or bit-flipped
// tail after a crash. The implementation is the classic reflected
// table-driven CRC-32 (polynomial 0xEDB88320) — the same checksum zlib,
// PNG, and Ethernet use — so values are stable across platforms and easy
// to cross-check with external tools.
#ifndef DIADS_COMMON_CRC32_H_
#define DIADS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace diads {

/// CRC-32 of `size` bytes starting at `data`. Empty input yields 0.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` the result of a previous call to extend a
/// checksum across discontiguous buffers. Start from 0.
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace diads

#endif  // DIADS_COMMON_CRC32_H_
