#include "common/ids.h"

#include <cassert>

namespace diads {

const char* ComponentKindName(ComponentKind kind) {
  switch (kind) {
    case ComponentKind::kServer:
      return "Server";
    case ComponentKind::kHba:
      return "HBA";
    case ComponentKind::kFcPort:
      return "FCPort";
    case ComponentKind::kFcSwitch:
      return "FCSwitch";
    case ComponentKind::kStorageSubsystem:
      return "StorageSubsystem";
    case ComponentKind::kDisk:
      return "Disk";
    case ComponentKind::kStoragePool:
      return "StoragePool";
    case ComponentKind::kVolume:
      return "Volume";
    case ComponentKind::kDatabase:
      return "Database";
    case ComponentKind::kTablespace:
      return "Tablespace";
    case ComponentKind::kTable:
      return "Table";
    case ComponentKind::kIndex:
      return "Index";
    case ComponentKind::kPlanOperator:
      return "PlanOperator";
    case ComponentKind::kQuery:
      return "Query";
    case ComponentKind::kWorkload:
      return "Workload";
  }
  return "Unknown";
}

Result<ComponentId> ComponentRegistry::Register(ComponentKind kind,
                                                std::string name) {
  if (name.empty()) {
    return Status::InvalidArgument("component name must be non-empty");
  }
  auto [it, inserted] =
      by_name_.emplace(name, static_cast<uint32_t>(entries_.size()));
  if (!inserted) {
    return Status::AlreadyExists("component already registered: " + name);
  }
  entries_.push_back(Entry{kind, std::move(name)});
  return ComponentId{it->second};
}

ComponentId ComponentRegistry::MustRegister(ComponentKind kind,
                                            std::string name) {
  Result<ComponentId> result = Register(kind, std::move(name));
  assert(result.ok());
  return result.value();
}

Result<ComponentId> ComponentRegistry::GetOrRegister(ComponentKind kind,
                                                     std::string name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    ComponentId id{it->second};
    if (entries_[id.value].kind != kind) {
      return Status::AlreadyExists(
          "component registered with a different kind: " + name);
    }
    return id;
  }
  return Register(kind, std::move(name));
}

Result<ComponentId> ComponentRegistry::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return Status::NotFound("no component named: " + name);
  }
  return ComponentId{it->second};
}

const std::string& ComponentRegistry::NameOf(ComponentId id) const {
  assert(Contains(id));
  return entries_[id.value].name;
}

ComponentKind ComponentRegistry::KindOf(ComponentId id) const {
  assert(Contains(id));
  return entries_[id.value].kind;
}

std::vector<ComponentId> ComponentRegistry::AllOfKind(
    ComponentKind kind) const {
  std::vector<ComponentId> out;
  for (uint32_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == kind) out.push_back(ComponentId{i});
  }
  return out;
}

}  // namespace diads
