// Console table rendering.
//
// The paper's evaluation output is tabular (Table 1, Table 2) and its GUI
// surfaces are tables (Figures 3, 6). TablePrinter renders aligned ASCII
// tables so that benches and examples can print paper-shaped artifacts.
#ifndef DIADS_COMMON_TABLE_PRINTER_H_
#define DIADS_COMMON_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace diads {

/// Builds and renders a fixed-column ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Appends a horizontal separator row.
  void AddSeparator();

  /// Renders the table, e.g.:
  ///   +------+-------+
  ///   | Col  | Col2  |
  ///   +------+-------+
  ///   | a    | b     |
  ///   +------+-------+
  std::string Render() const;

  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

}  // namespace diads

#endif  // DIADS_COMMON_TABLE_PRINTER_H_
