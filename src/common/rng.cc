#include "common/rng.h"

#include <cassert>
#include <cmath>

namespace diads {
namespace {

// FNV-1a over the name, mixed with the parent seed via splitmix64 finalizer.
uint64_t MixSeed(uint64_t seed, const std::string& name) {
  uint64_t h = 14695981039346656037ull ^ seed;
  for (char c : name) {
    h ^= static_cast<uint64_t>(static_cast<unsigned char>(c));
    h *= 1099511628211ull;
  }
  h += 0x9E3779B97f4A7C15ull;
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ull;
  h = (h ^ (h >> 27)) * 0x94D049BB133111EBull;
  return h ^ (h >> 31);
}

}  // namespace

SeededRng SeededRng::Child(const std::string& name) const {
  return SeededRng(MixSeed(seed_, name));
}

double SeededRng::Uniform() {
  return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
}

double SeededRng::Uniform(double lo, double hi) {
  assert(lo <= hi);
  return std::uniform_real_distribution<double>(lo, hi)(engine_);
}

int64_t SeededRng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
}

double SeededRng::Normal(double mean, double stddev) {
  return std::normal_distribution<double>(mean, stddev)(engine_);
}

double SeededRng::LogNormal(double log_mean, double log_stddev) {
  return std::lognormal_distribution<double>(log_mean, log_stddev)(engine_);
}

double SeededRng::Exponential(double rate) {
  assert(rate > 0);
  return std::exponential_distribution<double>(rate)(engine_);
}

bool SeededRng::Bernoulli(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return std::bernoulli_distribution(p)(engine_);
}

int64_t SeededRng::Poisson(double mean) {
  assert(mean >= 0);
  if (mean == 0) return 0;
  return std::poisson_distribution<int64_t>(mean)(engine_);
}

size_t SeededRng::WeightedIndex(const std::vector<double>& weights) {
  assert(!weights.empty());
  double total = 0;
  for (double w : weights) total += w;
  assert(total > 0);
  double r = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace diads
