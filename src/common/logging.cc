#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>

#include "common/strings.h"

namespace diads {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};

/// Serializes sink swaps and writes: a record is always written to the
/// sink that was installed when it passed the level check, and never to a
/// sink mid-destruction (ScopedLogSink restores before the sink dies).
std::mutex g_sink_mu;
LogSink* g_sink = nullptr;  // nullptr = default stderr sink.

int64_t WallNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

class StderrSink : public LogSink {
 public:
  void Write(const LogRecord& record) override {
    const std::string line = record.Format();
    std::fprintf(stderr, "%s\n", line.c_str());
  }
};

StderrSink& DefaultSink() {
  static StderrSink sink;
  return sink;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::string LogRecord::Format() const {
  std::string head = StrFormat("[%s", LogLevelName(level));
  if (!component.empty()) head += StrFormat(" %s", component.c_str());
  if (sim_time >= 0) head += " " + FormatSimTime(sim_time);
  head += "] ";
  return head + message;
}

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

LogSink* SetLogSink(LogSink* sink) {
  std::lock_guard<std::mutex> lock(g_sink_mu);
  LogSink* previous = g_sink;
  g_sink = sink;
  return previous;
}

void LogRecordTo(LogLevel level, const std::string& component,
                 const std::string& message, SimTimeMs sim_time) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  LogRecord record;
  record.level = level;
  record.component = component;
  record.message = message;
  record.sim_time = sim_time;
  record.wall_ns = WallNowNs();
  std::lock_guard<std::mutex> lock(g_sink_mu);
  (g_sink != nullptr ? g_sink : &DefaultSink())->Write(record);
}

void Log(LogLevel level, const std::string& message) {
  LogRecordTo(level, "", message);
}

void LogDebug(const std::string& message) { Log(LogLevel::kDebug, message); }
void LogInfo(const std::string& message) { Log(LogLevel::kInfo, message); }
void LogWarning(const std::string& message) {
  Log(LogLevel::kWarning, message);
}
void LogError(const std::string& message) { Log(LogLevel::kError, message); }

void LogDebug(const std::string& component, const std::string& message) {
  LogRecordTo(LogLevel::kDebug, component, message);
}
void LogInfo(const std::string& component, const std::string& message) {
  LogRecordTo(LogLevel::kInfo, component, message);
}
void LogWarning(const std::string& component, const std::string& message) {
  LogRecordTo(LogLevel::kWarning, component, message);
}
void LogError(const std::string& component, const std::string& message) {
  LogRecordTo(LogLevel::kError, component, message);
}

void CaptureLogSink::Write(const LogRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  records_.push_back(record);
}

std::vector<LogRecord> CaptureLogSink::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

std::vector<LogRecord> CaptureLogSink::RecordsFor(
    const std::string& component) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<LogRecord> out;
  for (const LogRecord& record : records_) {
    if (record.component == component) out.push_back(record);
  }
  return out;
}

bool CaptureLogSink::ContainsMessage(const std::string& needle) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const LogRecord& record : records_) {
    if (record.message.find(needle) != std::string::npos) return true;
  }
  return false;
}

size_t CaptureLogSink::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

void CaptureLogSink::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
}

}  // namespace diads
