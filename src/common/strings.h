// Small string utilities used across the library (join/split/trim and
// printf-style formatting into std::string).
#ifndef DIADS_COMMON_STRINGS_H_
#define DIADS_COMMON_STRINGS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace diads {

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep);

/// Splits `s` on the single character `sep`; keeps empty fields.
std::vector<std::string> Split(const std::string& s, char sep);

/// Strips leading/trailing ASCII whitespace.
std::string Trim(const std::string& s);

/// ASCII lower-casing.
std::string ToLower(const std::string& s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// Formats a double with `digits` decimal places (fixed notation).
std::string FormatDouble(double v, int digits);

/// Formats a fraction in [0,1] as a percentage, e.g. 0.998 -> "99.8%".
std::string FormatPercent(double fraction, int digits = 1);

/// FNV-1a 64-bit hash of `data` (standard offset basis and prime).
uint64_t Fnv1a64(const std::string& data);

/// Incremental FNV-1a: folds more data into a running hash. Seed with
/// kFnv1a64OffsetBasis (or a previous fold's result) to hash composite
/// keys field by field.
inline constexpr uint64_t kFnv1a64OffsetBasis = 14695981039346656037ull;
uint64_t Fnv1a64Fold(uint64_t h, const std::string& data);
uint64_t Fnv1a64FoldWord(uint64_t h, uint64_t word);  ///< Little-endian.

/// splitmix64 finalizer: avalanches a 64-bit value. Finish composite-key
/// hashes with this so structured inputs (shared prefixes, small deltas)
/// still spread uniformly across buckets/shards.
uint64_t SplitMix64Finish(uint64_t x);

}  // namespace diads

#endif  // DIADS_COMMON_STRINGS_H_
