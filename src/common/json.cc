#include "common/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <unordered_set>

#include "common/strings.h"

namespace diads {
namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWs();
    Result<JsonValue> value = ParseValue(/*depth=*/0);
    DIADS_RETURN_IF_ERROR(value.status());
    SkipWs();
    if (pos_ != text_.size()) {
      return Error("trailing characters after the JSON document");
    }
    return value;
  }

 private:
  static constexpr int kMaxDepth = 200;

  Status Error(const std::string& what) const {
    return Status::InvalidArgument(
        StrFormat("JSON parse error at byte %zu: %s", pos_, what.c_str()));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<JsonValue> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject(depth);
      case '[':
        return ParseArray(depth);
      case '"': {
        Result<std::string> s = ParseString();
        DIADS_RETURN_IF_ERROR(s.status());
        return JsonValue::String(std::move(*s));
      }
      case 't':
        return ParseLiteral("true", JsonValue::Bool(true));
      case 'f':
        return ParseLiteral("false", JsonValue::Bool(false));
      case 'n':
        return ParseLiteral("null", JsonValue::Null());
      default:
        if (c == '-' || (c >= '0' && c <= '9')) return ParseNumber();
        return Error(StrFormat("unexpected character '%c'", c));
    }
  }

  Result<JsonValue> ParseLiteral(const char* word, JsonValue value) {
    for (const char* p = word; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= text_.size() || text_[pos_] != *p) {
        return Error(StrFormat("invalid literal (expected '%s')", word));
      }
    }
    return value;
  }

  Result<JsonValue> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {
    }
    if (pos_ >= text_.size() || !std::isdigit(
            static_cast<unsigned char>(text_[pos_]))) {
      return Error("malformed number");
    }
    if (text_[pos_] == '0') {
      ++pos_;  // No leading zeros.
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed fraction");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() ||
          !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("malformed exponent");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    const double value = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(value)) return Error("number out of range");
    return JsonValue::Number(value);
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected '\"'");
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c < 0x20) return Error("unescaped control character in string");
      if (c != '\\') {
        out.push_back(static_cast<char>(c));
        ++pos_;
        continue;
      }
      ++pos_;  // The backslash.
      if (pos_ >= text_.size()) return Error("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Error("invalid \\u escape digit");
            }
          }
          // UTF-8 encode (surrogate pairs folded naively: a lone
          // surrogate is kept as its replacement bytes — the validator
          // cares about structure, not text round-tripping).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error(StrFormat("invalid escape '\\%c'", esc));
      }
    }
  }

  Result<JsonValue> ParseArray(int depth) {
    Consume('[');
    std::vector<JsonValue> items;
    SkipWs();
    if (Consume(']')) return JsonValue::Array(std::move(items));
    while (true) {
      SkipWs();
      Result<JsonValue> item = ParseValue(depth + 1);
      DIADS_RETURN_IF_ERROR(item.status());
      items.push_back(std::move(*item));
      SkipWs();
      if (Consume(']')) return JsonValue::Array(std::move(items));
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Result<JsonValue> ParseObject(int depth) {
    Consume('{');
    std::vector<std::pair<std::string, JsonValue>> members;
    std::unordered_set<std::string> seen;
    SkipWs();
    if (Consume('}')) return JsonValue::Object(std::move(members));
    while (true) {
      SkipWs();
      Result<std::string> key = ParseString();
      DIADS_RETURN_IF_ERROR(key.status());
      if (!seen.insert(*key).second) {
        return Error(StrFormat("duplicate object key \"%s\"", key->c_str()));
      }
      SkipWs();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWs();
      Result<JsonValue> value = ParseValue(depth + 1);
      DIADS_RETURN_IF_ERROR(value.status());
      members.emplace_back(std::move(*key), std::move(*value));
      SkipWs();
      if (Consume('}')) return JsonValue::Object(std::move(members));
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool v) {
  JsonValue out;
  out.kind_ = Kind::kBool;
  out.bool_ = v;
  return out;
}

JsonValue JsonValue::Number(double v) {
  JsonValue out;
  out.kind_ = Kind::kNumber;
  out.number_ = v;
  return out;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue out;
  out.kind_ = Kind::kString;
  out.string_ = std::move(v);
  return out;
}

JsonValue JsonValue::Array(std::vector<JsonValue> items) {
  JsonValue out;
  out.kind_ = Kind::kArray;
  out.items_ = std::move(items);
  return out;
}

JsonValue JsonValue::Object(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue out;
  out.kind_ = Kind::kObject;
  out.members_ = std::move(members);
  return out;
}

Result<JsonValue> ParseJson(const std::string& text) {
  return Parser(text).Parse();
}

Status ValidateJson(const std::string& text) {
  return ParseJson(text).status();
}

std::string JsonQuote(const std::string& s) {
  std::string out = "\"";
  for (const char raw : s) {
    const unsigned char c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          out += StrFormat("\\u%04x", c);
        } else {
          out.push_back(raw);
        }
    }
  }
  out += "\"";
  return out;
}

}  // namespace diads
