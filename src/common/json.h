// Minimal JSON parser / validator.
//
// The repo emits JSON in several places — EngineStats::ToJson, the
// unified metrics registry snapshot, Chrome trace exports, bench
// "[bench-json]" lines — and the tests must assert those strings are
// *well-formed*, not just that they contain expected substrings. This is
// a small strict recursive-descent parser (RFC 8259 grammar: objects,
// arrays, strings with escapes, numbers, true/false/null) that builds a
// navigable JsonValue tree. It is a test/validation utility, not a
// serving-path dependency: nothing hot parses JSON.
#ifndef DIADS_COMMON_JSON_H_
#define DIADS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace diads {

/// A parsed JSON document node.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool bool_value() const { return bool_; }
  double number_value() const { return number_; }
  const std::string& string_value() const { return string_; }
  const std::vector<JsonValue>& array_items() const { return items_; }
  /// Object members in document order (duplicate keys are rejected at
  /// parse time, so lookup is unambiguous).
  const std::vector<std::pair<std::string, JsonValue>>& object_members()
      const {
    return members_;
  }

  /// Member lookup; nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  /// True when the object has `key` (false for non-objects).
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  static JsonValue Null();
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> items);
  static JsonValue Object(
      std::vector<std::pair<std::string, JsonValue>> members);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one complete JSON document. Trailing non-whitespace, duplicate
/// object keys, unescaped control characters, and malformed numbers are
/// all errors (strict mode keeps the emitters honest).
Result<JsonValue> ParseJson(const std::string& text);

/// Convenience: Ok iff `text` parses as one complete JSON document.
Status ValidateJson(const std::string& text);

/// Escapes a string for embedding in a JSON document (adds the quotes).
std::string JsonQuote(const std::string& s);

}  // namespace diads

#endif  // DIADS_COMMON_JSON_H_
