// Unified metrics registry.
//
// Before this existed, every subsystem kept its own counter bundle with
// its own render format: EngineStats, GatherCounters, BaselineModelCache
// stats, FleetStore::Counters, TimeSeriesStore generations. This registry
// gives them one surface to register into, and gives operators one scrape
// endpoint with two formats:
//
//   * RenderPrometheus() — Prometheus text exposition (# HELP / # TYPE,
//     counter/gauge/histogram families, exponential _bucket{le=} lines)
//   * ToJson()           — a machine-readable snapshot (validated by the
//     strict parser in common/json.h)
//
// Two registration styles:
//
//   * Owned instruments (AddCounter/AddGauge/AddHistogram) — the registry
//     allocates the atomic and hands back a stable pointer; callers
//     update it on the hot path (lock-free).
//   * Sources (AddSource) — a callback invoked at scrape time that emits
//     values from an existing stats object (e.g. an EngineStatsSnapshot).
//     This is how the legacy counter bundles join the registry without
//     double-accounting: their atomics stay where they are, the registry
//     reads them when asked.
//
// The per-counter naming convention is diads_<subsystem>_<what>[_total].
#ifndef DIADS_OBS_METRICS_H_
#define DIADS_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace diads::obs {

/// Pre-baked label pairs attached to one instrument, e.g.
/// {{"module","CO"}, {"backend","replay"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

enum class MetricType { kCounter, kGauge, kHistogram };

const char* MetricTypeName(MetricType type);

/// Monotonic counter. Lock-free.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous value. Lock-free.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Exponential bucket layout: bounds are first_bound * growth^i for
/// i in [0, bucket_count), plus the implicit +Inf overflow bucket.
struct ExponentialBuckets {
  double first_bound = 1.0;
  double growth = 2.0;
  int bucket_count = 16;
};

/// Histogram over exponential buckets. Observe() is lock-free (relaxed
/// atomics; the sum uses a CAS loop).
class Histogram {
 public:
  explicit Histogram(const ExponentialBuckets& layout);

  void Observe(double v);

  struct Snapshot {
    std::vector<double> bounds;       ///< Upper bounds, +Inf excluded.
    std::vector<uint64_t> cumulative; ///< Per-bound cumulative counts.
    uint64_t count = 0;               ///< Total observations (= +Inf cum).
    double sum = 0;
  };
  Snapshot Snap() const;

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> counts_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// One collected value — the common shape behind both render formats and
/// the coverage tests ("no counter lost").
struct MetricSample {
  std::string name;
  std::string help;
  MetricType type = MetricType::kCounter;
  Labels labels;
  double value = 0;  ///< Counter/gauge value; histogram observation count.
  /// Histogram detail (empty bounds for counters/gauges).
  std::vector<double> hist_bounds;
  std::vector<uint64_t> hist_cumulative;
  double hist_sum = 0;
};

/// Scrape-time emission interface handed to Sources.
class MetricsEmitter {
 public:
  virtual ~MetricsEmitter() = default;
  virtual void Counter(const std::string& name, const std::string& help,
                       const Labels& labels, uint64_t value) = 0;
  virtual void Gauge(const std::string& name, const std::string& help,
                     const Labels& labels, double value) = 0;
};

/// The registry. Thread-safe: registration, updates, and scrapes may all
/// race (scrapes see a consistent point-in-time read of each atomic, not
/// a global snapshot — the usual Prometheus contract).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers an owned instrument; the pointer stays valid for the
  /// registry's lifetime. Names must match [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter* AddCounter(const std::string& name, const std::string& help,
                      Labels labels = {});
  Gauge* AddGauge(const std::string& name, const std::string& help,
                  Labels labels = {});
  Histogram* AddHistogram(const std::string& name, const std::string& help,
                          const ExponentialBuckets& layout,
                          Labels labels = {});

  /// Registers a scrape-time source. The callback must stay valid for the
  /// registry's lifetime and tolerate concurrent invocation.
  using SourceFn = std::function<void(MetricsEmitter&)>;
  void AddSource(SourceFn source);

  /// Every sample the registry can currently produce (owned instruments
  /// in registration order, then source emissions in registration order).
  std::vector<MetricSample> Collect() const;

  /// Prometheus text exposition format.
  std::string RenderPrometheus() const;
  /// JSON snapshot: {"metrics":[{name,type,labels,value,...}, ...]}.
  std::string ToJson() const;

  /// Test helper: the sample with `name` (and `labels`, when non-empty —
  /// an empty filter matches the first sample with the name). Null when
  /// absent.
  static const MetricSample* Find(const std::vector<MetricSample>& samples,
                                  const std::string& name,
                                  const Labels& labels = {});

 private:
  struct OwnedInstrument {
    std::string name;
    std::string help;
    MetricType type;
    Labels labels;
    std::unique_ptr<class Counter> counter;
    std::unique_ptr<class Gauge> gauge;
    std::unique_ptr<class Histogram> histogram;
  };

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<OwnedInstrument>> instruments_;
  std::vector<SourceFn> sources_;
};

}  // namespace diads::obs

#endif  // DIADS_OBS_METRICS_H_
