// Per-diagnosis cost profile.
//
// The trace answers "where did the time go" for a human staring at a
// timeline; the cost profile is the same answer as data — a compact,
// digest-neutral breakdown attached to each DiagnosisResponse and
// published to the fleet store alongside the verdict, so cross-tenant
// queries can ask "which tenants' diagnoses are slow, and why" without
// shipping whole traces around.
//
// Digest neutrality: nothing in this struct feeds ReportDigest. It is
// produced *about* the computation, strictly after the report content is
// fixed.
#ifndef DIADS_OBS_COST_PROFILE_H_
#define DIADS_OBS_COST_PROFILE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace diads::obs {

/// Per-diagnosis baseline-model-cache outcome counts, threaded through
/// DiagnosisContext so GetOrFitBaseline can attribute hits/misses to the
/// diagnosis that incurred them (the cache's own stats are global).
struct ModelLookupCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
};

/// Where one diagnosis spent its time and what it touched.
struct CostProfile {
  // --- phase breakdown, wall milliseconds ---
  double queue_wait_ms = 0;  ///< Submit accepted -> worker pickup.
  double gather_ms = 0;      ///< The scatter/gather over SAN components.
  /// Per-module wall time in execution order, e.g. {"PD",0.1},{"CO",3.2}.
  std::vector<std::pair<std::string, double>> module_ms;
  double total_ms = 0;       ///< Submit -> response ready.

  // --- cache outcomes ---
  bool result_cache_hit = false;
  bool coalesced = false;  ///< Rode on another request's computation.
  uint64_t model_cache_hits = 0;
  uint64_t model_cache_misses = 0;

  // --- gather volume & degradations ---
  uint64_t fetches_issued = 0;
  uint64_t fetch_timeouts = 0;
  uint64_t fetch_retries = 0;
  uint64_t samples_collected = 0;  ///< Metric samples integrated.
  uint64_t bytes_collected = 0;    ///< Approximate payload volume.
  /// Component ids that degraded to stale local data.
  std::vector<std::string> stale_components;

  /// Workflow module time summed (excludes queue/gather).
  double ModuleTotalMs() const;

  /// One JSON object (validated well-formed by obs_test).
  std::string ToJson() const;
  /// Compact single-line human rendering for logs and the fleet panel.
  std::string Render() const;
};

}  // namespace diads::obs

#endif  // DIADS_OBS_COST_PROFILE_H_
