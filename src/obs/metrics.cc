#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/json.h"
#include "common/strings.h"

namespace diads::obs {
namespace {

/// Prometheus label-value escaping: backslash, quote, newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%s=\"%s\"", labels[i].first.c_str(),
                     EscapeLabelValue(labels[i].second).c_str());
  }
  out += "}";
  return out;
}

/// Extra labels appended to an existing set (for _bucket le= lines).
std::string RenderLabelsPlus(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

/// Counters are almost always integers; print them as such so the text
/// format and the JSON snapshot stay pleasant to read and diff.
std::string FormatValue(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    return StrFormat("%lld", (long long)v);
  }
  return StrFormat("%.6g", v);
}

std::string FormatBound(double bound) { return StrFormat("%.6g", bound); }

class CollectingEmitter : public MetricsEmitter {
 public:
  explicit CollectingEmitter(std::vector<MetricSample>* out) : out_(out) {}

  void Counter(const std::string& name, const std::string& help,
               const Labels& labels, uint64_t value) override {
    MetricSample sample;
    sample.name = name;
    sample.help = help;
    sample.type = MetricType::kCounter;
    sample.labels = labels;
    sample.value = static_cast<double>(value);
    out_->push_back(std::move(sample));
  }

  void Gauge(const std::string& name, const std::string& help,
             const Labels& labels, double value) override {
    MetricSample sample;
    sample.name = name;
    sample.help = help;
    sample.type = MetricType::kGauge;
    sample.labels = labels;
    sample.value = value;
    out_->push_back(std::move(sample));
  }

 private:
  std::vector<MetricSample>* out_;
};

}  // namespace

const char* MetricTypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "?";
}

Histogram::Histogram(const ExponentialBuckets& layout) {
  double bound = layout.first_bound;
  for (int i = 0; i < layout.bucket_count; ++i) {
    bounds_.push_back(bound);
    bound *= layout.growth;
  }
  counts_ = std::make_unique<std::atomic<uint64_t>[]>(bounds_.size() + 1);
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  counts_[index].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + v,
                                     std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  uint64_t running = 0;
  for (size_t i = 0; i < bounds_.size(); ++i) {
    running += counts_[i].load(std::memory_order_relaxed);
    snap.cumulative.push_back(running);
  }
  snap.count = count_.load(std::memory_order_relaxed);
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

Counter* MetricsRegistry::AddCounter(const std::string& name,
                                     const std::string& help, Labels labels) {
  auto instrument = std::make_unique<OwnedInstrument>();
  instrument->name = name;
  instrument->help = help;
  instrument->type = MetricType::kCounter;
  instrument->labels = std::move(labels);
  instrument->counter = std::make_unique<class Counter>();
  Counter* out = instrument->counter.get();
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(std::move(instrument));
  return out;
}

Gauge* MetricsRegistry::AddGauge(const std::string& name,
                                 const std::string& help, Labels labels) {
  auto instrument = std::make_unique<OwnedInstrument>();
  instrument->name = name;
  instrument->help = help;
  instrument->type = MetricType::kGauge;
  instrument->labels = std::move(labels);
  instrument->gauge = std::make_unique<class Gauge>();
  Gauge* out = instrument->gauge.get();
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(std::move(instrument));
  return out;
}

Histogram* MetricsRegistry::AddHistogram(const std::string& name,
                                         const std::string& help,
                                         const ExponentialBuckets& layout,
                                         Labels labels) {
  auto instrument = std::make_unique<OwnedInstrument>();
  instrument->name = name;
  instrument->help = help;
  instrument->type = MetricType::kHistogram;
  instrument->labels = std::move(labels);
  instrument->histogram = std::make_unique<class Histogram>(layout);
  Histogram* out = instrument->histogram.get();
  std::lock_guard<std::mutex> lock(mu_);
  instruments_.push_back(std::move(instrument));
  return out;
}

void MetricsRegistry::AddSource(SourceFn source) {
  std::lock_guard<std::mutex> lock(mu_);
  sources_.push_back(std::move(source));
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> out;
  // Copy the source list under the lock, run the callbacks outside it so
  // a source may (indirectly) touch the registry without deadlocking.
  std::vector<SourceFn> sources;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& instrument : instruments_) {
      MetricSample sample;
      sample.name = instrument->name;
      sample.help = instrument->help;
      sample.type = instrument->type;
      sample.labels = instrument->labels;
      switch (instrument->type) {
        case MetricType::kCounter:
          sample.value = static_cast<double>(instrument->counter->value());
          break;
        case MetricType::kGauge:
          sample.value = instrument->gauge->value();
          break;
        case MetricType::kHistogram: {
          const Histogram::Snapshot snap = instrument->histogram->Snap();
          sample.value = static_cast<double>(snap.count);
          sample.hist_bounds = snap.bounds;
          sample.hist_cumulative = snap.cumulative;
          sample.hist_sum = snap.sum;
          break;
        }
      }
      out.push_back(std::move(sample));
    }
    sources = sources_;
  }
  CollectingEmitter emitter(&out);
  for (const SourceFn& source : sources) source(emitter);
  return out;
}

std::string MetricsRegistry::RenderPrometheus() const {
  const std::vector<MetricSample> samples = Collect();
  // Families must be contiguous in the exposition: emit in first-seen
  // name order, all samples of a name together.
  std::vector<std::string> family_order;
  for (const MetricSample& sample : samples) {
    if (std::find(family_order.begin(), family_order.end(), sample.name) ==
        family_order.end()) {
      family_order.push_back(sample.name);
    }
  }
  std::string out;
  for (const std::string& family : family_order) {
    bool header_done = false;
    for (const MetricSample& sample : samples) {
      if (sample.name != family) continue;
      if (!header_done) {
        out += StrFormat("# HELP %s %s\n", family.c_str(),
                         sample.help.c_str());
        out += StrFormat("# TYPE %s %s\n", family.c_str(),
                         MetricTypeName(sample.type));
        header_done = true;
      }
      if (sample.type == MetricType::kHistogram) {
        for (size_t i = 0; i < sample.hist_bounds.size(); ++i) {
          out += StrFormat(
              "%s_bucket%s %llu\n", family.c_str(),
              RenderLabelsPlus(sample.labels, "le",
                               FormatBound(sample.hist_bounds[i]))
                  .c_str(),
              (unsigned long long)sample.hist_cumulative[i]);
        }
        out += StrFormat("%s_bucket%s %llu\n", family.c_str(),
                         RenderLabelsPlus(sample.labels, "le", "+Inf").c_str(),
                         (unsigned long long)sample.value);
        out += StrFormat("%s_sum%s %s\n", family.c_str(),
                         RenderLabels(sample.labels).c_str(),
                         FormatValue(sample.hist_sum).c_str());
        out += StrFormat("%s_count%s %llu\n", family.c_str(),
                         RenderLabels(sample.labels).c_str(),
                         (unsigned long long)sample.value);
      } else {
        out += StrFormat("%s%s %s\n", family.c_str(),
                         RenderLabels(sample.labels).c_str(),
                         FormatValue(sample.value).c_str());
      }
    }
  }
  return out;
}

std::string MetricsRegistry::ToJson() const {
  const std::vector<MetricSample> samples = Collect();
  std::string out = "{\"metrics\":[";
  for (size_t i = 0; i < samples.size(); ++i) {
    const MetricSample& sample = samples[i];
    if (i > 0) out += ",";
    out += StrFormat("{\"name\":%s,\"type\":\"%s\",\"labels\":{",
                     JsonQuote(sample.name).c_str(),
                     MetricTypeName(sample.type));
    for (size_t j = 0; j < sample.labels.size(); ++j) {
      if (j > 0) out += ",";
      out += StrFormat("%s:%s", JsonQuote(sample.labels[j].first).c_str(),
                       JsonQuote(sample.labels[j].second).c_str());
    }
    out += StrFormat("},\"value\":%s", FormatValue(sample.value).c_str());
    if (sample.type == MetricType::kHistogram) {
      out += StrFormat(",\"sum\":%s,\"buckets\":[",
                       FormatValue(sample.hist_sum).c_str());
      for (size_t j = 0; j < sample.hist_bounds.size(); ++j) {
        if (j > 0) out += ",";
        out += StrFormat("{\"le\":%s,\"count\":%llu}",
                         FormatBound(sample.hist_bounds[j]).c_str(),
                         (unsigned long long)sample.hist_cumulative[j]);
      }
      out += "]";
    }
    out += "}";
  }
  out += "]}";
  return out;
}

const MetricSample* MetricsRegistry::Find(
    const std::vector<MetricSample>& samples, const std::string& name,
    const Labels& labels) {
  for (const MetricSample& sample : samples) {
    if (sample.name != name) continue;
    bool all_match = true;
    for (const auto& want : labels) {
      const auto it = std::find(sample.labels.begin(), sample.labels.end(),
                                want);
      if (it == sample.labels.end()) {
        all_match = false;
        break;
      }
    }
    if (all_match) return &sample;
  }
  return nullptr;
}

}  // namespace diads::obs
