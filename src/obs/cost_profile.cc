#include "obs/cost_profile.h"

#include "common/json.h"
#include "common/strings.h"

namespace diads::obs {

double CostProfile::ModuleTotalMs() const {
  double total = 0;
  for (const auto& [name, ms] : module_ms) total += ms;
  return total;
}

std::string CostProfile::ToJson() const {
  std::string out = StrFormat(
      "{\"total_ms\":%.3f,\"queue_wait_ms\":%.3f,\"gather_ms\":%.3f,"
      "\"modules\":{",
      total_ms, queue_wait_ms, gather_ms);
  for (size_t i = 0; i < module_ms.size(); ++i) {
    if (i > 0) out += ",";
    out += StrFormat("%s:%.3f", JsonQuote(module_ms[i].first).c_str(),
                     module_ms[i].second);
  }
  out += StrFormat(
      "},\"result_cache_hit\":%s,\"coalesced\":%s,"
      "\"model_cache\":{\"hits\":%llu,\"misses\":%llu},"
      "\"gather\":{\"fetches\":%llu,\"timeouts\":%llu,\"retries\":%llu,"
      "\"samples\":%llu,\"bytes\":%llu,\"stale_components\":[",
      result_cache_hit ? "true" : "false", coalesced ? "true" : "false",
      (unsigned long long)model_cache_hits,
      (unsigned long long)model_cache_misses,
      (unsigned long long)fetches_issued, (unsigned long long)fetch_timeouts,
      (unsigned long long)fetch_retries, (unsigned long long)samples_collected,
      (unsigned long long)bytes_collected);
  for (size_t i = 0; i < stale_components.size(); ++i) {
    if (i > 0) out += ",";
    out += JsonQuote(stale_components[i]);
  }
  out += "]}}";
  return out;
}

std::string CostProfile::Render() const {
  std::string out = StrFormat(
      "cost: total=%.2fms queue=%.2fms gather=%.2fms modules=%.2fms",
      total_ms, queue_wait_ms, gather_ms, ModuleTotalMs());
  if (result_cache_hit) out += " [result-cache hit]";
  if (coalesced) out += " [coalesced]";
  out += StrFormat(" model-cache=%llu/%llu hit",
                   (unsigned long long)model_cache_hits,
                   (unsigned long long)(model_cache_hits +
                                        model_cache_misses));
  out += StrFormat(" fetches=%llu", (unsigned long long)fetches_issued);
  if (fetch_timeouts > 0 || !stale_components.empty()) {
    out += StrFormat(" timeouts=%llu stale=%zu",
                     (unsigned long long)fetch_timeouts,
                     stale_components.size());
  }
  return out;
}

}  // namespace diads::obs
