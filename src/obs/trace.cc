#include "obs/trace.h"

#include <algorithm>
#include <functional>
#include <thread>
#include <unordered_map>

#include "common/json.h"
#include "common/strings.h"

namespace diads::obs {
namespace {

uint64_t ThisThreadHash() {
  return std::hash<std::thread::id>{}(std::this_thread::get_id());
}

}  // namespace

const std::string* Span::FindArg(const std::string& key) const {
  for (const auto& [k, v] : args) {
    if (k == key) return &v;
  }
  return nullptr;
}

SpanHandle& SpanHandle::operator=(SpanHandle&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    id_ = other.id_;
    parent_ = other.parent_;
    start_ns_ = other.start_ns_;
    name_ = std::move(other.name_);
    category_ = std::move(other.category_);
    args_ = std::move(other.args_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void SpanHandle::Note(const std::string& key, const std::string& value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, value);
}

void SpanHandle::Note(const std::string& key, uint64_t value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, StrFormat("%llu", (unsigned long long)value));
}

void SpanHandle::Note(const std::string& key, double value) {
  if (tracer_ == nullptr) return;
  args_.emplace_back(key, StrFormat("%.3f", value));
}

void SpanHandle::NoteWindow(const TimeInterval& window) {
  if (tracer_ == nullptr) return;
  args_.emplace_back("window",
                     StrFormat("[%s, %s]", FormatSimTime(window.begin).c_str(),
                               FormatSimTime(window.end).c_str()));
}

void SpanHandle::End() {
  if (tracer_ == nullptr) return;
  Span span;
  span.id = id_;
  span.parent = parent_;
  span.name = std::move(name_);
  span.category = std::move(category_);
  span.start_ns = start_ns_;
  span.end_ns = tracer_->NowNs();
  span.thread_hash = ThisThreadHash();
  span.args = std::move(args_);
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  tracer->File(std::move(span));
}

SpanHandle TraceContext::StartSpan(const std::string& name,
                                   const std::string& category) const {
  SpanHandle handle;
  if (tracer_ == nullptr) return handle;
  handle.tracer_ = tracer_;
  handle.id_ = tracer_->NextId();
  handle.parent_ = parent_;
  handle.start_ns_ = tracer_->NowNs();
  handle.name_ = name;
  handle.category_ = category;
  return handle;
}

void TraceContext::Instant(
    const std::string& name, const std::string& category,
    std::vector<std::pair<std::string, std::string>> args) const {
  if (tracer_ == nullptr) return;
  Span span;
  span.id = tracer_->NextId();
  span.parent = parent_;
  span.name = name;
  span.category = category;
  span.start_ns = tracer_->NowNs();
  span.end_ns = span.start_ns;
  span.thread_hash = ThisThreadHash();
  span.args = std::move(args);
  tracer_->File(std::move(span));
}

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

void Tracer::File(Span span) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(span));
}

std::vector<Span> Tracer::Spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
}

std::string Tracer::ExportChromeTrace() const {
  const std::vector<Span> spans = Spans();
  // Map thread hashes to small stable tids so the trace viewer shows a
  // handful of named rows instead of 64-bit hash lanes.
  std::unordered_map<uint64_t, int> tids;
  for (const Span& span : spans) {
    tids.emplace(span.thread_hash, static_cast<int>(tids.size()) + 1);
  }
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const auto& [hash, tid] : tids) {
    if (!first) out += ",";
    first = false;
    out += StrFormat(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"worker-%d\"}}",
        tid, tid);
  }
  for (const Span& span : spans) {
    if (!first) out += ",";
    first = false;
    const double ts_us = static_cast<double>(span.start_ns) / 1e3;
    const double dur_us =
        static_cast<double>(span.end_ns - span.start_ns) / 1e3;
    out += StrFormat(
        "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"name\":%s,\"cat\":%s,"
        "\"ts\":%.3f,\"dur\":%.3f,\"args\":{",
        tids[span.thread_hash], JsonQuote(span.name).c_str(),
        JsonQuote(span.category).c_str(), ts_us, dur_us);
    out += StrFormat("\"span_id\":\"%llu\",\"parent_id\":\"%llu\"",
                     (unsigned long long)span.id,
                     (unsigned long long)span.parent);
    // Duplicate arg keys (a Note repeated, or shadowing the id fields)
    // would make the export invalid JSON under the strict parser: last
    // Note wins, ids are reserved.
    std::vector<std::pair<std::string, std::string>> dedup;
    for (const auto& [key, value] : span.args) {
      if (key == "span_id" || key == "parent_id") continue;
      auto slot = std::find_if(dedup.begin(), dedup.end(),
                               [&](const auto& kv) { return kv.first == key; });
      if (slot == dedup.end()) {
        dedup.emplace_back(key, value);
      } else {
        slot->second = value;
      }
    }
    for (const auto& [key, value] : dedup) {
      out += StrFormat(",%s:%s", JsonQuote(key).c_str(),
                       JsonQuote(value).c_str());
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string CheckSpanNesting(const std::vector<Span>& spans,
                             int64_t slack_ns) {
  std::unordered_map<SpanId, const Span*> by_id;
  for (const Span& span : spans) {
    if (span.id == 0) return StrFormat("span \"%s\" has id 0",
                                       span.name.c_str());
    if (!by_id.emplace(span.id, &span).second) {
      return StrFormat("duplicate span id %llu", (unsigned long long)span.id);
    }
  }
  for (const Span& span : spans) {
    if (span.end_ns < span.start_ns) {
      return StrFormat("span \"%s\" ends before it starts",
                       span.name.c_str());
    }
    if (span.parent == 0) continue;
    auto it = by_id.find(span.parent);
    if (it == by_id.end()) {
      return StrFormat("span \"%s\" has dangling parent id %llu",
                       span.name.c_str(), (unsigned long long)span.parent);
    }
    const Span& parent = *it->second;
    if (span.start_ns + slack_ns < parent.start_ns ||
        span.end_ns > parent.end_ns + slack_ns) {
      return StrFormat(
          "span \"%s\" [%lld, %lld] escapes parent \"%s\" [%lld, %lld]",
          span.name.c_str(), (long long)span.start_ns,
          (long long)span.end_ns, parent.name.c_str(),
          (long long)parent.start_ns, (long long)parent.end_ns);
    }
  }
  return "";
}

}  // namespace diads::obs
