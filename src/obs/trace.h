// Deterministic span tracing for the diagnosis serving stack.
//
// The paper's whole premise is attributing a slowdown to the component
// that caused it; the tracer applies the same discipline to DIADS's own
// serving path. One diagnosis becomes one span tree:
//
//   diagnosis                      (root: tag, query, sim window)
//   ├─ result_cache                (hit / miss)
//   ├─ queue_wait                  (submit -> worker pickup)
//   ├─ gather                      (the scatter/gather)
//   │   ├─ fetch:C7                (one per component fetch attempt)
//   │   └─ fetch:C12 ...
//   ├─ workflow
//   │   ├─ module:PD ... module:IA (the Figure-2 module chain)
//   │   └─ model_cache             (per-diagnosis hit/miss outcome)
//   └─ fleet_publish
//
// so "why did my *diagnosis* slow down?" is answerable from data: queue
// wait vs SAN gather vs KDE scoring vs cache misses vs publish.
//
// Design constraints, in priority order:
//   * ReportDigest-neutral: tracing only observes. Enabling it must not
//     change a single byte of any report (asserted by engine_test).
//   * Cross-thread: a span can begin on the submitting thread and end on
//     a worker. Open spans are therefore value-owned SpanHandles that
//     travel with the request — the Tracer itself stores only completed
//     spans, so there is no open-span table to lock or leak.
//   * Cheap when off: a default-constructed TraceContext makes every
//     call a no-op (null check, no allocation). The serving overhead
//     with tracing *on* is CI-gated < 5% on bench_engine_throughput.
//
// Spans carry both clock domains: wall duration from the steady clock
// (what actually cost time) and optional SimTime annotations (what part
// of the simulated monitoring timeline the work was about). Export is
// Chrome trace-event JSON ("ph":"X" complete events), loadable in
// chrome://tracing or Perfetto.
#ifndef DIADS_OBS_TRACE_H_
#define DIADS_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/sim_time.h"

namespace diads::obs {

using SpanId = uint64_t;

/// One completed span.
struct Span {
  SpanId id = 0;
  SpanId parent = 0;  ///< 0 = root (no parent).
  std::string name;
  std::string category;  ///< "engine", "collect", "workflow", "cache", ...
  int64_t start_ns = 0;  ///< Steady clock, relative to the tracer's epoch.
  int64_t end_ns = 0;
  uint64_t thread_hash = 0;  ///< Hash of the thread that closed the span.
  /// Small string key/value annotations ("cache":"miss", "attempt":"2").
  std::vector<std::pair<std::string, std::string>> args;

  double duration_ms() const {
    return static_cast<double>(end_ns - start_ns) / 1e6;
  }
  const std::string* FindArg(const std::string& key) const;
};

class Tracer;

/// A value-owned open span. Travels with the request across threads;
/// End() (or destruction) files the completed span with the tracer.
/// Movable, not copyable. Default-constructed handles are inert.
class SpanHandle {
 public:
  SpanHandle() = default;
  ~SpanHandle() { End(); }

  SpanHandle(SpanHandle&& other) noexcept { *this = std::move(other); }
  SpanHandle& operator=(SpanHandle&& other) noexcept;
  SpanHandle(const SpanHandle&) = delete;
  SpanHandle& operator=(const SpanHandle&) = delete;

  bool active() const { return tracer_ != nullptr; }
  SpanId id() const { return id_; }

  /// Attaches a key/value annotation (no-op when inert).
  void Note(const std::string& key, const std::string& value);
  void Note(const std::string& key, uint64_t value);
  void Note(const std::string& key, double value);
  /// Annotates with a simulated-time interval (the diagnosis window).
  void NoteWindow(const TimeInterval& window);

  /// Closes the span and files it with the tracer. Idempotent.
  void End();

 private:
  friend class Tracer;
  friend class TraceContext;

  Tracer* tracer_ = nullptr;
  SpanId id_ = 0;
  SpanId parent_ = 0;
  int64_t start_ns_ = 0;
  std::string name_;
  std::string category_;
  std::vector<std::pair<std::string, std::string>> args_;
};

/// A cheap (pointer + id) handle threaded through the code being traced.
/// Copyable; a default-constructed context is disabled and makes every
/// operation a no-op.
class TraceContext {
 public:
  TraceContext() = default;
  TraceContext(Tracer* tracer, SpanId parent)
      : tracer_(tracer), parent_(parent) {}

  bool enabled() const { return tracer_ != nullptr; }
  Tracer* tracer() const { return tracer_; }
  SpanId parent() const { return parent_; }

  /// Opens a span as a child of this context's span.
  SpanHandle StartSpan(const std::string& name,
                       const std::string& category) const;

  /// Files a zero-duration marker span (outcome annotations like the
  /// model-cache verdict, which have no meaningful extent of their own).
  void Instant(const std::string& name, const std::string& category,
               std::vector<std::pair<std::string, std::string>> args) const;

  /// The context for work nested under `span` (inert handle -> inert
  /// context).
  TraceContext Under(const SpanHandle& span) const {
    return span.active() ? TraceContext(span.tracer_, span.id_)
                         : TraceContext();
  }

 private:
  Tracer* tracer_ = nullptr;
  SpanId parent_ = 0;
};

/// Collects completed spans. Thread-safe: any number of threads may open
/// and close spans concurrently. One tracer typically serves one engine.
class Tracer {
 public:
  Tracer();

  /// A root context (spans started from it have no parent).
  TraceContext Root() { return TraceContext(this, 0); }

  /// Snapshot of every completed span so far, in completion order.
  std::vector<Span> Spans() const;
  size_t span_count() const;
  void Clear();

  /// Chrome trace-event JSON: {"traceEvents":[...], "displayTimeUnit":..}.
  /// Complete ("ph":"X") events with microsecond timestamps; span ids and
  /// parent ids are carried in args so the tree is reconstructable.
  std::string ExportChromeTrace() const;

  /// Steady-clock nanoseconds since this tracer's construction.
  int64_t NowNs() const;

 private:
  friend class SpanHandle;
  friend class TraceContext;

  SpanId NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  void File(Span span);

  std::chrono::steady_clock::time_point epoch_;
  std::atomic<SpanId> next_id_{1};
  mutable std::mutex mu_;
  std::vector<Span> spans_;
};

/// Validates parent/child structure: every non-zero parent id must refer
/// to a span in `spans`, and every child must be temporally contained in
/// its parent within `slack_ns` (spans are closed child-first on one
/// request path, but cross-thread clock reads get a little slack).
/// Returns an empty string when consistent, else a description of the
/// first violation. Test utility.
std::string CheckSpanNesting(const std::vector<Span>& spans,
                             int64_t slack_ns = 0);

}  // namespace diads::obs

#endif  // DIADS_OBS_TRACE_H_
